PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint lint-cold test test-service faults bench bench-full bench-grid bench-store bench-record bench-check stats serve

# Repo-aware static analysis on the incremental engine (unchanged files
# replay from .repro-lint-cache.json), then ruff/mypy when installed.
lint:
	$(PYTHON) -m repro lint --format json --stats
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy src/repro \
		|| echo "mypy not installed; skipping"

# Escape hatch: full from-scratch analysis, no cache read or written.
lint-cold:
	$(PYTHON) -m repro lint --format json --no-cache

test: lint
	$(PYTHON) -m pytest -x -q
	@# Golden telemetry snapshots must not depend on test order: rerun
	@# tests/obs alone, with random ordering disabled if the plugin exists.
	$(PYTHON) -m pytest tests/obs -q -p no:randomly
	$(MAKE) faults

# Resilience smoke: sweep a 24-config grid under injected transient and
# slow-worker faults and verify it converges bit-identically to the
# fault-free run (exit 1 on any divergence).
faults:
	$(PYTHON) -m repro faults

# End-to-end service suite alone: live HTTP server on an ephemeral port,
# concurrency drills, lifecycle property tests, campaign crash-resume.
test-service:
	$(PYTHON) -m pytest tests/service -q

# Long-running prediction service (HOST/PORT overridable).
HOST ?= 127.0.0.1
PORT ?= 8044
serve:
	$(PYTHON) -m repro serve --host $(HOST) --port $(PORT)

# Telemetry summary for one artifact (override with ARTIFACT=figure5 etc.).
ARTIFACT ?= table6
stats:
	$(PYTHON) -m repro stats $(ARTIFACT)

# CI smoke: import-check and run every benchmark body once, no timing.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

# Full timed regeneration of every table and figure.
bench-full:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

# Planner benches only: asserts the cold megagrid path holds its >= 3x
# speedup floor over the per-family path (bit-identical results).
bench-grid:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable -k "planner"

# Store benches: put/get throughput, engine warm restart, and the
# service kill-and-restart + campaign speedup drills (>= 10x warm,
# <= 0.5x parallel wall clock, byte-identical artifacts throughout).
bench-store:
	$(PYTHON) -m pytest benchmarks/bench_store.py benchmarks/bench_service.py -q --benchmark-disable

# Record a full trajectory point: run every suite + the fidelity
# scorecard, merge into benchmarks/bench_artifact.json, and append the
# run to benchmarks/history/.
bench-record:
	$(PYTHON) -m repro bench

# The post-`make bench` gate: re-run the suites, compare each gated
# field against the history with noise-aware margins, escalate-until
# re-measurement, and exit non-zero on any surviving regression.
bench-check:
	$(PYTHON) -m repro bench --check
