PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-full

test:
	$(PYTHON) -m pytest -x -q

# CI smoke: import-check and run every benchmark body once, no timing.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

# Full timed regeneration of every table and figure.
bench-full:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only
