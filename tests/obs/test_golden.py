"""Golden regression tests: canonical telemetry for Table 6 and Figure 5.

Each case clears every process-wide cache, records one artifact build
under a fresh recorder and compares the deterministic report sections
(counters + spans; ``timings`` scrubbed) against a checked-in snapshot.
Run ``pytest tests/obs --update-golden`` after an *intentional* pipeline
change to rewrite the snapshots; the diff then documents exactly how the
work performed changed.
"""

import difflib
import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.sweep import clear_caches
from repro.obs.export import report_dict

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = [
    ("table", 6, "table6.json"),
    ("figure", 5, "figure5.json"),
]


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _capture(kind: str, number: int) -> str:
    """Build one artifact cold under a fresh recorder; canonical JSON out."""
    clear_caches()
    rec = obs.install()
    try:
        if kind == "table":
            from repro.harness import build_table

            build_table(number)
        else:
            from repro.harness import build_figure

            build_figure(number)
    finally:
        obs.disable()
    report = report_dict(rec, include_timings=False)
    return json.dumps(report, indent=2) + "\n"


@pytest.mark.parametrize("kind,number,filename", CASES)
def test_telemetry_matches_golden(kind, number, filename, update_golden):
    actual = _capture(kind, number)
    golden_path = GOLDEN_DIR / filename
    if update_golden:
        golden_path.write_text(actual)
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        "run `pytest tests/obs --update-golden` to create it"
    )
    expected = golden_path.read_text()
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"golden/{filename}",
                tofile=f"{kind}{number} (this run)",
            )
        )
        pytest.fail(
            f"telemetry for {kind}{number} drifted from its golden snapshot.\n"
            "If the pipeline change is intentional, refresh with\n"
            "    pytest tests/obs --update-golden\n"
            f"and commit the diff:\n{diff}"
        )


@pytest.mark.parametrize("kind,number,filename", CASES)
def test_capture_is_stable_across_repeats(kind, number, filename):
    """Two cold captures in one process agree byte for byte."""
    assert _capture(kind, number) == _capture(kind, number)
