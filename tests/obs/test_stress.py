"""Concurrency stress: one engine, eight hammering threads, no double work.

The single-flight table in :class:`SweepEngine` guarantees each cache key
executes exactly once no matter how many ``run_many`` calls race.  A
counting runner observes actual executions; the barrier maximises the
overlap window.
"""

import threading

import pytest

from repro import faults, obs
from repro.core.experiment import ExperimentRunner
from repro.core.sweep import SweepEngine, expand_grid
from repro.faults import FaultPlan
from repro.obs.export import report_dict

N_THREADS = 8


class CountingRunner(ExperimentRunner):
    """Counts how many times each config is actually executed."""

    def __init__(self) -> None:
        super().__init__()
        self.executions: dict[tuple, int] = {}
        self._count_lock = threading.Lock()

    def run_many(self, configs):
        with self._count_lock:
            for c in configs:
                key = (c.machine, c.kernel, c.npb_class, c.n_threads)
                self.executions[key] = self.executions.get(key, 0) + 1
        return super().run_many(configs)


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    faults.disable()
    yield
    obs.disable()
    faults.disable()


def _hammer(engine, grid, n_threads=N_THREADS):
    """``n_threads`` concurrent run_many calls over the same grid."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def work(i):
        try:
            barrier.wait()
            results[i] = engine.run_many(grid, on_dnr="none")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    return results


def test_no_duplicate_executions_under_contention():
    grid = expand_grid(
        ("sg2044", "sg2042", "epyc7742"),
        ("is", "ep", "cg", "mg"),
        thread_counts=(1, 2, 4, 8),
    )
    n_unique = len(grid)
    for _ in range(5):
        runner = CountingRunner()
        engine = SweepEngine(runner, jobs=4)
        rec = obs.install()
        try:
            results = _hammer(engine, grid)
        finally:
            obs.disable()

        # Every config executed exactly once across all eight callers.
        assert sum(runner.executions.values()) == n_unique
        assert set(runner.executions.values()) == {1}
        # All callers observed identical results.
        assert all(r == results[0] for r in results[1:])
        assert all(r is not None for r in results[0])
        # Engine and telemetry agree: one miss per unique config, the
        # remaining (N_THREADS - 1) * n_unique requests were hits.
        assert engine.misses == n_unique
        assert engine.hits == (N_THREADS - 1) * n_unique
        counters = report_dict(rec)["counters"]
        assert counters["sweep.configs_executed"] == n_unique
        assert counters["sweep.cache_misses"] == n_unique
        assert counters["sweep.configs_requested"] == N_THREADS * n_unique
        assert rec.quiescent()


class FatalThenHealedRunner(CountingRunner):
    """One family is fatal for its first ``failures`` executions."""

    def __init__(self, poison_kernel: str, failures: int) -> None:
        super().__init__()
        self.poison_kernel = poison_kernel
        self.failures = failures
        self.poison_attempts = 0
        self._fail_lock = threading.Lock()

    def run_many(self, configs):
        if configs[0].kernel == self.poison_kernel:
            with self._fail_lock:
                self.poison_attempts += 1
                if self.failures > 0:
                    self.failures -= 1
                    raise RuntimeError("poisoned family")
        return super().run_many(configs)


def _hammer_collecting(engine, grid, n_threads=N_THREADS):
    """Like :func:`_hammer`, but failures are data, not test errors."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []
    errors_lock = threading.Lock()

    def work(i):
        try:
            barrier.wait()
            results[i] = engine.run_many(grid, on_dnr="none")
        except Exception as exc:
            with errors_lock:
                errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "a caller hung"
    return results, errors


def test_injected_fatal_failures_never_hang_waiters():
    """A failing claimant must release its claim: waiters re-claim, not hang.

    The poisoned family fails its first two executions; eight racing
    callers sort themselves out -- two absorb the failures, the rest get
    full results -- and the single-flight table fully drains.
    """
    grid = expand_grid(("sg2044",), ("is", "ep", "cg", "mg"), thread_counts=(1, 2, 4, 8))
    runner = FatalThenHealedRunner(poison_kernel="mg", failures=2)
    engine = SweepEngine(runner, jobs=4)
    rec = obs.install()
    try:
        results, errors = _hammer_collecting(engine, grid)
    finally:
        obs.disable()

    # Exactly the injected failures surfaced, each to exactly one caller.
    assert len(errors) == 2
    assert all(isinstance(e, RuntimeError) for e in errors)
    completed = [r for r in results if r is not None]
    assert len(completed) == N_THREADS - 2
    assert all(r == completed[0] for r in completed)
    # The poisoned family was attempted failures + 1 times, succeeding
    # once; every config (healthy or poisoned) executed exactly once.
    assert runner.poison_attempts == 3
    assert set(runner.executions.values()) == {1}
    assert sum(runner.executions.values()) == len(grid)
    # No claim leaked: the table drained even through the failures.
    assert engine._inflight == {}
    assert rec.quiescent()


def test_injected_transient_faults_all_callers_succeed():
    """With retries >= the fault cap, contention plus faults is invisible."""
    grid = expand_grid(("sg2044",), ("is", "ep", "cg", "mg"), thread_counts=(1, 2, 4, 8))
    runner = CountingRunner()
    engine = SweepEngine(runner, jobs=4, retries=2, backoff_s=0.0)
    faults.install(FaultPlan(seed=9, transient_rate=1.0, max_failures=2))
    rec = obs.install()
    try:
        results, errors = _hammer_collecting(engine, grid)
    finally:
        obs.disable()
        faults.disable()

    assert errors == []
    assert all(r is not None for r in results)
    assert all(r == results[0] for r in results[1:])
    # Retries happen around the runner, never through it: every config
    # still executed exactly once.
    assert set(runner.executions.values()) == {1}
    counters = rec.counters_snapshot()
    assert counters["sweep.retries"] == 8  # 2 capped faults x 4 families
    assert counters["faults.transient"] == 8
    assert engine._inflight == {}
    assert rec.quiescent()


def test_contended_dnr_family_resolves_once():
    grid = expand_grid(("allwinner-d1",), ("ft",), classes="B", thread_counts=1)
    runner = CountingRunner()
    engine = SweepEngine(runner, jobs=4)
    results = _hammer(engine, grid, n_threads=4)
    # The DNR family executed once; every caller got the None slot.
    assert sum(runner.executions.values()) == 1
    assert all(r == [None] for r in results)
    assert engine.dnr_configs == 4
