"""Concurrency stress: one engine, eight hammering threads, no double work.

The single-flight table in :class:`SweepEngine` guarantees each cache key
executes exactly once no matter how many ``run_many`` calls race.  A
counting runner observes actual executions; the barrier maximises the
overlap window.
"""

import threading

import pytest

from repro import obs
from repro.core.experiment import ExperimentRunner
from repro.core.sweep import SweepEngine, expand_grid
from repro.obs.export import report_dict

N_THREADS = 8


class CountingRunner(ExperimentRunner):
    """Counts how many times each config is actually executed."""

    def __init__(self) -> None:
        super().__init__()
        self.executions: dict[tuple, int] = {}
        self._count_lock = threading.Lock()

    def run_many(self, configs):
        with self._count_lock:
            for c in configs:
                key = (c.machine, c.kernel, c.npb_class, c.n_threads)
                self.executions[key] = self.executions.get(key, 0) + 1
        return super().run_many(configs)


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _hammer(engine, grid, n_threads=N_THREADS):
    """``n_threads`` concurrent run_many calls over the same grid."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def work(i):
        try:
            barrier.wait()
            results[i] = engine.run_many(grid, on_dnr="none")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    return results


def test_no_duplicate_executions_under_contention():
    grid = expand_grid(
        ("sg2044", "sg2042", "epyc7742"),
        ("is", "ep", "cg", "mg"),
        thread_counts=(1, 2, 4, 8),
    )
    n_unique = len(grid)
    for _ in range(5):
        runner = CountingRunner()
        engine = SweepEngine(runner, jobs=4)
        rec = obs.install()
        try:
            results = _hammer(engine, grid)
        finally:
            obs.disable()

        # Every config executed exactly once across all eight callers.
        assert sum(runner.executions.values()) == n_unique
        assert set(runner.executions.values()) == {1}
        # All callers observed identical results.
        assert all(r == results[0] for r in results[1:])
        assert all(r is not None for r in results[0])
        # Engine and telemetry agree: one miss per unique config, the
        # remaining (N_THREADS - 1) * n_unique requests were hits.
        assert engine.misses == n_unique
        assert engine.hits == (N_THREADS - 1) * n_unique
        counters = report_dict(rec)["counters"]
        assert counters["sweep.configs_executed"] == n_unique
        assert counters["sweep.cache_misses"] == n_unique
        assert counters["sweep.configs_requested"] == N_THREADS * n_unique
        assert rec.quiescent()


def test_contended_dnr_family_resolves_once():
    grid = expand_grid(("allwinner-d1",), ("ft",), classes="B", thread_counts=1)
    runner = CountingRunner()
    engine = SweepEngine(runner, jobs=4)
    results = _hammer(engine, grid, n_threads=4)
    # The DNR family executed once; every caller got the None slot.
    assert sum(runner.executions.values()) == 1
    assert all(r == [None] for r in results)
    assert engine.dnr_configs == 4
