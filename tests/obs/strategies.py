"""Seeded random experiment grids for the telemetry property suite.

Everything here is a pure function of its ``seed`` argument so a failing
property case replays exactly.  Grids deliberately include duplicate
configs (exercising intra-batch dedup), shuffled orderings (exercising
the order-independence of counters) and -- with some seeds -- the
catalog's one known DNR combination (allwinner-d1 running FT class B).
"""

from __future__ import annotations

import random

from repro.core.experiment import ExperimentConfig

__all__ = ["random_grid", "grid_fingerprint"]

#: Machines with enough cores to accept every thread count below.
MACHINES = ("sg2044", "sg2042", "epyc7742", "thunderx2")
KERNELS = ("is", "ep", "cg", "mg", "ft", "sp")
CLASSES = ("B", "C")
THREADS = (1, 2, 4, 8, 16)

#: The catalog's known Did-Not-Run combination (paper Table 2 footnote).
DNR_CONFIG = ExperimentConfig(
    machine="allwinner-d1", kernel="ft", npb_class="B", n_threads=1
)


def random_grid(seed: int, max_configs: int = 100) -> list[ExperimentConfig]:
    """A reproducible grid of 1..``max_configs`` configs for ``seed``."""
    rng = random.Random(seed)
    configs: list[ExperimentConfig] = []
    for _ in range(rng.randint(2, 10)):
        machine = rng.choice(MACHINES)
        kernel = rng.choice(KERNELS)
        npb_class = rng.choice(CLASSES)
        n_threads = rng.sample(THREADS, k=rng.randint(1, len(THREADS)))
        configs.extend(
            ExperimentConfig(
                machine=machine,
                kernel=kernel,
                npb_class=npb_class,
                n_threads=n,
            )
            for n in n_threads
        )
    if rng.random() < 0.3:
        configs.append(DNR_CONFIG)
    # Duplicates exercise intra-batch dedup; the shuffle exercises
    # order-independence of every counter.
    dupes = rng.sample(configs, k=min(len(configs), rng.randint(0, 5)))
    configs.extend(dupes)
    rng.shuffle(configs)
    return configs[:max_configs]


def grid_fingerprint(configs: list[ExperimentConfig]) -> tuple[int, int]:
    """(total, unique) sizes -- what the counter identities are phrased in."""
    unique = {
        (c.machine, c.kernel, c.npb_class, c.n_threads, c.compiler, c.vectorise)
        for c in configs
    }
    return len(configs), len(unique)
