"""Property suite: telemetry is a pure function of the work performed.

For random experiment grids (seeded, replayable -- see ``strategies``),
the counters and span tree a sweep produces must be byte-identical

* across serial (``jobs=1``) and parallel (``jobs=4``) execution,
* across cold and warm-cache replays (warm runs are all hits),

and span trees must always be well-nested (every entry exited, in
order).  Uses hypothesis when available, a fixed seed sweep otherwise.
"""

import json
import random
import threading

import pytest

from repro import obs
from repro.core.experiment import ExperimentRunner
from repro.core.sweep import SweepEngine
from repro.obs.export import report_dict

from .strategies import grid_fingerprint, random_grid

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    def seeded(fn):
        return settings(max_examples=6, deadline=None, derandomize=True)(
            given(seed=st.integers(min_value=0, max_value=2**16))(fn)
        )

except ImportError:  # pragma: no cover - hypothesis is in the image

    def seeded(fn):
        return pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234, 65535])(fn)


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _session(grid, jobs, runner):
    """Run ``grid`` cold then warm on a fresh engine; a report per phase."""
    engine = SweepEngine(runner, jobs=jobs)
    reports = []
    results = []
    for _ in ("cold", "warm"):
        rec = obs.install(None)
        try:
            results.append(engine.run_many(grid, on_dnr="none"))
        finally:
            obs.disable()
        assert rec.quiescent()
        reports.append(report_dict(rec, include_timings=False))
    return engine, reports, results


def _bytes(report) -> bytes:
    return json.dumps(report, sort_keys=False).encode()


@pytest.fixture(scope="module")
def shared_runner():
    """One runner (and calibrated model) shared by every engine here."""
    return ExperimentRunner()


class TestCounterIdentity:
    @seeded
    def test_serial_parallel_and_warm_identical(self, seed, shared_runner):
        grid = random_grid(seed)
        _, serial, res_1 = _session(grid, 1, shared_runner)
        _, parallel, res_4 = _session(grid, 4, shared_runner)
        # Byte-identical reports, phase by phase, across execution modes.
        assert _bytes(serial[0]) == _bytes(parallel[0])
        assert _bytes(serial[1]) == _bytes(parallel[1])
        # And identical results, slot by slot.
        assert res_1 == res_4

    @seeded
    def test_counter_conservation(self, seed, shared_runner):
        from .strategies import DNR_CONFIG

        grid = random_grid(seed)
        total, unique = grid_fingerprint(grid)
        n_dnr_slots = sum(1 for c in grid if c == DNR_CONFIG)
        unique_dnr = 1 if n_dnr_slots else 0
        engine, (cold, warm), _ = _session(grid, 4, shared_runner)

        c = cold["counters"]
        assert c["sweep.configs_requested"] == total
        assert c["sweep.cache_hits"] + c["sweep.cache_misses"] == total
        assert c["sweep.cache_misses"] == unique
        # Executed + DNR'd covers every unique cold config exactly once.
        assert c.get("sweep.configs_executed", 0) == unique - unique_dnr
        assert c.get("sweep.dnr_raises", 0) == unique_dnr
        # The return path counts DNR *slots* (duplicates included).
        assert c["sweep.dnr_configs"] == n_dnr_slots

        w = warm["counters"]
        assert w["sweep.configs_requested"] == total
        assert w["sweep.cache_hits"] == total
        assert w["sweep.cache_misses"] == 0
        assert "sweep.configs_executed" not in w
        # Cached DNR values still count on every replay's return path.
        assert w["sweep.dnr_configs"] == n_dnr_slots
        assert engine.dnr_configs == 2 * n_dnr_slots

    @seeded
    def test_span_tree_shape_is_mode_independent(self, seed, shared_runner):
        grid = random_grid(seed)
        _, (cold_1, _), _ = _session(grid, 1, shared_runner)
        _, (cold_4, _), _ = _session(grid, 4, shared_runner)
        assert cold_1["spans"] == cold_4["spans"]
        # Every group span hangs under run_many, which hangs under session.
        (run_many,) = cold_1["spans"]["children"]
        assert run_many["name"] == "run_many"
        assert all(c["name"].startswith("group[") for c in run_many["children"])


class TestWellNestedSpans:
    @seeded
    def test_random_span_walks_stay_nested(self, seed):
        rec = obs.install()
        rng = random.Random(seed)
        names = [f"s{i}" for i in range(5)]

        def walk(depth):
            for _ in range(rng.randint(0, 3)):
                with obs.span(rng.choice(names)):
                    if depth < 4:
                        walk(depth + 1)

        try:
            walk(0)
        finally:
            obs.disable()
        assert rec.quiescent()

    @seeded
    def test_threaded_walks_stay_nested_per_thread(self, seed):
        rec = obs.install()
        errors = []

        def walk(worker_seed):
            rng = random.Random(worker_seed)
            try:
                node = obs.open_span(f"worker{worker_seed % 4}")
                with obs.activate(node):
                    for _ in range(rng.randint(1, 8)):
                        with obs.span(rng.choice(("a", "b"))):
                            obs.incr("ticks")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=walk, args=(seed * 31 + i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.disable()
        assert errors == []
        assert rec.quiescent()
        # All eight workers' spans landed under the session root.
        assert sum(c["count"] for c in rec.span_tree()["children"]) == 8
