"""Recorder unit tests: the null default, spans, counters, timers, export."""

import threading

import pytest

from repro import obs
from repro.obs.export import SCHEMA_VERSION, render_json, render_text, report_dict
from repro.obs.recorder import NullRecorder, TelemetryRecorder


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with the no-op recorder installed."""
    obs.disable()
    yield
    obs.disable()


class TestModuleSlot:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert isinstance(obs.recorder(), NullRecorder)

    def test_install_swaps_in_a_fresh_recorder(self):
        rec = obs.install()
        assert obs.is_enabled()
        assert obs.recorder() is rec
        assert isinstance(rec, TelemetryRecorder)

    def test_install_accepts_an_existing_recorder(self):
        mine = TelemetryRecorder()
        assert obs.install(mine) is mine
        assert obs.recorder() is mine

    def test_disable_restores_the_noop(self):
        obs.install()
        obs.disable()
        assert not obs.is_enabled()

    def test_noop_helpers_are_inert(self):
        obs.incr("x", 5)
        with obs.span("a"):
            obs.incr("y")
        with obs.activate(obs.open_span("b")):
            pass
        rec = obs.recorder()
        assert rec.counters_snapshot() == {}
        assert rec.span_tree()["children"] == []


class TestCounters:
    def test_accumulate(self):
        rec = obs.install()
        obs.incr("sweep.cache_hits")
        obs.incr("sweep.cache_hits", 4)
        obs.incr("model.batch_calls", 2)
        assert rec.counters_snapshot() == {
            "sweep.cache_hits": 5,
            "model.batch_calls": 2,
        }

    def test_snapshot_is_a_copy(self):
        rec = obs.install()
        obs.incr("a")
        snap = rec.counters_snapshot()
        snap["a"] = 99
        assert rec.counters_snapshot() == {"a": 1}


class TestSpans:
    def test_merged_by_name_under_parent(self):
        rec = obs.install()
        for _ in range(3):
            with obs.span("table6"):
                with obs.span("run_many"):
                    pass
        tree = rec.span_tree()
        assert tree["name"] == "session" and tree["count"] == 1
        (t6,) = tree["children"]
        assert (t6["name"], t6["count"]) == ("table6", 3)
        (rm,) = t6["children"]
        assert (rm["name"], rm["count"]) == ("run_many", 3)

    def test_siblings_stay_distinct(self):
        rec = obs.install()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert [c["name"] for c in rec.span_tree()["children"]] == ["a", "b"]

    def test_out_of_order_exit_raises(self):
        rec = obs.install()
        outer = rec.span("outer")
        inner = rec.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_quiescent_tracks_open_spans(self):
        rec = obs.install()
        ctx = rec.span("open")
        ctx.__enter__()
        assert not rec.quiescent()
        ctx.__exit__(None, None, None)
        assert rec.quiescent()

    def test_open_span_activate_across_threads(self):
        rec = obs.install()
        with obs.span("parent"):
            node = obs.open_span("worker-span")

            def work():
                with obs.activate(node):
                    with obs.span("nested"):
                        obs.incr("worker.ticks")

            t = threading.Thread(target=work)
            t.start()
            t.join()
        tree = rec.span_tree()
        (parent,) = tree["children"]
        (worker,) = parent["children"]
        assert (worker["name"], worker["count"]) == ("worker-span", 1)
        assert [c["name"] for c in worker["children"]] == ["nested"]
        assert rec.counters_snapshot() == {"worker.ticks": 1}
        assert rec.quiescent()

    def test_activate_none_is_a_noop(self):
        rec = obs.install()
        with obs.activate(None):
            pass
        assert rec.quiescent()


class TestHostTimer:
    def test_measures_even_when_disabled(self):
        with obs.host_timer("stream.copy") as timer:
            sum(range(1000))
        assert timer.elapsed_s > 0.0
        assert obs.recorder().timings_snapshot() == {}

    def test_records_when_enabled(self):
        rec = obs.install()
        with obs.host_timer("hpl.solve"):
            pass
        with obs.host_timer("hpl.solve"):
            pass
        ((total_s, count),) = [rec.timings_snapshot()["hpl.solve"]]
        assert count == 2
        assert total_s >= 0.0


class TestExport:
    def test_schema_v1_shape(self):
        rec = obs.install()
        obs.incr("b", 2)
        obs.incr("a", 1)
        with obs.span("phase"):
            pass
        with obs.host_timer("t"):
            pass
        report = report_dict(rec)
        assert report["version"] == SCHEMA_VERSION == 1
        assert list(report["counters"]) == ["a", "b"]  # sorted
        assert report["spans"]["name"] == "session"
        assert report["timings"]["t"]["count"] == 1

    def test_timings_can_be_scrubbed(self):
        rec = obs.install()
        with obs.host_timer("t"):
            pass
        assert "timings" not in report_dict(rec, include_timings=False)

    def test_render_json_round_trips(self):
        import json

        rec = obs.install()
        obs.incr("a")
        assert json.loads(render_json(rec))["counters"] == {"a": 1}

    def test_render_text_sections(self):
        rec = obs.install()
        obs.incr("sweep.cache_hits", 7)
        with obs.span("table6"):
            pass
        text = render_text(rec)
        assert "schema v1" in text
        assert "session x1" in text
        assert "table6 x1" in text
        assert "sweep.cache_hits" in text

    def test_null_recorder_exports_cleanly(self):
        report = report_dict(NullRecorder())
        assert report["counters"] == {} and report["timings"] == {}
