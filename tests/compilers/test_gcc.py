"""The concrete compiler registry used by the paper's experiments."""

import pytest

from repro.compilers.gcc import (
    compiler_names,
    default_compiler_for,
    get_compiler,
)
from repro.machines.catalog import machine_names


class TestRegistry:
    def test_paper_compilers_present(self):
        names = compiler_names()
        for required in ("gcc-15.2", "gcc-12.3.1", "xuantie-gcc-8.4",
                         "gcc-11.2", "gcc-9.2", "gcc-8.4", "llvm-18"):
            assert required in names

    def test_unknown_compiler_helpful_error(self):
        with pytest.raises(KeyError, match="gcc-15.2"):
            get_compiler("gcc-99")

    def test_every_machine_has_a_default(self):
        for machine in machine_names():
            assert default_compiler_for(machine) in compiler_names()

    def test_paper_default_assignments(self):
        assert default_compiler_for("sg2044") == "gcc-15.2"
        assert default_compiler_for("sg2042") == "xuantie-gcc-8.4"
        assert default_compiler_for("epyc7742") == "gcc-11.2"
        assert default_compiler_for("skylake8170") == "gcc-8.4"
        assert default_compiler_for("thunderx2") == "gcc-9.2"

    def test_unknown_machine_default_rejected(self):
        with pytest.raises(KeyError):
            default_compiler_for("cray-1")


class TestGcc1231Fits:
    """The Table 7-derived scalar-quality factors."""

    def test_mg_scalar_regression_in_15(self):
        # 12.3.1's scalar MG code *beats* 15.2's (Table 7: 1373 vs 1300).
        spec = get_compiler("gcc-12.3.1")
        assert spec.scalar_quality_for("mg") > 1.0

    def test_ft_scalar_improved_in_15(self):
        spec = get_compiler("gcc-12.3.1")
        assert spec.scalar_quality_for("ft") < 0.95

    def test_is_saturation_quality_penalty(self):
        # Table 8: 12.3.1 extracts only ~74% of the 64-core IS rate.
        spec = get_compiler("gcc-12.3.1")
        assert spec.saturation_quality_for("is") < 0.8
        assert get_compiler("gcc-15.2").saturation_quality_for("is") == 1.0
