"""Compiler legality and vectorisation-outcome model."""

import pytest

from repro.compilers.model import (
    CompilerFamily,
    CompilerSpec,
    vectorisation_outcome,
)
from repro.machines.cpu import VectorStandard, VectorUnit

RVV1_128 = VectorUnit(VectorStandard.RVV_1_0, 128)
RVV1_256 = VectorUnit(VectorStandard.RVV_1_0, 256)
RVV071 = VectorUnit(VectorStandard.RVV_0_7_1, 128)
AVX512 = VectorUnit(VectorStandard.AVX512, 512, 2)
NONE = VectorUnit(VectorStandard.NONE, 0)


def gcc(*version):
    return CompilerSpec(CompilerFamily.GCC, version)


def xuantie():
    return CompilerSpec(CompilerFamily.XUANTIE_GCC, (8, 4))


def llvm(*version):
    return CompilerSpec(CompilerFamily.LLVM, version)


class TestLegality:
    """The paper's central compiler facts."""

    def test_mainline_gcc_cannot_target_rvv_071(self):
        assert not gcc(15, 2).can_vectorise(VectorStandard.RVV_0_7_1)

    def test_only_xuantie_fork_targets_rvv_071(self):
        assert xuantie().can_vectorise(VectorStandard.RVV_0_7_1)

    def test_gcc_14_gains_full_rvv_10(self):
        assert not gcc(13, 1).can_vectorise(VectorStandard.RVV_1_0)
        assert gcc(14, 0).can_vectorise(VectorStandard.RVV_1_0)
        assert gcc(15, 2).can_vectorise(VectorStandard.RVV_1_0)

    def test_gcc_12_cannot_vectorise_rvv(self):
        # Why Table 7's GCC 12.3.1 column is scalar-only on the SG2044.
        assert not gcc(12, 3, 1).can_vectorise(VectorStandard.RVV_1_0)

    def test_llvm_supported_rvv_before_gcc(self):
        assert llvm(16, 0).can_vectorise(VectorStandard.RVV_1_0)

    def test_old_gcc_fine_for_x86_and_arm(self):
        for std in (VectorStandard.AVX2, VectorStandard.AVX512, VectorStandard.NEON):
            assert gcc(8, 4).can_vectorise(std)

    def test_xuantie_is_riscv_only(self):
        assert not xuantie().can_vectorise(VectorStandard.AVX2)

    def test_nothing_vectorises_for_no_unit(self):
        assert not gcc(15, 2).can_vectorise(VectorStandard.NONE)


class TestMaturity:
    def test_x86_fully_mature(self):
        assert gcc(11, 2).vectorisation_maturity(VectorStandard.AVX2) == 1.0

    def test_rvv_maturity_improves_14_to_15(self):
        assert gcc(15, 2).vectorisation_maturity(
            VectorStandard.RVV_1_0
        ) > gcc(14, 2).vectorisation_maturity(VectorStandard.RVV_1_0)

    def test_illegal_target_has_zero_maturity(self):
        assert gcc(12, 3).vectorisation_maturity(VectorStandard.RVV_1_0) == 0.0


class TestVectorisationOutcome:
    def test_not_requested_means_scalar(self):
        out = vectorisation_outcome(gcc(15, 2), RVV1_128, "mg", 0.5, vectorise=False)
        assert not out.applied
        assert out.compute_multiplier == 1.0

    def test_illegal_means_scalar_even_if_requested(self):
        out = vectorisation_outcome(gcc(12, 3), RVV1_128, "mg", 0.5, vectorise=True)
        assert out.legal is False
        assert not out.applied

    def test_healthy_vectorisation_speeds_compute(self):
        out = vectorisation_outcome(gcc(15, 2), RVV1_128, "mg", 0.5, vectorise=True)
        assert out.applied
        assert out.compute_multiplier > 1.0
        assert out.latency_multiplier == 1.0

    def test_wider_units_give_more(self):
        narrow = vectorisation_outcome(gcc(11, 2), VectorUnit(VectorStandard.AVX2, 256, 1), "mg", 0.6, True)
        wide = vectorisation_outcome(gcc(11, 2), AVX512, "mg", 0.6, True)
        assert wide.compute_multiplier > narrow.compute_multiplier

    def test_cg_pathology_slows_everything(self):
        out = vectorisation_outcome(
            gcc(15, 2), RVV1_128, "cg", 0.75, True, gather_pathology=1.0
        )
        assert out.applied
        assert out.compute_multiplier < 1.0
        assert out.latency_multiplier > 2.0
        assert out.branch_miss_multiplier == pytest.approx(2.0)

    def test_pathology_marginal_on_256bit(self):
        # The paper: "some performance reduction on the SpacemiT K1/M1 ...
        # however this was marginal."
        out = vectorisation_outcome(
            gcc(15, 2), RVV1_256, "cg", 0.75, True, gather_pathology=1.0
        )
        assert 0.85 < out.compute_multiplier < 1.0

    def test_pathology_does_not_hit_xuantie_071(self):
        out = vectorisation_outcome(
            xuantie(), RVV071, "cg", 0.75, True, gather_pathology=1.0
        )
        assert out.compute_multiplier > 1.0

    def test_zero_vec_fraction_is_neutral(self):
        out = vectorisation_outcome(gcc(15, 2), RVV1_128, "ep", 0.0, True)
        assert not out.applied

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            vectorisation_outcome(gcc(15, 2), RVV1_128, "mg", 1.5, True)


class TestCompilerSpecValidation:
    def test_version_string_and_display(self):
        assert gcc(12, 3, 1).version_str == "12.3.1"
        assert "XuanTie" in xuantie().display

    def test_scalar_quality_lookup_with_default(self):
        spec = CompilerSpec(
            CompilerFamily.GCC, (12,), scalar_quality={"mg": 1.05},
            default_scalar_quality=0.98,
        )
        assert spec.scalar_quality_for("mg") == 1.05
        assert spec.scalar_quality_for("ep") == 0.98

    def test_saturation_quality_defaults_to_one(self):
        assert gcc(15, 2).saturation_quality_for("is") == 1.0

    def test_empty_version_rejected(self):
        with pytest.raises(ValueError):
            CompilerSpec(CompilerFamily.GCC, ())

    def test_nonpositive_quality_rejected(self):
        with pytest.raises(ValueError):
            CompilerSpec(CompilerFamily.GCC, (15,), scalar_quality={"mg": 0.0})
