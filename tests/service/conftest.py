"""Live-server fixture and plain-urllib HTTP helpers for the e2e suite.

``live_server`` starts a real :class:`ThreadingHTTPServer` on an
ephemeral port (bind to port 0, read the kernel-assigned one back) in a
daemon thread, yields everything a test needs, and guarantees shutdown
in teardown -- ``server.shutdown()`` + ``server_close()`` + manager
worker join run in a ``finally`` so a failing test never leaks a
listening socket into the next one.

Every test gets a *fresh* engine, recorder and manager: counter
assertions (exactly-one-execution, containment waits) must never see
another test's traffic.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass

import pytest

from repro import faults, obs
from repro.core.sweep import SweepEngine
from repro.service import JobManager, create_server


def http_get(url: str, timeout: float = 30.0) -> tuple[int, bytes]:
    """GET returning ``(status, body)``; HTTP errors return, not raise."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def http_get_json(url: str, timeout: float = 30.0) -> tuple[int, dict]:
    status, body = http_get(url, timeout=timeout)
    return status, json.loads(body)


def http_post_json(url: str, payload: dict, timeout: float = 30.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@dataclass
class LiveServer:
    """What the fixture yields: the base URL plus the live objects."""

    base_url: str
    manager: JobManager
    engine: SweepEngine
    recorder: object

    def url(self, path: str) -> str:
        return self.base_url + path


@pytest.fixture(autouse=True)
def _clean_slate():
    """No telemetry or fault plan may leak across service tests."""
    obs.disable()
    faults.disable()
    yield
    obs.disable()
    faults.disable()


@pytest.fixture
def service_engine() -> SweepEngine:
    """A private engine so execution counters are attributable."""
    return SweepEngine(jobs=2, retries=0)


def _start_server(manager: JobManager) -> tuple:
    server = create_server("127.0.0.1", 0, manager)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-test-server", daemon=True
    )
    thread.start()
    return server, thread


@pytest.fixture
def live_server(tmp_path, service_engine):
    """A live service on an ephemeral port, torn down unconditionally."""
    recorder = obs.install()
    manager = JobManager(
        engine=service_engine,
        workers=2,
        queue_size=16,
        artifact_dir=tmp_path / "artifacts",
        journal_dir=tmp_path / "journals",
    )
    server, thread = _start_server(manager)
    try:
        yield LiveServer(
            base_url=f"http://127.0.0.1:{server.server_port}",
            manager=manager,
            engine=service_engine,
            recorder=recorder,
        )
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown()
        thread.join(timeout=5)
        obs.disable()
