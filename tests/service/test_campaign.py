"""Campaign runner: validation, manifests, idempotence and crash-resume.

The centrepiece is the crash drill: a deterministic ``repro.faults``
plan kills the campaign between jobs (the ``campaign.job`` probe for the
second job raises), leaving the first job's artifact and journal on
disk.  Restarting the same campaign against that directory with a fresh
engine must resume from the journals -- ``campaign.resumed_entries``
counts the preloaded families -- and finish with an artifact set
byte-identical to a never-interrupted reference run.
"""

import json

import pytest

from repro import faults, obs
from repro.core.sweep import SweepEngine
from repro.faults import FaultPlan, InjectedTransientError
from repro.service import (
    ScenarioError,
    load_scenario,
    plan_campaign,
    run_campaign,
)
from repro.store import ResultStore

SCENARIO_YAML = """\
name: drill
jobs:
  - name: wide
    kind: sweep
    machines: [sg2044]
    kernels: [ep, is]
    threads: [1, 2]
  - name: deep
    kind: sweep
    machines: [sg2044]
    kernels: [cg]
    threads: [1, 2, 4]
  - name: whatif-ep
    kind: whatif
    kernel: ep
    threads: 8
"""


@pytest.fixture
def scenario(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text(SCENARIO_YAML)
    return load_scenario(path)


class TestScenarioValidation:
    def _load(self, tmp_path, text):
        path = tmp_path / "bad.yaml"
        path.write_text(text)
        return load_scenario(path)

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("- just\n- a list\n", "mapping"),
            ("jobs: []\n", "name"),
            ("name: x\n", "jobs"),
            ("name: x\njobs: []\n", "jobs"),
            ("name: x\njobs:\n  - kind: table\n    number: 6\n", "name"),
            (
                "name: x\njobs:\n  - name: a/b\n    kind: table\n    number: 6\n",
                "file stem",
            ),
            (
                "name: x\njobs:\n"
                "  - name: a\n    kind: table\n    number: 6\n"
                "  - name: a\n    kind: table\n    number: 3\n",
                "duplicate",
            ),
            ("name: x\njobs:\n  - name: a\n    kind: table\n    number: 99\n", "number"),
            ("name: x\njobs:\n  - name: a\n    kind: nope\n", "kind"),
            ("name: x\njobs:\n  - name: a\n    {{invalid yaml\n", "YAML"),
            (
                "name: x\njobs:\n"
                "  - name: a\n    kind: table\n    number: 6\n    needs: [a]\n",
                "needs itself",
            ),
            (
                "name: x\njobs:\n"
                "  - name: a\n    kind: table\n    number: 6\n    needs: [ghost]\n",
                "unknown job",
            ),
            (
                "name: x\njobs:\n"
                "  - name: a\n    kind: table\n    number: 6\n    needs: [b]\n"
                "  - name: b\n    kind: table\n    number: 3\n    needs: [a]\n",
                "dependency cycle",
            ),
            (
                "name: x\njobs:\n"
                "  - name: a\n    kind: table\n    number: 6\n    needs: [3]\n",
                "list of job names",
            ),
        ],
    )
    def test_rejects(self, tmp_path, text, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            self._load(tmp_path, text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError):
            load_scenario(tmp_path / "nowhere.yaml")

    def test_valid_scenario_parses(self, scenario):
        assert scenario.name == "drill"
        assert [job.name for job in scenario.jobs] == ["wide", "deep", "whatif-ep"]


def test_plan_campaign_estimates_without_running(scenario):
    rows = plan_campaign(scenario, SweepEngine(jobs=1))
    assert [row["name"] for row in rows] == ["wide", "deep", "whatif-ep"]
    wide, deep, whatif = rows
    assert wide["configs"] == 4 and wide["families"] == 2
    assert deep["configs"] == 3 and deep["families"] == 1
    assert whatif["configs"] == 0
    assert all(row["job_id"].startswith(row["kind"] + "-") for row in rows)


def _artifact_bytes(out_dir) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(out_dir.iterdir())
        if path.suffix == ".csv" or path.name == "MANIFEST.json"
    }


def test_run_campaign_writes_artifacts_and_manifest(scenario, tmp_path):
    out = tmp_path / "out"
    manifest = run_campaign(scenario, out, SweepEngine(jobs=1))
    assert manifest["scenario"] == "drill"
    assert (out / "MANIFEST.json").exists()
    on_disk = json.loads((out / "MANIFEST.json").read_text())
    assert on_disk == manifest
    for job in manifest["jobs"]:
        assert (out / job["artifact"]).read_text().strip()
    by_name = {job["name"]: job for job in manifest["jobs"]}
    assert by_name["wide"]["journal"] == "wide.journal"
    assert (out / "wide.journal").exists()
    assert by_name["whatif-ep"]["journal"] is None  # no grid, no journal


def test_rerun_is_idempotent_with_fresh_engine(scenario, tmp_path):
    out_a, out_b = tmp_path / "a", tmp_path / "b"
    run_campaign(scenario, out_a, SweepEngine(jobs=1))
    # Different directory AND different engine instance: the bytes are a
    # function of the scenario alone.
    run_campaign(scenario, out_b, SweepEngine(jobs=2))
    assert _artifact_bytes(out_a) == _artifact_bytes(out_b)
    # Same directory again: journals preload, nothing re-executes.
    recorder = obs.install()
    try:
        run_campaign(scenario, out_a, SweepEngine(jobs=1))
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()
    assert counters.get("sweep.configs_executed", 0) == 0
    assert counters["campaign.resumed_entries"] > 0
    assert _artifact_bytes(out_a) == _artifact_bytes(out_b)


# ----------------------------------------------------------------------
# Dependencies and the parallel scheduler
# ----------------------------------------------------------------------

# 'report' is listed first but needs 'base': scheduling order and
# manifest order must disagree (topo vs scenario order respectively).
NEEDS_YAML = """\
name: deps
jobs:
  - name: report
    kind: table
    number: 6
    needs: base
  - name: base
    kind: sweep
    machines: [sg2044]
    kernels: [ep]
    threads: [1, 2]
"""


@pytest.fixture
def needs_scenario(tmp_path):
    path = tmp_path / "needs.yaml"
    path.write_text(NEEDS_YAML)
    return load_scenario(path)


def _spy_order(monkeypatch):
    """Record job execution order while delegating to the real runner."""
    from repro.service import campaign

    order = []
    real = campaign._run_campaign_job

    def spy(engine, out, job, handle):
        order.append(job.name)
        return real(engine, out, job, handle)

    monkeypatch.setattr(campaign, "_run_campaign_job", spy)
    return order


def test_needs_parses_string_and_deduplicates(needs_scenario):
    assert needs_scenario.jobs[0].needs == ("base",)  # bare string coerced
    assert needs_scenario.jobs[1].needs == ()


def test_needs_defer_execution_but_not_manifest_order(
    needs_scenario, tmp_path, monkeypatch
):
    order = _spy_order(monkeypatch)
    manifest = run_campaign(needs_scenario, tmp_path / "out", SweepEngine(jobs=1))
    assert order == ["base", "report"]  # dependency ran first...
    names = [job["name"] for job in manifest["jobs"]]
    assert names == ["report", "base"]  # ...manifest stays scenario order


def test_parallel_campaign_matches_sequential(scenario, tmp_path):
    seq, par = tmp_path / "seq", tmp_path / "par"
    run_campaign(scenario, seq, SweepEngine(jobs=1))
    run_campaign(scenario, par, SweepEngine(jobs=1), jobs=3)
    assert _artifact_bytes(seq) == _artifact_bytes(par)


def test_parallel_respects_needs(needs_scenario, tmp_path, monkeypatch):
    order = _spy_order(monkeypatch)
    run_campaign(needs_scenario, tmp_path / "out", SweepEngine(jobs=1), jobs=4)
    assert order.index("base") < order.index("report")


def test_parallel_failure_reraises_without_manifest(scenario, tmp_path, monkeypatch):
    from repro.service import campaign

    real = campaign._run_campaign_job

    def sabotage(engine, out, job, handle):
        if job.name == "deep":
            raise RuntimeError("synthetic job failure")
        return real(engine, out, job, handle)

    monkeypatch.setattr(campaign, "_run_campaign_job", sabotage)
    out = tmp_path / "out"
    with pytest.raises(RuntimeError, match="synthetic job failure"):
        run_campaign(scenario, out, SweepEngine(jobs=1), jobs=3)
    assert not (out / "MANIFEST.json").exists()


def test_jobs_must_be_positive(scenario, tmp_path):
    with pytest.raises(ValueError, match="jobs"):
        run_campaign(scenario, tmp_path / "out", SweepEngine(jobs=1), jobs=0)


def test_campaign_restores_artifacts_from_store(scenario, tmp_path):
    """A store-backed rerun restores artifacts without executing jobs."""
    store = ResultStore(tmp_path / "store")
    out_a, out_b = tmp_path / "a", tmp_path / "b"
    run_campaign(scenario, out_a, SweepEngine(jobs=1, store=store))

    recorder = obs.install()
    try:
        run_campaign(scenario, out_b, SweepEngine(jobs=1, store=store))
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert counters["campaign.store_restores"] == len(scenario.jobs)
    assert counters.get("sweep.configs_executed", 0) == 0
    assert _artifact_bytes(out_a) == _artifact_bytes(out_b)


# ----------------------------------------------------------------------
# The crash drill
# ----------------------------------------------------------------------


def _crash_seed(scenario, engine, rate=0.5) -> int:
    """A seed whose schedule kills exactly the second job's probe.

    Scans the same deterministic schedule :class:`FaultPlan` uses: the
    ``campaign.job`` probe must stay quiet for ``wide`` and fire for
    ``deep``, and no ``sweep.group`` probe of ``wide``'s families may
    fire (attempt 0 is the only attempt: the probe fires *instead of*
    the family, and the injected error is terminal for the campaign).
    """
    from repro.service import request_configs

    wide = scenario.jobs[0]
    family_sites = {
        "/".join(str(part) for part in config.family_key())
        for config in request_configs(wide.request)
    }
    for seed in range(500):
        plan = FaultPlan(seed=seed, transient_rate=rate)
        roll = plan._uniform
        if roll("transient", "campaign.job", "wide", 0) < rate:
            continue  # job 1 must survive its probe
        if roll("transient", "campaign.job", "deep", 0) >= rate:
            continue  # job 2 must crash at its probe
        if any(
            roll("transient", "sweep.group", site, 0) < rate for site in family_sites
        ):
            continue  # job 1's families must all land cleanly
        return seed
    raise AssertionError("no crash seed found in 500 tries")


def test_crash_mid_campaign_then_resume_byte_identical(scenario, tmp_path):
    reference = tmp_path / "reference"
    crashed = tmp_path / "crashed"

    # The uninterrupted reference run.
    run_campaign(scenario, reference, SweepEngine(jobs=1))

    # Run 1: the fault plan kills the campaign at the second job's
    # probe.  Job 1's artifact and journal are already on disk; job 2
    # and the manifest never land.
    seed = _crash_seed(scenario, SweepEngine(jobs=1))
    faults.install(FaultPlan(seed=seed, transient_rate=0.5))
    try:
        with pytest.raises(InjectedTransientError):
            run_campaign(scenario, crashed, SweepEngine(jobs=1, retries=0))
    finally:
        faults.disable()

    assert (crashed / "wide.csv").exists()
    assert (crashed / "wide.journal").exists()
    assert not (crashed / "deep.csv").exists()
    assert not (crashed / "MANIFEST.json").exists()

    # Run 2: same scenario, same directory, fresh engine, faults off.
    # The journal preloads job 1's families; only the missing work runs.
    recorder = obs.install()
    try:
        run_campaign(scenario, crashed, SweepEngine(jobs=1))
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()
    assert counters["campaign.resumed_entries"] > 0
    # Only job 2's grid executed on resume (job 1 came from the journal).
    assert counters["sweep.configs_executed"] == 3

    assert _artifact_bytes(crashed) == _artifact_bytes(reference)
