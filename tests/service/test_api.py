"""End-to-end HTTP tests against a live server, plus golden JSON snapshots.

Everything here talks to a real ``ThreadingHTTPServer`` over plain
urllib -- no test client shims -- so routing, status codes, headers and
worker-thread hand-off are all exercised exactly as ``repro serve``
runs them.

The golden snapshots pin the two service documents that must stay
byte-stable across refactors: a finished job's status document (job IDs
are part of the dedup contract -- an accidental identity change silently
defeats duplicate-attachment across releases) and the ``/stats``
counters after a fixed request sequence.  Refresh intentionally with
``pytest tests/service --update-golden``.
"""

import difflib
import json
from pathlib import Path

from repro.service import JobManager, create_server

from .conftest import http_get, http_get_json, http_post_json

GOLDEN_DIR = Path(__file__).parent / "golden"

SWEEP = {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [1, 2]}


def _submit_and_finish(live_server, payload=None) -> tuple[str, dict]:
    """POST a job, block until terminal, return (job_id, final status)."""
    status, body = http_post_json(live_server.url("/api/v1/jobs"), payload or SWEEP)
    assert status == 202, body
    job_id = body["job_id"]
    status, doc = http_get_json(live_server.url(f"/api/v1/jobs/{job_id}?wait=30"))
    assert status == 200
    return job_id, doc


class TestEndpoints:
    def test_health(self, live_server):
        status, body = http_get_json(live_server.url("/health"))
        assert status == 200
        assert body["status"] == "ok"
        assert body["jobs_total"] == sum(body["jobs"].values())
        assert body["queue_size"] == 16
        assert body["engine"] == {"jobs": 2, "procs": 1}

    def test_submit_poll_artifact_round_trip(self, live_server):
        job_id, doc = _submit_and_finish(live_server)
        assert doc["state"] == "done"
        assert doc["artifact_ready"] is True
        assert doc["progress"] == {"completed": 2, "total": 2}
        assert doc["request"]["kind"] == "sweep"

        status, artifact = http_get(live_server.url(f"/api/v1/jobs/{job_id}/artifact"))
        assert status == 200
        text = artifact.decode()
        assert text.startswith("machine,kernel,class,threads,")
        # The HTTP artifact is the manager's artifact, byte for byte.
        assert text == live_server.manager.artifact(job_id)

        status, listing = http_get_json(live_server.url("/api/v1/jobs"))
        assert status == 200
        assert listing == [{"job_id": job_id, "kind": "sweep", "state": "done"}]

    def test_duplicate_submission_over_http(self, live_server):
        job_id, _ = _submit_and_finish(live_server)
        status, body = http_post_json(
            live_server.url("/api/v1/jobs"),
            {**SWEEP, "threads": [2, 1]},  # different spelling, same work
        )
        assert status == 202
        assert body["job_id"] == job_id
        assert body["deduplicated"] is True

    def test_submit_rejects_malformed(self, live_server):
        for payload in ({}, {"kind": "sweep", "kernels": ["ep"]}, {"kind": "x"}):
            status, body = http_post_json(live_server.url("/api/v1/jobs"), payload)
            assert status == 400
            assert "error" in body

    def test_submit_rejects_oversized_grid(self, live_server):
        huge = {
            "kind": "sweep",
            "machines": ["sg2042", "sg2044"],
            "kernels": ["is", "mg", "ep", "cg", "ft"],
            "classes": ["S", "W", "A", "B", "C"],
            "threads": list(range(1, 500)),
        }
        status, body = http_post_json(live_server.url("/api/v1/jobs"), huge)
        assert status == 413
        assert "campaign" in body["error"]

    def test_unknown_job_is_404(self, live_server):
        for path in (
            "/api/v1/jobs/sweep-nope",
            "/api/v1/jobs/sweep-nope/artifact",
        ):
            status, body = http_get_json(live_server.url(path))
            assert status == 404, path
        status, _ = http_post_json(live_server.url("/api/v1/jobs/sweep-nope/cancel"), {})
        assert status == 404

    def test_unknown_route_is_404(self, live_server):
        assert http_get(live_server.url("/api/v2/jobs"))[0] == 404
        assert http_post_json(live_server.url("/api/v1/nope"), {})[0] == 404

    def test_bad_wait_param_is_400(self, live_server):
        job_id, _ = _submit_and_finish(live_server)
        status, body = http_get_json(
            live_server.url(f"/api/v1/jobs/{job_id}?wait=soon")
        )
        assert status == 400
        assert "wait" in body["error"]

    def test_stats_reports_service_counters(self, live_server):
        _submit_and_finish(live_server)
        status, report = http_get_json(live_server.url("/stats"))
        assert status == 200
        assert report["version"] == 1
        assert report["counters"]["service.submitted"] == 1
        assert report["counters"]["service.completed"] == 1
        assert report["service"]["jobs"]["done"] == 1

    def test_health_and_stats_surface_bench_trajectory(
        self, live_server, tmp_path, monkeypatch
    ):
        from repro.bench.history import BenchHistory

        # No history recorded: the endpoints degrade to None, never 500.
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "none"))
        status, body = http_get_json(live_server.url("/health"))
        assert status == 200
        assert body["bench"] is None

        BenchHistory(tmp_path / "history").append({
            "run": {"git_sha": "a" * 40, "timestamp": "2026-08-09T00:00:00Z",
                    "suites": ["store"], "empty": False},
            "entries": [{"label": "store.get", "suite": "store", "get_s": 0.5}],
        })
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path / "history"))
        status, body = http_get_json(live_server.url("/health"))
        assert status == 200
        assert body["bench"]["runs"] == 1
        assert body["bench"]["labels"] == 1
        assert body["bench"]["latest"]["suites"] == ["store"]
        assert body["bench"]["latest"]["git_sha"].startswith("a")

        status, report = http_get_json(live_server.url("/stats"))
        assert status == 200
        assert report["bench"]["runs"] == 1


class TestQueuedJobsOverHTTP:
    """Paths that need jobs to *stay* queued use a workers=0 manager."""

    def _paused_server(self, tmp_path):
        manager = JobManager(workers=0, queue_size=4, artifact_dir=tmp_path)
        return create_server("127.0.0.1", 0, manager), manager

    def test_cancel_and_artifact_conflict(self, tmp_path):
        import threading

        server, manager = self._paused_server(tmp_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            status, body = http_post_json(base + "/api/v1/jobs", SWEEP)
            assert status == 202 and body["state"] == "queued"
            job_id = body["job_id"]

            # The artifact of a queued job is a 409, not an empty 200.
            status, body = http_get_json(f"{base}/api/v1/jobs/{job_id}/artifact")
            assert status == 409
            assert "queued" in body["error"]

            status, body = http_post_json(f"{base}/api/v1/jobs/{job_id}/cancel", {})
            assert status == 200
            assert body == {"job_id": job_id, "cancelled": True, "state": "cancelled"}
            # Cancel is idempotent over HTTP too.
            status, body = http_post_json(f"{base}/api/v1/jobs/{job_id}/cancel", {})
            assert status == 200 and body["cancelled"] is True

            status, _ = http_get_json(base + "/stats")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Golden snapshots
# ----------------------------------------------------------------------


def _check_golden(name: str, actual: str, update_golden: bool) -> None:
    golden_path = GOLDEN_DIR / name
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(actual)
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; "
        "run `pytest tests/service --update-golden` to create it"
    )
    expected = golden_path.read_text()
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"golden/{name}",
                tofile="this run",
            )
        )
        raise AssertionError(
            f"service document drifted from golden/{name}.\n"
            "If the change is intentional, refresh with\n"
            "    pytest tests/service --update-golden\n"
            f"and commit the diff:\n{diff}"
        )


def test_status_document_golden(live_server, update_golden):
    """The full status JSON -- including the job ID -- is release-stable."""
    _, doc = _submit_and_finish(live_server)
    _check_golden(
        "status_ep_sweep.json",
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        update_golden,
    )


def test_stats_counters_golden(live_server, update_golden):
    """Counters after a fixed sequence: submit, wait, stats.

    Pins the whole service/engine counter surface for one job the same
    way ``tests/obs/golden`` pins the harness pipelines; ``timings`` and
    spans are volatile and excluded.
    """
    _submit_and_finish(live_server)
    status, report = http_get_json(live_server.url("/stats"))
    assert status == 200
    snapshot = {"counters": report["counters"], "service": report["service"]}
    _check_golden(
        "stats_counters.json",
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        update_golden,
    )
