"""Concurrency stress: simultaneous duplicates and subgrid containment.

Two drills over the live HTTP server:

1. Eight client threads POST the *same* sweep at the same instant
   (released by a barrier).  Exactly one execution may happen -- the
   manager's dedup plus the engine's single-flight table must absorb
   the other seven -- and all eight clients must read byte-identical
   artifacts under the same job ID.

2. A sub-sweep submitted while its super-sweep is mid-flight must not
   execute anything: the engine's subgrid containment parks it on the
   super-sweep's completion event (``sweep.containment_waits``).  The
   super-sweep is held open by a gated runner so the overlap is
   deterministic, not a scheduling accident.
"""

import threading

import pytest

from repro.core.experiment import ExperimentRunner
from repro.core.sweep import SweepEngine
from repro.service import JobManager, JobState, create_server

from .conftest import http_get, http_get_json, http_post_json

SWEEP = {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [1, 2]}


def test_eight_simultaneous_duplicates_execute_once(live_server):
    """8 threads, 1 execution, 1 job ID, identical bytes for everyone."""
    n_clients = 8
    barrier = threading.Barrier(n_clients)
    responses: list[dict] = [None] * n_clients
    errors: list[Exception] = []

    # Vary the axis spelling per client: canonicalisation must fold all
    # of them onto one identity before dedup even looks at them.
    payloads = [
        {**SWEEP, "threads": [1, 2] if i % 2 == 0 else [2, 1, 2]}
        for i in range(n_clients)
    ]

    def client(i: int) -> None:
        try:
            barrier.wait(timeout=10)
            status, body = http_post_json(live_server.url("/api/v1/jobs"), payloads[i])
            assert status == 202, body
            responses[i] = body
        except Exception as exc:  # surfaced below; never swallowed
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors

    job_ids = {body["job_id"] for body in responses}
    assert len(job_ids) == 1, f"duplicates minted distinct jobs: {job_ids}"
    (job_id,) = job_ids
    assert sum(body["deduplicated"] for body in responses) == n_clients - 1

    status, doc = http_get_json(live_server.url(f"/api/v1/jobs/{job_id}?wait=30"))
    assert status == 200 and doc["state"] == "done"
    assert doc["submissions"] == n_clients

    artifacts = set()
    for _ in range(n_clients):
        status, body = http_get(live_server.url(f"/api/v1/jobs/{job_id}/artifact"))
        assert status == 200
        artifacts.add(body)
    assert len(artifacts) == 1  # byte-identical for every client

    counters = live_server.recorder.counters_snapshot()
    assert counters["service.submitted"] == n_clients
    assert counters["service.dedup_attached"] == n_clients - 1
    assert counters["service.executions"] == 1
    assert counters["sweep.configs_executed"] == 2  # the grid ran exactly once


class GatedRunner(ExperimentRunner):
    """Holds the first family mid-execution until the test releases it.

    Subclassing also forces the engine off the megagrid planner and onto
    the per-family path that registers in-flight sweeps -- exactly the
    machinery the containment drill is probing.
    """

    def __init__(self) -> None:
        super().__init__(noise_cv=0.0)
        self.started = threading.Event()
        self.release = threading.Event()
        self._gated = True

    def run_many(self, configs):
        if self._gated:
            self._gated = False
            self.started.set()
            assert self.release.wait(timeout=30), "containment test never released"
        return super().run_many(configs)


@pytest.fixture
def gated_service(tmp_path):
    """A live server whose engine blocks on the first family it runs."""
    from repro import obs

    runner = GatedRunner()
    recorder = obs.install()
    manager = JobManager(
        engine=SweepEngine(runner=runner, jobs=2, retries=0),
        workers=2,
        queue_size=16,
        artifact_dir=tmp_path / "artifacts",
    )
    server = create_server("127.0.0.1", 0, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}", runner, recorder
    finally:
        runner.release.set()  # never leave a worker parked on the gate
        server.shutdown()
        server.server_close()
        manager.shutdown()
        thread.join(timeout=5)
        obs.disable()


def test_contained_subsweep_rides_the_superset(gated_service):
    base, runner, recorder = gated_service

    super_sweep = {**SWEEP, "threads": [1, 2, 4, 8]}
    status, super_body = http_post_json(base + "/api/v1/jobs", super_sweep)
    assert status == 202

    # The super-sweep is now RUNNING and parked inside the runner with
    # all four cache keys claimed in the single-flight table.
    assert runner.started.wait(timeout=30)

    sub_sweep = {**SWEEP, "threads": [1, 2]}
    status, sub_body = http_post_json(base + "/api/v1/jobs", sub_sweep)
    assert status == 202
    assert sub_body["job_id"] != super_body["job_id"]  # different work

    # The second worker picks the sub-sweep up and hits containment: all
    # its keys are in flight under one super-sweep, so it waits on that
    # sweep's single event instead of executing anything.
    deadline_poll = threading.Event()
    for _ in range(300):
        if recorder.counters_snapshot().get("sweep.containment_waits", 0):
            break
        deadline_poll.wait(0.05)
    assert recorder.counters_snapshot().get("sweep.containment_waits", 0) >= 1

    runner.release.set()
    for job_id in (super_body["job_id"], sub_body["job_id"]):
        status, doc = http_get_json(f"{base}/api/v1/jobs/{job_id}?wait=30")
        assert status == 200 and doc["state"] == "done", doc

    counters = recorder.counters_snapshot()
    # 4 configs executed in total: the sub-sweep's 2 were never re-run.
    assert counters["sweep.configs_executed"] == 4
    assert counters["service.executions"] == 2

    # The contained artifact is the matching prefix of the super-sweep's.
    _, super_csv = http_get(f"{base}/api/v1/jobs/{super_body['job_id']}/artifact")
    _, sub_csv = http_get(f"{base}/api/v1/jobs/{sub_body['job_id']}/artifact")
    super_lines = super_csv.decode().splitlines()
    sub_lines = sub_csv.decode().splitlines()
    assert sub_lines == super_lines[: len(sub_lines)]
