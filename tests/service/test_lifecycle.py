"""Property-based job-lifecycle model: Hypothesis drives the manager.

A :class:`RuleBasedStateMachine` submits, runs, cancels and re-submits
jobs against a ``workers=0`` manager (so every step is synchronous and
the machine sees each state it creates).  After *every* rule two
invariants hold:

* **Legality** -- each job's observed state sequence only ever moves
  along ``TRANSITIONS`` (so e.g. CANCELLED -> RUNNING can never be
  observed, no matter the interleaving Hypothesis invents).
* **Conservation** -- every job the manager knows about is in exactly
  one state: ``sum(counts().values()) == len(jobs())``, and the
  terminal ones all have their ``done`` event set.

Shrinking matters here: when a sequence breaks an invariant, Hypothesis
reports the minimal submit/run/cancel dance that reproduces it.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)
from hypothesis import strategies as st

from repro import obs
from repro.core.sweep import SweepEngine
from repro.service import TRANSITIONS, JobManager, JobState, parse_request

# A small pool of distinct cheap requests: enough identities for dedup
# and re-submission to interact, small enough that runs stay fast.
REQUEST_POOL = [
    parse_request(
        {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [n]}
    )
    for n in (1, 2, 4)
] + [parse_request({"kind": "whatif", "kernel": "ep", "threads": 8})]

TERMINAL = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def _reachable() -> frozenset:
    """Transitive closure of TRANSITIONS: observation is sampled, so a
    history may skip intermediate states (QUEUED observed, then DONE with
    RUNNING unobserved in between) -- that is legal iff a legal path
    exists.  What must NEVER appear is a pair with no path, e.g.
    CANCELLED -> RUNNING or DONE -> anything."""
    closure = set(TRANSITIONS)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b is c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return frozenset(closure)


REACHABLE = _reachable()


class JobLifecycleMachine(RuleBasedStateMachine):
    @initialize()
    def fresh_manager(self):
        obs.disable()
        self.manager = JobManager(
            engine=SweepEngine(jobs=1), workers=0, queue_size=8
        )
        #: job object -> list of states observed for it, in order.
        self.histories: dict[int, list[JobState]] = {}
        self.tracked: dict[int, object] = {}

    def _observe(self, job) -> None:
        history = self.histories.setdefault(id(job), [job.state])
        self.tracked[id(job)] = job
        if job.state is not history[-1]:
            history.append(job.state)

    # -- rules ---------------------------------------------------------

    @rule(index=st.integers(min_value=0, max_value=len(REQUEST_POOL) - 1))
    def submit(self, index):
        try:
            job, deduplicated = self.manager.submit(REQUEST_POOL[index])
        except Exception:
            # QueueFull is legal behaviour under pressure; nothing to track.
            return
        if not deduplicated:
            assert job.state is JobState.QUEUED
        self._observe(job)

    @rule()
    def run_next(self):
        job = self.manager.run_next()
        if job is not None:
            assert job.state in (JobState.DONE, JobState.FAILED)
            self._observe(job)

    @rule(index=st.integers(min_value=0, max_value=len(REQUEST_POOL) - 1))
    def cancel(self, index):
        request = REQUEST_POOL[index]
        from repro.service import request_job_id

        job_id = request_job_id(self.manager.engine, request)
        job = self.manager.get(job_id)
        before = job.state if job is not None else None
        cancelled = self.manager.cancel(job_id)
        if before in (JobState.QUEUED, JobState.CANCELLED):
            assert cancelled is True  # including idempotent re-cancel
        else:
            assert cancelled is False  # unknown, running or done/failed
            if job is not None:
                assert job.state is before  # cancel never mutated it
        if job is not None:
            self._observe(job)

    @rule()
    def cancel_unknown(self):
        assert self.manager.cancel("sweep-000000000000") is False

    # -- invariants ----------------------------------------------------

    @invariant()
    def transitions_are_legal(self):
        for job in self.manager.jobs():
            self._observe(job)
        for history in self.histories.values():
            for src, dst in zip(history, history[1:]):
                assert (src, dst) in REACHABLE, f"illegal {src} -> {dst}"

    @invariant()
    def conservation(self):
        counts = self.manager.counts()
        jobs = self.manager.jobs()
        assert sum(counts.values()) == len(jobs)
        for state in JobState:
            assert counts[state.value] == sum(
                1 for job in jobs if job.state is state
            )

    @invariant()
    def terminal_jobs_are_signalled(self):
        for job in self.manager.jobs():
            if job.state in TERMINAL:
                assert job.done.is_set()
                assert job.terminal()
            else:
                assert not job.terminal()


def test_job_lifecycle_state_machine():
    run_state_machine_as_test(
        JobLifecycleMachine,
        settings=settings(
            max_examples=40, stateful_step_count=30, deadline=None
        ),
    )


def test_transition_table_is_the_contract():
    """The machine's legality oracle is the real exported table."""
    assert (JobState.QUEUED, JobState.RUNNING) in TRANSITIONS
    assert (JobState.CANCELLED, JobState.RUNNING) not in TRANSITIONS
    assert (JobState.DONE, JobState.RUNNING) not in TRANSITIONS
    # Every transition source/target is a real state.
    for src, dst in TRANSITIONS:
        assert isinstance(src, JobState) and isinstance(dst, JobState)
