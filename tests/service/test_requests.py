"""Request parsing, canonical identity and artifact rendering units."""

import pytest

from repro.core.sweep import SweepEngine
from repro.harness import build_table
from repro.service import (
    RequestError,
    estimate,
    execute_request,
    parse_request,
    request_configs,
    request_job_id,
)


@pytest.fixture(scope="module")
def engine():
    return SweepEngine(jobs=1)


SWEEP = {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [1, 2]}


class TestParsing:
    def test_sweep_round_trip(self):
        request = parse_request(SWEEP)
        assert request.kind == "sweep"
        assert request.machines == ("sg2044",)
        assert request.threads == (1, 2)
        configs = request_configs(request)
        assert [c.n_threads for c in configs] == [1, 2]

    def test_axis_spelling_is_canonicalised(self):
        a = parse_request(SWEEP)
        b = parse_request(
            {
                "kind": "sweep",
                "machines": "sg2044",  # bare string promotes to a list
                "kernels": ["ep", "ep"],
                "threads": [2, 1, 2],
            }
        )
        assert a == b

    def test_table_and_figure(self):
        assert parse_request({"kind": "table", "number": 3}).number == 3
        assert parse_request({"kind": "figure", "number": 5}).kind == "figure"
        assert request_configs(parse_request({"kind": "table", "number": 3}))

    def test_whatif(self):
        request = parse_request({"kind": "whatif", "kernel": "ep", "threads": 16})
        assert request.kernel == "ep"
        assert request.n_threads == 16
        assert request_configs(request) == []

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"kind": "nonsense"},
            {"kind": "table", "number": 99},
            {"kind": "figure", "number": 0},
            {"kind": "whatif", "kernel": "nope"},
            {"kind": "sweep", "kernels": ["ep"]},  # no machines
            {"kind": "sweep", "machines": [], "kernels": ["ep"]},
            {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [0]},
            {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "classes": ["Z"]},
            {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "vectorise": "yes"},
            {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "runs": 0},
            {"kind": "sweep", "machines": ["no-such-machine"], "kernels": ["ep"]},
            {"kind": "sweep", "machines": ["sg2044"], "kernels": ["no-such-kernel"]},
        ],
    )
    def test_rejects(self, payload):
        with pytest.raises(RequestError):
            parse_request(payload)


class TestIdentity:
    def test_same_work_same_id(self, engine):
        a = request_job_id(engine, parse_request(SWEEP))
        b = request_job_id(
            engine,
            parse_request(
                {
                    "kind": "sweep",
                    "machines": ["sg2044"],
                    "kernels": ["ep"],
                    "threads": [2, 1],
                }
            ),
        )
        assert a == b
        assert a.startswith("sweep-")

    def test_different_grid_different_id(self, engine):
        a = request_job_id(engine, parse_request(SWEEP))
        b = request_job_id(
            engine,
            parse_request(
                {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [1]}
            ),
        )
        assert a != b

    def test_runner_settings_enter_the_id(self):
        from repro.core.experiment import ExperimentRunner

        request = parse_request(SWEEP)
        a = request_job_id(SweepEngine(jobs=1), request)
        b = request_job_id(
            SweepEngine(runner=ExperimentRunner(seed=123), jobs=1), request
        )
        assert a != b

    def test_estimate_counts_grid(self, engine):
        cost = estimate(engine, parse_request(SWEEP))
        assert cost["configs"] == 2
        assert cost["families"] == 1
        from repro.harness.tables import table_grid

        table = estimate(engine, parse_request({"kind": "table", "number": 3}))
        assert table["configs"] == len(table_grid(3))
        assert table["families"] == len({c.family_key() for c in table_grid(3)})


class TestExecution:
    def test_sweep_csv_shape_and_determinism(self, engine):
        request = parse_request(SWEEP)
        first = execute_request(engine, request)
        second = execute_request(SweepEngine(jobs=1), request)
        assert first == second  # cold vs warm/fresh engines, same bytes
        lines = first.strip().splitlines()
        assert lines[0].startswith("machine,kernel,class,")
        assert len(lines) == 3
        assert lines[1].startswith("sg2044,ep,C,1,")
        assert lines[1].endswith(",ok")

    def test_sweep_csv_marks_dnr(self, engine):
        # FT class C does not fit the Allwinner D1's 1 GiB of DRAM.
        request = parse_request(
            {
                "kind": "sweep",
                "machines": ["allwinner-d1"],
                "kernels": ["ft"],
                "threads": [1],
            }
        )
        artifact = execute_request(engine, request)
        assert artifact.strip().splitlines()[1].endswith(",,,DNR")

    def test_table_artifact_matches_harness(self, engine):
        request = parse_request({"kind": "table", "number": 3})
        assert execute_request(engine, request) == build_table(3).to_csv()

    def test_table_runs_entirely_on_the_given_engine(self):
        """The builder must reuse the prefetching engine, not the default.

        A private engine (the service's) executes the table grid once;
        if the builder silently fell back to ``default_engine()`` the
        grid would run twice and the per-job journal would miss the
        builder's work.
        """
        from repro import obs
        from repro.core.sweep import clear_caches
        from repro.harness.tables import table_grid

        clear_caches()  # a warm default engine would mask a fallback
        private = SweepEngine(jobs=1)
        recorder = obs.install()
        try:
            execute_request(private, parse_request({"kind": "table", "number": 4}))
        finally:
            obs.disable()
        counters = recorder.counters_snapshot()
        assert counters["sweep.configs_executed"] == len(table_grid(4))

    def test_whatif_artifact(self, engine):
        request = parse_request({"kind": "whatif", "kernel": "ep", "threads": 16})
        lines = execute_request(engine, request).strip().splitlines()
        assert lines[0] == "section,step,mops,factor"
        assert lines[1].startswith("ladder,baseline-sg2042,")
        assert any(line.startswith("marginal,") for line in lines)
