"""JobManager units: dedup, bounded admission, lifecycle, journals.

Everything here runs with ``workers=0`` and drives execution through
:meth:`JobManager.run_next`, so the tests are single-threaded and every
assertion about states and counters is exact.
"""

import pytest

from repro import obs
from repro.core.sweep import SweepEngine
from repro.faults import SweepJournal
from repro.service import (
    IllegalTransition,
    JobManager,
    JobState,
    QueueFull,
    parse_request,
    request_configs,
)
from repro.store import ResultStore

SWEEP = {"kind": "sweep", "machines": ["sg2044"], "kernels": ["ep"], "threads": [1, 2]}


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def manager(tmp_path):
    return JobManager(
        engine=SweepEngine(jobs=1),
        workers=0,
        queue_size=4,
        artifact_dir=tmp_path / "artifacts",
        journal_dir=tmp_path / "journals",
    )


def test_submit_run_done(manager, tmp_path):
    job, deduplicated = manager.submit(parse_request(SWEEP))
    assert not deduplicated
    assert job.state is JobState.QUEUED
    ran = manager.run_next()
    assert ran is job
    assert job.state is JobState.DONE
    assert job.artifact.startswith("machine,kernel,")
    on_disk = (tmp_path / "artifacts" / f"{job.job_id}.csv").read_text()
    assert on_disk == job.artifact
    assert manager.artifact(job.job_id) == job.artifact
    assert manager.run_next() is None  # queue drained


def test_duplicate_submission_attaches(manager):
    job, first = manager.submit(parse_request(SWEEP))
    again, deduplicated = manager.submit(
        parse_request({**SWEEP, "threads": [2, 1]})
    )
    assert again is job
    assert deduplicated
    assert job.submissions == 2
    manager.run_next()
    # A duplicate of a DONE job attaches too: the artifact is reusable.
    final, deduplicated = manager.submit(parse_request(SWEEP))
    assert final is job and deduplicated


def test_queue_bound_rejects(manager):
    for threads in ([1], [2], [4], [8]):
        manager.submit(parse_request({**SWEEP, "threads": threads}))
    with pytest.raises(QueueFull):
        manager.submit(parse_request({**SWEEP, "threads": [16]}))
    # Draining one slot readmits.
    manager.run_next()
    manager.submit(parse_request({**SWEEP, "threads": [16]}))


def test_cancel_queued_is_idempotent(manager):
    job, _ = manager.submit(parse_request(SWEEP))
    assert manager.cancel(job.job_id) is True
    assert job.state is JobState.CANCELLED
    assert manager.cancel(job.job_id) is True  # idempotent
    assert job.state is JobState.CANCELLED
    assert job.done.is_set()
    # The stale queue entry is consumed and skipped, never executed.
    assert manager.run_next() is None
    assert job.state is JobState.CANCELLED


def test_cancel_unknown_and_terminal(manager):
    assert manager.cancel("sweep-doesnotexist") is False
    job, _ = manager.submit(parse_request(SWEEP))
    manager.run_next()
    assert job.state is JobState.DONE
    assert manager.cancel(job.job_id) is False
    assert job.state is JobState.DONE


def test_cancel_detaches_duplicate_submission(manager):
    """With >1 submitter attached, cancel detaches one; the job survives."""
    job, _ = manager.submit(parse_request(SWEEP))
    manager.submit(parse_request(SWEEP))
    manager.submit(parse_request({**SWEEP, "threads": [2, 1]}))
    assert job.submissions == 3

    recorder = obs.install()
    assert manager.cancel(job.job_id) is True  # detaches, does not cancel
    obs.disable()
    assert job.state is JobState.QUEUED
    assert job.submissions == 2
    assert recorder.counters_snapshot()["service.cancel_detached"] == 1

    assert manager.cancel(job.job_id) is True  # second detach
    assert job.state is JobState.QUEUED and job.submissions == 1

    # The remaining submitter still gets its result.
    ran = manager.run_next()
    assert ran is job and job.state is JobState.DONE


def test_cancel_last_submission_cancels_for_real(manager):
    job, _ = manager.submit(parse_request(SWEEP))
    manager.submit(parse_request(SWEEP))
    manager.cancel(job.job_id)  # detach down to one submitter
    assert manager.cancel(job.job_id) is True  # sole submitter: real cancel
    assert job.state is JobState.CANCELLED
    assert manager.run_next() is None


def test_done_from_store_without_worker(tmp_path):
    """A store-warm submission goes QUEUED -> DONE without a worker."""
    store = ResultStore(tmp_path / "store")
    first = JobManager(
        engine=SweepEngine(jobs=1, store=store),
        workers=0,
        artifact_dir=tmp_path / "a1",
    )
    job, _ = first.submit(parse_request(SWEEP))
    first.run_next()
    assert job.state is JobState.DONE

    recorder = obs.install()
    second = JobManager(
        engine=SweepEngine(jobs=1, store=store),
        workers=0,
        artifact_dir=tmp_path / "a2",
    )
    served, deduplicated = second.submit(parse_request(SWEEP))
    obs.disable()
    assert not deduplicated
    assert served.state is JobState.DONE  # short-circuited at submit
    assert served.artifact == job.artifact
    on_disk = (tmp_path / "a2" / f"{served.job_id}.csv").read_text()
    assert on_disk == job.artifact  # artifact file materialised too
    assert second.run_next() is None  # never entered the queue
    counters = recorder.counters_snapshot()
    assert counters["service.store_served"] == 1
    assert counters.get("sweep.configs_executed", 0) == 0

    # A duplicate of a store-served job attaches like any DONE job.
    again, deduplicated = second.submit(parse_request(SWEEP))
    assert again is served and deduplicated


def test_resubmit_after_cancel_requeues(manager):
    job, _ = manager.submit(parse_request(SWEEP))
    manager.cancel(job.job_id)
    fresh, deduplicated = manager.submit(parse_request(SWEEP))
    assert not deduplicated
    assert fresh is not job
    assert fresh.job_id == job.job_id  # identity is the work, not the attempt
    ran = manager.run_next()
    assert ran is fresh and fresh.state is JobState.DONE


def test_failed_job_records_error(manager, monkeypatch):
    job, _ = manager.submit(parse_request(SWEEP))

    def boom(engine, request):
        raise RuntimeError("synthetic failure")

    monkeypatch.setattr("repro.service.jobs.execute_request", boom)
    manager.run_next()
    assert job.state is JobState.FAILED
    assert "synthetic failure" in job.error
    status = manager.status(job.job_id)
    assert status["state"] == "failed"
    assert status["error"] == "RuntimeError: synthetic failure"


def test_illegal_transition_raises(manager):
    job, _ = manager.submit(parse_request(SWEEP))
    manager.cancel(job.job_id)
    with manager._lock:
        with pytest.raises(IllegalTransition):
            manager._transition(job, JobState.RUNNING)


def test_status_and_counts(manager):
    job, _ = manager.submit(parse_request(SWEEP))
    status = manager.status(job.job_id)
    assert status["state"] == "queued"
    assert status["estimate"] == {"configs": 2, "families": 1}
    assert status["progress"] == {"completed": 0, "total": 2}
    assert manager.counts()["queued"] == 1
    manager.run_next()
    status = manager.status(job.job_id)
    assert status["state"] == "done"
    assert status["progress"] == {"completed": 2, "total": 2}
    assert status["artifact_ready"] is True
    assert manager.status("sweep-unknown") is None


def test_per_job_journal_scoped_to_its_keys(manager, tmp_path):
    """The job's journal holds exactly the job's families, nothing else."""
    wide, _ = manager.submit(
        parse_request({**SWEEP, "kernels": ["ep", "is"], "threads": [1]})
    )
    manager.run_next()
    journal = SweepJournal(tmp_path / "journals" / f"{wide.job_id}.journal")
    keys = set(journal.results())
    expected = {manager.engine.cache_key(c) for c in request_configs(wide.request)}
    assert keys == expected


def test_journal_resumes_on_resubmission(tmp_path):
    """A fresh manager+engine preloads the journal instead of re-executing."""
    request = parse_request(SWEEP)
    first = JobManager(
        engine=SweepEngine(jobs=1), workers=0, journal_dir=tmp_path / "j"
    )
    job, _ = first.submit(request)
    first.run_next()
    assert job.state is JobState.DONE

    recorder = obs.install()
    second = JobManager(
        engine=SweepEngine(jobs=1), workers=0, journal_dir=tmp_path / "j"
    )
    resumed, _ = second.submit(request)
    second.run_next()
    obs.disable()
    assert resumed.state is JobState.DONE
    assert resumed.artifact == job.artifact  # byte-identical from the journal
    counters = recorder.counters_snapshot()
    assert counters.get("sweep.configs_executed", 0) == 0  # nothing re-ran
