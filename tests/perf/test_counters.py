"""Simulated perf counters."""

import pytest

from repro.compilers.gcc import get_compiler
from repro.machines.catalog import get_machine
from repro.npb.signatures import signature_for
from repro.perf.counters import measure


class TestCounters:
    def test_basic_sanity(self, model):
        c = measure(
            get_machine("sg2044"),
            signature_for("ep", "C"),
            get_compiler("gcc-15.2"),
            model=model,
        )
        assert c.instructions > 0
        assert c.cycles > 0
        assert 0.0 < c.ipc < 4.0
        assert c.branch_misses < c.branches < c.instructions

    def test_summary_format(self, model):
        c = measure(
            get_machine("sg2044"),
            signature_for("mg", "C"),
            get_compiler("gcc-15.2"),
            model=model,
        )
        s = c.summary()
        assert "IPC" in s and "MG" in s

    def test_scalar_vs_vector_instruction_counts(self, model):
        m = get_machine("sg2044")
        sig = signature_for("mg", "C")
        gcc = get_compiler("gcc-15.2")
        scalar = measure(m, sig, gcc, vectorise=False, model=model)
        vector = measure(m, sig, gcc, vectorise=True, model=model)
        # Healthy vectorisation retires fewer instructions.
        assert vector.instructions < scalar.instructions

    def test_pathological_cg_retires_more_instructions(self, model):
        m = get_machine("sg2044")
        sig = signature_for("cg", "C")
        gcc = get_compiler("gcc-15.2")
        scalar = measure(m, sig, gcc, vectorise=False, model=model)
        vector = measure(m, sig, gcc, vectorise=True, model=model)
        assert vector.instructions > 1.5 * scalar.instructions
        assert vector.branch_miss_rate > 1.8 * scalar.branch_miss_rate
