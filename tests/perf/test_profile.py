"""The Section 6 CG vectorisation study."""

import pytest

from repro.perf.profile import UNROLL_SPEEDUPS, cg_vectorisation_study


class TestCGStudy:
    @pytest.fixture(scope="class")
    def row(self):
        return cg_vectorisation_study("sg2044")

    def test_vectorised_materially_slower(self, row):
        assert 1.8 < row.slowdown < 3.2  # paper: ~2.7x

    def test_branch_misses_double(self, row):
        assert row.branch_miss_ratio == pytest.approx(2.0, abs=0.2)

    def test_ipc_nearly_equal(self, row):
        # Paper: 0.54 scalar vs 0.51 vectorised -- near parity.
        assert row.ipc_vectorised == pytest.approx(row.ipc_scalar, rel=0.25)

    def test_unroll_ladder(self, row):
        gains = [v.relative_to_default_vec for v in row.unroll_variants]
        assert gains == sorted(gains)
        assert gains[-1] == UNROLL_SPEEDUPS[8] == 1.64

    def test_no_unroll_variant_beats_scalar(self, row):
        # The paper's conclusion: "these still fell short of the
        # non-vectorised performance."
        assert not any(v.beats_scalar for v in row.unroll_variants)

    def test_spacemit_penalty_marginal(self):
        row = cg_vectorisation_study("milkv-jupiter", npb_class="B")
        assert row.slowdown < 1.35
