"""The incremental driver: cache replay, invalidation, parallel parity.

The contract under test is *observational invisibility*: a warm cache
(or a process pool) may only change how fast ``run_analysis`` gets to
its report, never a byte of the report itself.
"""

import json

from repro.analysis.core import CACHE_FILENAME, run_analysis
from repro.analysis.registry import all_rules, rules_for
from repro.analysis.reporting import render_json


def _tree(tmp_path):
    """Three files: clean, one R001 finding, one suppressed R001."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "hot.py").write_text("import time\nt = time.time()\n")
    (pkg / "quiet.py").write_text(
        "import time\nt = time.time()  # repro: noqa[R001] -- fixture\n"
    )
    return pkg


def _run(tmp_path, pkg, *, rules=None, jobs=None, cache=True):
    return run_analysis(
        [pkg],
        rules if rules is not None else all_rules(),
        root=tmp_path,
        cache_path=(tmp_path / CACHE_FILENAME) if cache else None,
        jobs=jobs,
    )


class TestCacheReplay:
    def test_warm_run_analyzes_nothing(self, tmp_path):
        pkg = _tree(tmp_path)
        cold = _run(tmp_path, pkg)
        assert cold.stats.files_analyzed == 3
        warm = _run(tmp_path, pkg)
        assert warm.stats.files_checked == 3
        assert warm.stats.files_cached == 3
        assert warm.stats.files_analyzed == 0
        assert render_json(warm) == render_json(cold)

    def test_replay_preserves_suppressions(self, tmp_path):
        pkg = _tree(tmp_path)
        cold = _run(tmp_path, pkg)
        warm = _run(tmp_path, pkg)
        assert cold.suppressed == warm.suppressed == 1
        assert cold.exit_code == warm.exit_code == 1

    def test_parse_errors_replay_from_cache(self, tmp_path):
        pkg = _tree(tmp_path)
        (pkg / "broken.py").write_text("def f(:\n")
        cold = _run(tmp_path, pkg)
        warm = _run(tmp_path, pkg)
        assert warm.stats.files_analyzed == 0
        assert render_json(warm) == render_json(cold)
        assert any(f.rule == "E001" for f in warm.findings)


class TestCacheInvalidation:
    def test_content_change_reanalyzes_only_that_file(self, tmp_path):
        pkg = _tree(tmp_path)
        _run(tmp_path, pkg)
        (pkg / "hot.py").write_text("x = 1\n")
        warm = _run(tmp_path, pkg)
        assert warm.stats.files_analyzed == 1
        assert warm.stats.files_cached == 2
        assert not any(f.path.endswith("hot.py") for f in warm.findings)

    def test_rule_selection_change_goes_cold(self, tmp_path):
        pkg = _tree(tmp_path)
        _run(tmp_path, pkg)
        narrowed = _run(tmp_path, pkg, rules=rules_for(["R001"]))
        assert narrowed.stats.files_analyzed == 3

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        pkg = _tree(tmp_path)
        cold = _run(tmp_path, pkg)
        (tmp_path / CACHE_FILENAME).write_text("{not json")
        again = _run(tmp_path, pkg)
        assert again.stats.files_analyzed == 3
        assert render_json(again) == render_json(cold)

    def test_new_file_joins_without_invalidating_others(self, tmp_path):
        pkg = _tree(tmp_path)
        _run(tmp_path, pkg)
        (pkg / "late.py").write_text("import time\nt = time.time()\n")
        warm = _run(tmp_path, pkg)
        assert warm.stats.files_analyzed == 1
        assert warm.stats.files_cached == 3
        # late.py carries the usual R001+R006 pair for a bare time.time().
        assert sum(f.path.endswith("late.py") for f in warm.findings) == 2

    def test_no_cache_path_writes_nothing(self, tmp_path):
        pkg = _tree(tmp_path)
        report = _run(tmp_path, pkg, cache=False)
        assert report.exit_code == 1
        assert not (tmp_path / CACHE_FILENAME).exists()


class TestParallelParity:
    def test_report_identical_across_worker_counts_and_cache(self, tmp_path):
        pkg = _tree(tmp_path)
        for i in range(9):
            (pkg / f"gen{i}.py").write_text(
                "import time\n" + ("t = time.time()\n" if i % 2 else "x = 1\n")
            )
        serial = _run(tmp_path, pkg, cache=False)
        parallel = _run(tmp_path, pkg, jobs=4, cache=False)
        assert render_json(parallel) == render_json(serial)
        cold = _run(tmp_path, pkg, jobs=4)
        warm = _run(tmp_path, pkg)
        assert render_json(cold) == render_json(serial)
        assert render_json(warm) == render_json(serial)

    def test_parallel_run_populates_the_cache(self, tmp_path):
        pkg = _tree(tmp_path)
        _run(tmp_path, pkg, jobs=2)
        doc = json.loads((tmp_path / CACHE_FILENAME).read_text())
        assert set(doc) == {"version", "ruleset", "files"}
        assert len(doc["files"]) == 3
