"""Known-good fixture for R010: snapshot under the lock, block outside.

The single-flight discipline from the sweep engine: the lock guards only
state transitions; waiting, sleeping, and harvesting futures all happen
after the lock is released.
"""

import threading
import time

_state_lock = threading.Lock()
_done = threading.Event()
_pending = []


def wait_for_peer():
    with _state_lock:
        ready = bool(_pending)
    if not ready:
        _done.wait()


def backoff():
    with _state_lock:
        delay = 0.05 if _pending else 0.0
    time.sleep(delay)


def harvest(job):
    with _state_lock:
        _pending.append(job)
    return job.result()


def _drain(items):
    time.sleep(0.01)
    return list(items)


def flush(items):
    with _state_lock:
        snapshot = list(items)
    return _drain(snapshot)
