"""R008 known-bad: process-shard workers mutating module-global state."""

import threading

_results = {}
_counts = []
_merge_lock = threading.Lock()
_total = 0


def merge_shard(payload):
    _results[payload[0]] = payload[1]


def _collect_worker(items):
    for item in items:
        _counts.append(item)


def _fold_worker(items):
    with _merge_lock:  # the child's lock is a stale fork-time copy
        _results.update(items)


def tally(n):
    global _total
    _total += n


def fan_out(pool, chunks):
    return [pool.submit(tally, len(chunk)) for chunk in chunks]
