"""R004 known-good: a catalog entry consistent with Table 5."""

KiB = 2**10
MiB = 2**20
GiB = 2**30

CACHES = (
    CacheLevel(1, 64 * KiB, "core", 4),  # noqa: F821 - fixture, never executed
    CacheLevel(2, 2 * MiB, "cluster", 30),  # noqa: F821
    CacheLevel(3, 64 * MiB, "chip", 90),  # noqa: F821
)

MACHINE = Machine(  # noqa: F821 - fixture, never executed
    name="sg2044",
    clock_hz=2.6e9,
    topology=Topology(  # noqa: F821
        total_cores=64, cores_per_cluster=4, numa_regions=1
    ),
    memory=MemorySubsystem(  # noqa: F821
        ddr=ddr5(5600),  # noqa: F821
        controllers=8,
        channels=32,
        capacity_bytes=128 * GiB,
        sustained_bw_override_gbs=170.0,
    ),
)
