"""Known-bad fixture for R012: raw file I/O aimed at store-owned paths."""

import os


def hand_rolled_put(store_root, digest, payload):
    entry = store_root / "objects" / f"{digest}.json"
    with open(store_root / "objects" / f"{digest}.json", "w") as fh:  # finding 1: open() on a store path (no checksum)
        fh.write(payload)
    return entry


def sneaky_promote(tmp_path, store_path):
    os.replace(tmp_path, store_path)  # finding 2: rename into the store dodges the index


def grab_lease(lease_path):
    return os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)  # finding 3: raw O_EXCL claim outside the protocol


def clobber_index(store_dir, entry):
    (store_dir / "index.json").write_text(entry)  # finding 4: direct index write corrupts LRU bookkeeping
