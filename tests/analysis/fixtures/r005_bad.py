"""R005 known-bad: grid/scalar cost terms missing their twins."""


class PerformanceModel:
    @staticmethod
    def _orphan_grid(sig, machine, ns):
        return ns

    @staticmethod
    def _scalar_only(sig, machine, n):
        return float(n)
