"""R005 known-bad: grid/scalar cost terms missing their twins, plus a
trace-engine registry missing its vectorized half and pointing the exact
slot at a name that is not a module-level function."""


class PerformanceModel:
    @staticmethod
    def _orphan_grid(sig, machine, ns):
        return ns

    @staticmethod
    def _scalar_only(sig, machine, n):
        return float(n)


TRACE_ENGINES = {
    "exact": _missing_engine,  # noqa: F821 -- deliberately unresolvable
}
