"""Known-good fixture for R007: handlers that stay honest about failure."""

from repro.faults import TransientError, classify


def narrow_is_fine(work):
    try:
        return work()
    except ValueError:
        return None  # naming the exception IS the classification


def broad_but_reraises(work, log):
    try:
        return work()
    except Exception as exc:
        log.append(str(exc))
        raise


def broad_but_wraps(work):
    try:
        return work()
    except Exception as exc:
        raise TransientError("flaky environment") from exc


def broad_but_classifies(work, retry):
    try:
        return work()
    except Exception as exc:
        if classify(exc) == "transient":
            return retry()
        raise
