"""R003 known-good: units converted explicitly, suffixes kept in names."""


def to_seconds(idle_latency_ns):
    latency_s = idle_latency_ns * 1e-9
    return latency_s


def total_time_s(compute_s, stream_s):
    return compute_s + stream_s


def capacity_check(working_set_bytes, cache_bytes):
    return working_set_bytes > cache_bytes
