"""Known-good fixture for R009: one global lock order, everywhere.

Every path that needs both locks takes the journal lock first, then the
cache lock -- including the interprocedural path through ``_fold``,
which is only ever called with no locks held.
"""

import threading

_journal_lock = threading.Lock()
_cache_lock = threading.Lock()

_entries = []


def record(entry):
    with _journal_lock:
        with _cache_lock:
            _entries.append(entry)


def evict(n):
    with _journal_lock:
        with _cache_lock:
            del _entries[:n]


def _fold():
    with _cache_lock:
        return len(_entries)


def flush():
    total = _fold()
    with _journal_lock:
        with _cache_lock:
            return total + len(_entries)
