"""R002 known-good: every cache write sits under the module lock."""

import threading

_cache_lock = threading.Lock()
_cache = {}
_engine = None


def get(key):
    with _cache_lock:
        if key not in _cache:
            _cache[key] = key * 2
        return _cache[key]


def default_engine():
    global _engine
    with _cache_lock:
        if _engine is None:
            _engine = object()
        return _engine


def local_copy():
    data = build_trace("cg", 1)  # noqa: F821 - fixture, never executed
    mine = list(data)
    mine[0] = 0.0
    return mine
