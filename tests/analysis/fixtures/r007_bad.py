"""Known-bad fixture for R007: broad handlers that swallow silently."""


def swallow_bare(work):
    try:
        return work()
    except:  # noqa: E722
        pass  # finding 1: bare except, nothing re-raised or classified


def swallow_exception(work, log):
    try:
        return work()
    except Exception as exc:
        log.append(str(exc))  # finding 2: logged but swallowed
        return None


def swallow_base_exception(work):
    try:
        return work()
    except BaseException:
        return None  # finding 3: even KeyboardInterrupt vanishes


def swallow_in_tuple(work):
    try:
        return work()
    except (ValueError, Exception):
        return -1  # finding 4: Exception hides in a tuple
