"""R002 known-bad: unlocked cache writes and mutation of cached handouts."""

import threading

_cache_lock = threading.Lock()
_cache = {}
_engine = None


def put(key, value):
    _cache[key] = value


def reset():
    global _engine
    _engine = object()


def poke():
    data = build_trace("cg", 1)  # noqa: F821 - fixture, never executed
    data[0] = 0.0
    return data


def rearm():
    arr = make_matrix(100, seed=7)  # noqa: F821 - fixture, never executed
    arr.setflags(write=True)
    return arr
