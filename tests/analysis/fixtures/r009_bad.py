"""Known-bad fixture for R009: lock-order inversions (4 findings).

Two inverted pairs: journal/cache taken in both orders directly, and
stats/cache inverted through an interprocedural path (``flush`` calls
``_fold`` while holding the stats lock).
"""

import threading

_journal_lock = threading.Lock()
_cache_lock = threading.Lock()
_stats_lock = threading.RLock()

_entries = []


def record(entry):
    with _journal_lock:
        with _cache_lock:
            _entries.append(entry)


def evict(n):
    with _cache_lock:
        with _journal_lock:
            del _entries[:n]


def _fold():
    with _cache_lock:
        return len(_entries)


def flush():
    with _stats_lock:
        return _fold()


def tally():
    with _cache_lock:
        with _stats_lock:
            return len(_entries)
