"""Known-good fixture for R013: every bench test records its numbers."""


def test_direct_record(benchmark, time_best_of, bench_artifact):
    # The common shape: measure, assert, record.
    get_s, _ = time_best_of("store.get", lambda: sum(range(64)), reps=3)
    bench_artifact("store.get_warm", get_s=get_s, gets_per_s=64 / get_s)


def test_record_via_helper(benchmark, bench_artifact):
    # Handing the recorder to a helper counts as recording.
    _record_speedup(bench_artifact, label="engine.warm", speedup=11.5)


def test_shape_smoke_opts_out():  # repro: noqa[R013] -- nothing measured, shape only
    # A plain test in a bench module is still a bench test and must
    # record -- unless it opts out with the audit-trail pragma.
    assert 1 + 1 == 2


def _record_speedup(record, label, speedup):
    record(label, speedup=speedup)


def helper_without_fixtures(values):
    # Non-test helpers are not gated.
    return sorted(values)
