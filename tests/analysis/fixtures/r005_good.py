"""R005 known-good: every grid cost term has a scalar twin, and the
trace-engine registry holds the complete exact/vectorized pair."""

import numpy as np


class PerformanceModel:
    @staticmethod
    def _cost(sig, machine, n):
        return float(PerformanceModel._cost_grid(sig, machine, np.asarray([n]))[0])

    @staticmethod
    def _cost_grid(sig, machine, ns):
        return ns * 2.0


def run_trace_vectorized(hierarchy, addresses, streaming_mask=None):
    return addresses


def _exact_levels(hierarchy, addresses, streaming_mask):
    return addresses


def _vectorized_levels(hierarchy, addresses, streaming_mask):
    return run_trace_vectorized(hierarchy, addresses, streaming_mask)


TRACE_ENGINES = {
    "exact": _exact_levels,
    "vectorized": _vectorized_levels,
}
