"""R005 known-good: every grid cost term has a scalar twin."""

import numpy as np


class PerformanceModel:
    @staticmethod
    def _cost(sig, machine, n):
        return float(PerformanceModel._cost_grid(sig, machine, np.asarray([n]))[0])

    @staticmethod
    def _cost_grid(sig, machine, ns):
        return ns * 2.0
