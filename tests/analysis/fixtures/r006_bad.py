"""R006 known-bad: wall-clock reads and span construction outside repro.obs."""

import time
from time import monotonic as mono

from repro.obs.recorder import Span


def direct_perf_counter():
    return time.perf_counter()


def aliased_monotonic():
    return mono()


def process_time_read():
    return time.process_time()


def hand_built_span():
    return Span("rogue")
