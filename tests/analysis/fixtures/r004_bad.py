"""R004 known-bad: catalog literals that contradict physics or Table 5."""

GiB = 2**30

LOPSIDED = Topology(  # noqa: F821 - fixture, never executed
    total_cores=64, cores_per_cluster=6, numa_regions=1
)

OVERCLAIMED = MemorySubsystem(  # noqa: F821 - fixture, never executed
    ddr=ddr4(3200),  # noqa: F821
    controllers=4,
    channels=4,
    capacity_bytes=64 * GiB,
    sustained_bw_override_gbs=150.0,
)

WRONG_ANCHOR = Machine(  # noqa: F821 - fixture, never executed
    name="sg2042",
    clock_hz=2.5e9,
    topology=Topology(  # noqa: F821
        total_cores=64, cores_per_cluster=4, numa_regions=1
    ),
    memory=MemorySubsystem(  # noqa: F821
        ddr=ddr4(3200),  # noqa: F821
        controllers=4,
        channels=8,
        capacity_bytes=64 * GiB,
    ),
)
