"""Known-good fixture for R011: the fork re-init pattern.

Workers rebind every module-level lock their call graph touches to a
fresh Lock before doing anything else (the ``_reinit_forked_locks``
pattern from ``repro.core.sweep``); parent-side helpers may use the
module locks freely because they never run in a forked child.
"""

import threading

_trace_lock = threading.Lock()
_merge_lock = threading.Lock()


def _reinit_forked_locks():
    global _trace_lock, _merge_lock
    _trace_lock = threading.Lock()
    _merge_lock = threading.Lock()


def _fill(key):
    with _trace_lock:
        return key


def merge_shard(items):
    _reinit_forked_locks()
    out = []
    for item in items:
        with _merge_lock:
            out.append(item)
        _fill(item)
    return out


def parent_collect(keys):
    with _merge_lock:
        return list(keys)
