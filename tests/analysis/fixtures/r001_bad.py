"""R001 known-bad: global RNG state, entropy seeding and wall-clock reads."""

import random
import time

import numpy as np


def global_numpy_stream():
    return np.random.rand(3)


def entropy_seeded():
    return np.random.default_rng()


def global_stdlib_stream():
    return random.random()


def wall_clock():
    return time.time()
