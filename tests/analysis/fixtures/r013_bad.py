"""Known-bad fixture for R013: measured numbers that never reach the artifact."""


def test_measures_but_never_records(benchmark, time_best_of):  # finding 1: no bench_artifact param
    elapsed_s, _ = time_best_of("grid.cold", lambda: sum(range(256)), reps=3)
    assert elapsed_s > 0


def test_takes_fixture_but_ignores_it(benchmark, bench_artifact):  # finding 2: fixture requested, never called
    total = sum(range(128))
    assert total > 0


def test_only_prints_the_number(benchmark, time_best_of):  # finding 3: print is not a trajectory record
    elapsed_s, _ = time_best_of("sweep.batch", lambda: sum(range(512)), reps=3)
    print(f"batch sweep: {elapsed_s:.6f}s")


class TestGrouped:
    def test_class_level_also_gated(self, benchmark, bench_artifact):  # finding 4: unused recorder inside a class
        assert sum(range(32)) == 496
