"""R008 known-good: workers return data; the parent merges it in-process."""

import threading

_results = {}
_merge_lock = threading.Lock()


def merge_shard(payload):
    out = {}
    for key, value in payload:
        out[key] = value
    return out


def _scan_worker(items):
    counts = []
    for item in items:
        counts.append(item)
    return counts, len(items)


def fan_out(pool, chunks):
    return [pool.submit(_scan_worker, chunk) for chunk in chunks]


def absorb(shards):
    # Parent-side merge: in-process, under a live lock (R002's concern,
    # satisfied here; R008 does not apply to non-worker functions).
    with _merge_lock:
        for shard in shards:
            _results.update(shard)
