"""Known-bad fixture for R010: blocking under a held lock (4 findings).

Three direct blocking operations under the state lock (event wait,
sleep, future result) and one reached through a call (``_drain``
sleeps).
"""

import threading
import time

_state_lock = threading.Lock()
_done = threading.Event()


def wait_for_peer():
    with _state_lock:
        _done.wait()


def backoff():
    with _state_lock:
        time.sleep(0.05)


def harvest(job):
    with _state_lock:
        return job.result()


def _drain(items):
    time.sleep(0.01)
    return list(items)


def flush(items):
    with _state_lock:
        return _drain(items)
