"""R001 known-good: every random draw comes from a seeded Generator."""

import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(4)


def spawn_child_stream(seed):
    ss = np.random.SeedSequence(seed)
    return np.random.default_rng(ss)


def seeded_stdlib(seed):
    import random

    return random.Random(seed).random()
