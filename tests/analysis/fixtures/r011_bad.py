"""Known-bad fixture for R011: fork-unsafe workers (4 findings).

``merge_shard`` acquires one module-level lock directly and reaches a
second through ``_fill`` without re-initialising either;
``requeue_worker`` touches the parent's module-level executor from the
forked child; ``collect_worker`` reaches the trace lock through a call.
"""

import threading
from concurrent.futures import ProcessPoolExecutor

_trace_lock = threading.Lock()
_merge_lock = threading.Lock()
_POOL = ProcessPoolExecutor(max_workers=2)


def _fill(key):
    with _trace_lock:
        return key


def merge_shard(items):
    out = []
    for item in items:
        with _merge_lock:
            out.append(item)
        _fill(item)
    return out


def requeue_worker(chunk):
    return _POOL.submit(len, chunk)


def collect_worker(keys):
    return [_fill(k) for k in keys]
