"""Known-good fixture for R012: store paths only via the store API."""

import os

from repro.store import ResultStore


def warm_lookup(root, key):
    # Reads and writes go through the sanctioned API, not raw file I/O.
    store = ResultStore(root)
    cached = store.get(key)
    if cached is None and store.try_lease(key):
        try:
            store.put(key, {"value": 1.0})
        finally:
            store.release_lease(key)
    return store.stats()


def unrelated_io(report_dir, payload):
    # File I/O on non-store paths is none of R012's business.
    path = report_dir / "report.json"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
    os.replace(path, report_dir / "report-final.json")
    (report_dir / "summary.txt").write_text(payload, encoding="utf-8")
