"""R003 known-bad: incompatible suffixes mixed, units dropped from names."""


def additive_mix(capacity_bytes, clock_ghz):
    return capacity_bytes + clock_ghz


def comparison_mix(idle_latency_ns, barrier_cost_s):
    return idle_latency_ns > barrier_cost_s


def unit_dropping_alias(sustained_bw_gbs):
    bw = sustained_bw_gbs
    return bw


def keyword_slip(configure, window_s):
    return configure(latency_ns=window_s)
