"""R006 known-good: all timing and spans flow through repro.obs."""

from repro import obs


def measured_interval(payload):
    with obs.host_timer("fixture.work") as timer:
        payload()
    return timer.elapsed_s


def counted_section(payload):
    with obs.span("fixture.section"):
        obs.incr("fixture.calls")
        return payload()


def submitted_group(worker):
    handle = obs.open_span("fixture.group")
    with obs.activate(handle):
        return worker()
