"""Framework core: suppression, parse errors, file discovery, reports."""

import pytest

from repro.analysis.core import (
    PARSE_ERROR_CODE,
    AnalysisReport,
    Finding,
    Rule,
    SourceModule,
    iter_python_files,
    run_analysis,
)
from repro.analysis.registry import all_rules, get_rule, register, rules_for


class TestFinding:
    def test_location(self):
        f = Finding("R001", "src/x.py", 10, 4, "msg")
        assert f.location() == "src/x.py:10:4"

    def test_to_dict_keys(self):
        f = Finding("R001", "src/x.py", 10, 4, "msg")
        assert f.to_dict() == {
            "rule": "R001", "path": "src/x.py", "line": 10, "col": 4,
            "message": "msg",
        }

    def test_hashable_for_dedup(self):
        a = Finding("R001", "x.py", 1, 0, "m")
        b = Finding("R001", "x.py", 1, 0, "m")
        assert len({a, b}) == 1


class TestSuppression:
    def _module(self, text):
        return SourceModule("fixture.py", text)

    def test_bare_noqa_suppresses_every_rule(self):
        m = self._module("x = 1  # repro: noqa\n")
        assert m.is_suppressed("R001", 1)
        assert m.is_suppressed("R004", 1)

    def test_coded_noqa_suppresses_only_listed_rules(self):
        m = self._module("x = 1  # repro: noqa[R001, R003]\n")
        assert m.is_suppressed("R001", 1)
        assert m.is_suppressed("R003", 1)
        assert not m.is_suppressed("R002", 1)

    def test_case_insensitive(self):
        m = self._module("x = 1  # REPRO: NOQA[r001]\n")
        assert m.is_suppressed("R001", 1)

    def test_reason_text_allowed(self):
        m = self._module("x = 1  # repro: noqa[R001] -- host measurement\n")
        assert m.is_suppressed("R001", 1)

    def test_other_lines_unaffected(self):
        m = self._module("x = 1  # repro: noqa[R001]\ny = 2\n")
        assert not m.is_suppressed("R001", 2)

    def test_plain_flake8_noqa_is_not_ours(self):
        m = self._module("x = 1  # noqa: F821\n")
        assert not m.is_suppressed("R001", 1)


class TestNoqaSpan:
    """A pragma anywhere on a multi-line statement covers the whole span."""

    def _module(self, text):
        return SourceModule("fixture.py", text)

    def test_pragma_on_last_line_covers_first(self):
        m = self._module("x = compute(\n    1,\n    2,\n)  # repro: noqa[R001]\n")
        for line in (1, 2, 3, 4):
            assert m.is_suppressed("R001", line)
        assert not m.is_suppressed("R002", 1)

    def test_pragma_on_first_line_covers_last(self):
        m = self._module("x = compute(  # repro: noqa\n    1,\n)\n")
        assert m.is_suppressed("R001", 3)
        assert m.is_suppressed("R004", 3)

    def test_codes_union_across_the_span(self):
        m = self._module(
            "x = f(  # repro: noqa[R001]\n    g(),  # repro: noqa[R003]\n)\n"
        )
        assert m.is_suppressed("R001", 2)
        assert m.is_suppressed("R003", 1)
        assert not m.is_suppressed("R002", 1)

    def test_bare_pragma_dominates_coded_one(self):
        m = self._module("x = f(  # repro: noqa\n    g(),  # repro: noqa[R003]\n)\n")
        assert m.is_suppressed("R002", 2)

    def test_compound_statement_header_does_not_leak_into_body(self):
        m = self._module("if flag:  # repro: noqa[R001]\n    x = 1\n")
        assert m.is_suppressed("R001", 1)
        assert not m.is_suppressed("R001", 2)

    def test_unparseable_source_keeps_line_local_pragmas(self):
        m = self._module("x = 1  # repro: noqa[R001]\ndef f(:\n")
        assert m.tree is None
        assert m.is_suppressed("R001", 1)
        assert not m.is_suppressed("R001", 2)


class TestParseErrors:
    def test_syntax_error_yields_e001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_analysis([bad], all_rules(), root=tmp_path)
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == [PARSE_ERROR_CODE]

    def test_source_module_records_error(self):
        m = SourceModule("broken.py", "def f(:\n")
        assert m.tree is None
        assert m.parse_error is not None


class TestFileDiscovery:
    def test_skips_cache_dirs_and_dedups(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "pkg" / "a.py"])
        assert [p.name for p in files] == ["a.py"]

    def test_non_python_file_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello\n")
        assert iter_python_files([tmp_path / "notes.txt"]) == []

    def test_same_path_given_twice_yields_one_entry(self, tmp_path):
        f = tmp_path / "once.py"
        f.write_text("x = 1\n")
        assert [p.name for p in iter_python_files([f, f, tmp_path])] == ["once.py"]

    def test_skips_vcs_and_venv_dirs(self, tmp_path):
        for skipped in (".git", ".venv", "build"):
            (tmp_path / skipped).mkdir()
            (tmp_path / skipped / "hidden.py").write_text("x = 1\n")
        (tmp_path / "kept.py").write_text("x = 1\n")
        assert [p.name for p in iter_python_files([tmp_path])] == ["kept.py"]


class TestReport:
    def test_exit_codes(self):
        assert AnalysisReport().exit_code == 0
        assert AnalysisReport(findings=[Finding("R001", "x", 1, 0, "m")]).exit_code == 1

    def test_by_rule_counts_sorted(self):
        report = AnalysisReport(findings=[
            Finding("R003", "x", 1, 0, "m"),
            Finding("R001", "x", 2, 0, "m"),
            Finding("R003", "x", 3, 0, "m"),
        ])
        assert report.by_rule() == {"R001": 1, "R003": 2}

    def test_to_dict_schema(self):
        d = AnalysisReport(files_checked=3, rules_run=("R001",)).to_dict()
        assert d["version"] == 1
        assert set(d) == {
            "version", "files_checked", "rules_run", "findings",
            "suppressed", "by_rule", "exit_code",
        }

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        report = run_analysis([tmp_path], rules_for(["R001"]), root=tmp_path)
        assert [f.path for f in report.findings] == ["a.py", "b.py"]

    def test_suppressed_counted_not_reported(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import time\nt = time.time()  # repro: noqa[R001]\n"
        )
        report = run_analysis([tmp_path], rules_for(["R001"]), root=tmp_path)
        assert report.exit_code == 0
        assert report.suppressed == 1


class TestRegistry:
    def test_all_rules_in_code_order(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert {"R001", "R002", "R003", "R004", "R005"} <= set(codes)

    def test_get_rule_case_insensitive(self):
        assert get_rule("r001").code == "R001"

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("R999")

    def test_rules_for_none_is_all(self):
        assert [r.code for r in rules_for(None)] == [r.code for r in all_rules()]

    def test_rules_for_rejects_unknown_selection(self):
        with pytest.raises(KeyError, match="unknown rule 'R999'"):
            rules_for(["R001", "R999"])

    def test_duplicate_code_rejected(self):
        all_rules()  # make sure the built-ins are registered first

        class Shadow(Rule):
            code = "R001"
            name = "shadow"

        with pytest.raises(ValueError, match="duplicate rule code"):
            register(Shadow)

    def test_missing_code_rejected(self):
        class Nameless(Rule):
            name = "nameless"

        with pytest.raises(ValueError, match="has no rule code"):
            register(Nameless)

    def test_reregistering_the_same_class_is_idempotent(self):
        cls = type(get_rule("R001"))
        assert register(cls) is cls
