"""Fixture-driven rule tests: each rule passes its known-good file and
flags its known-bad file, and every finding can be silenced in place."""

from pathlib import Path

import pytest

from repro.analysis.core import run_analysis
from repro.analysis.registry import rules_for

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule code, expected finding count in the known-bad fixture)
CASES = [
    ("R001", 4),
    ("R002", 4),
    ("R003", 4),
    ("R004", 4),
    ("R005", 4),
    ("R006", 4),
    ("R007", 4),
    ("R008", 4),
    ("R009", 4),
    ("R010", 4),
    ("R011", 4),
    ("R012", 4),
    ("R013", 4),
]


def _run(code, path):
    return run_analysis([path], rules_for([code]), root=FIXTURES)


class TestKnownGoodKnownBad:
    @pytest.mark.parametrize("code,_n", CASES)
    def test_good_fixture_is_clean(self, code, _n):
        report = _run(code, FIXTURES / f"{code.lower()}_good.py")
        assert report.exit_code == 0
        assert report.findings == []

    @pytest.mark.parametrize("code,n", CASES)
    def test_bad_fixture_flagged(self, code, n):
        report = _run(code, FIXTURES / f"{code.lower()}_bad.py")
        assert report.exit_code == 1
        assert len(report.findings) == n
        assert all(f.rule == code for f in report.findings)

    @pytest.mark.parametrize("code,n", CASES)
    def test_every_finding_suppressible_in_place(self, code, n, tmp_path):
        bad = FIXTURES / f"{code.lower()}_bad.py"
        report = _run(code, bad)
        lines = bad.read_text().splitlines()
        for f in report.findings:
            lines[f.line - 1] += f"  # repro: noqa[{code}]"
        patched = tmp_path / bad.name
        patched.write_text("\n".join(lines) + "\n")
        again = run_analysis([patched], rules_for([code]), root=tmp_path)
        assert again.exit_code == 0
        assert again.suppressed == n


class TestDeterminismSpecifics:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        assert _count(f, "R001") == 1

    def test_seeded_default_rng_clean(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("import numpy as np\nrng = np.random.default_rng(42)\n")
        assert _count(f, "R001") == 0

    def test_import_alias_resolved(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("from time import perf_counter as pc\nt = pc()\n")
        assert _count(f, "R001") == 1


class TestConcurrencySpecifics:
    def test_lock_guard_recognised_by_name(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_trace_lock = threading.Lock()\n"
            "_memo = {}\n"
            "def fill(k, v):\n"
            "    with _trace_lock:\n"
            "        _memo[k] = v\n"
        )
        assert _count(f, "R002") == 0

    def test_non_lock_context_manager_is_no_guard(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "_memo = {}\n"
            "def fill(k, v, path):\n"
            "    with open(path) as fh:\n"
            "        _memo[k] = fh.read()\n"
        )
        assert _count(f, "R002") == 1

    def test_local_shadow_not_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "_memo = {}\n"
            "def fill(k, v):\n"
            "    _memo = {}\n"
            "    _memo[k] = v\n"
            "    return _memo\n"
        )
        assert _count(f, "R002") == 0


class TestUnitsSpecifics:
    def test_conversion_via_multiply_is_legal(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("def f(idle_latency_ns):\n    lat_s = idle_latency_ns * 1e-9\n")
        assert _count(f, "R003") == 0

    def test_bare_ns_is_not_nanoseconds(self, tmp_path):
        # `ns` is this codebase's thread-count array name; it must not
        # collide with the nanosecond suffix.
        f = tmp_path / "m.py"
        f.write_text("def f(ns, total_s):\n    return total_s + 0 if ns is None else total_s\n")
        assert _count(f, "R003") == 0

    def test_return_against_function_suffix(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("def stream_time_s(window_ns):\n    return window_ns\n")
        assert _count(f, "R003") == 1


class TestCatalogSpecifics:
    def test_bandwidth_overclaim_message_names_jedec(self):
        report = _run("R004", FIXTURES / "r004_bad.py")
        assert any("JEDEC peak" in f.message for f in report.findings)

    def test_table5_clock_anchor_enforced(self):
        report = _run("R004", FIXTURES / "r004_bad.py")
        assert any("paper measured 2 GHz" in f.message for f in report.findings)

    def test_unevaluable_arguments_skipped(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("def mk(size):\n    return CacheLevel(1, size, 'core', 4)\n")
        assert _count(f, "R004") == 0


class TestParityProjectChecks:
    def _mini_repo(self, tmp_path, *, builders, traces, kernels=("ft",)):
        npb = tmp_path / "npb"
        npb.mkdir()
        for k in kernels:
            stem = f"{k}_" if k in {"is"} else k
            (npb / f"{stem}.py").write_text(f"def run_{k}(n):\n    return n\n")
        builder_defs = "".join(
            f"def _build_{k}(npb_class):\n"
            "    return KernelSignature(name='x', display='X', npb_class=npb_class,\n"
            "        total_mops=1.0, work_per_op=1.0, dram_bytes_per_op=1.0,\n"
            "        working_set_bytes=1.0)\n"
            for k in builders
        )
        entries = ", ".join(f"'{k}': _build_{k}" for k in builders)
        (npb / "signatures.py").write_text(
            "from x import KernelSignature\n"
            f"{builder_defs}"
            f"SIGNATURE_BUILDERS = {{{entries}}}\n"
        )
        trace_entries = ", ".join(f"'{k}': None" for k in traces)
        (tmp_path / "trace.py").write_text(f"KERNEL_TRACES = {{{trace_entries}}}\n")
        return run_analysis([tmp_path], rules_for(["R005"]), root=tmp_path)

    def test_complete_registration_is_clean(self, tmp_path):
        report = self._mini_repo(tmp_path, builders=["ft"], traces=["ft"])
        assert report.findings == []

    def test_kernel_missing_from_builders(self, tmp_path):
        report = self._mini_repo(tmp_path, builders=[], traces=["ft"])
        assert any("SIGNATURE_BUILDERS" in f.message for f in report.findings)

    def test_orphan_builder_entry(self, tmp_path):
        report = self._mini_repo(tmp_path, builders=["ft", "zz"], traces=["ft"])
        assert any("registers `zz`" in f.message for f in report.findings)

    def test_kernel_missing_from_traces(self, tmp_path):
        report = self._mini_repo(tmp_path, builders=["ft"], traces=[])
        assert any("KERNEL_TRACES" in f.message for f in report.findings)

    def test_incomplete_signature_fields(self, tmp_path):
        npb = tmp_path / "npb"
        npb.mkdir()
        (npb / "ft.py").write_text("def run_ft(n):\n    return n\n")
        (npb / "signatures.py").write_text(
            "from x import KernelSignature\n"
            "def _build_ft(npb_class):\n"
            "    return KernelSignature(name='ft', npb_class=npb_class)\n"
            "SIGNATURE_BUILDERS = {'ft': _build_ft}\n"
        )
        report = run_analysis([tmp_path], rules_for(["R005"]), root=tmp_path)
        assert any("incomplete" in f.message for f in report.findings)


class TestEngineRegistrySpecifics:
    def test_missing_vectorized_entry_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "def _exact_levels(h, a, s):\n    return a\n"
            "TRACE_ENGINES = {'exact': _exact_levels}\n"
        )
        report = _run_path(f, "R005")
        assert any("omits the 'vectorized' engine" in x.message
                   for x in report.findings)

    def test_value_must_be_module_function(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "def _exact_levels(h, a, s):\n    return a\n"
            "def _vectorized_levels(h, a, s):\n    return a\n"
            "TRACE_ENGINES = {\n"
            "    'exact': _exact_levels,\n"
            "    'vectorized': lambda h, a, s: a,\n"
            "}\n"
        )
        report = _run_path(f, "R005")
        assert any("module-level engine function" in x.message
                   for x in report.findings)

    def test_unregistered_vectorized_entry_point_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("def run_trace_vectorized(h, a, s=None):\n    return a\n")
        report = _run_path(f, "R005")
        assert any("no TRACE_ENGINES registry" in x.message
                   for x in report.findings)

    def test_registry_in_sibling_module_satisfies_pairing(self, tmp_path):
        (tmp_path / "vec.py").write_text(
            "def run_trace_vectorized(h, a, s=None):\n    return a\n"
        )
        (tmp_path / "hier.py").write_text(
            "def _exact_levels(h, a, s):\n    return a\n"
            "def _vectorized_levels(h, a, s):\n    return a\n"
            "TRACE_ENGINES = {\n"
            "    'exact': _exact_levels,\n"
            "    'vectorized': _vectorized_levels,\n"
            "}\n"
        )
        report = run_analysis([tmp_path], rules_for(["R005"]), root=tmp_path)
        assert report.findings == []


class TestTelemetrySpecifics:
    def test_obs_package_is_exempt(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "obs"
        pkg.mkdir(parents=True)
        f = pkg / "recorder.py"
        f.write_text("import time\nt = time.perf_counter()\n")
        report = run_analysis([f], rules_for(["R006"]), root=tmp_path)
        assert report.findings == []

    def test_same_code_outside_obs_is_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("import time\nt = time.perf_counter()\n")
        assert _count(f, "R006") == 1

    def test_timing_message_points_to_host_timer(self):
        report = _run("R006", FIXTURES / "r006_bad.py")
        assert any("host_timer" in f.message for f in report.findings)

    def test_span_construction_message(self):
        report = _run("R006", FIXTURES / "r006_bad.py")
        assert any("open_span" in f.message for f in report.findings)

    def test_obs_helpers_not_flagged(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "from repro import obs\n"
            "def f(w):\n"
            "    with obs.host_timer('x') as t:\n"
            "        w()\n"
            "    return t.elapsed_s\n"
        )
        assert _count(f, "R006") == 0


class TestLockOrderSpecifics:
    def test_consistent_order_project_wide_is_clean(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def one():\n"
            "    with _a:\n"
            "        with _b:\n"
            "            pass\n"
            "def two():\n"
            "    with _a:\n"
            "        with _b:\n"
            "            pass\n"
        )
        assert _count(f, "R009") == 0

    def test_inversion_across_files(self, tmp_path):
        (tmp_path / "locks.py").write_text(
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def forward():\n"
            "    with _a:\n"
            "        with _b:\n"
            "            pass\n"
        )
        (tmp_path / "other.py").write_text(
            "from locks import _a, _b, forward\n"
            "def backward():\n"
            "    with _b:\n"
            "        with _a:\n"
            "            pass\n"
        )
        report = run_analysis([tmp_path], rules_for(["R009"]), root=tmp_path)
        assert len(report.findings) == 2
        assert {f.path for f in report.findings} == {"locks.py", "other.py"}

    def test_self_deadlock_on_plain_lock(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_a = threading.Lock()\n"
            "def nest():\n"
            "    with _a:\n"
            "        with _a:\n"
            "            pass\n"
        )
        report = _run_path(f, "R009")
        assert len(report.findings) == 1
        assert "self-deadlock" in report.findings[0].message

    def test_rlock_reentry_is_legal(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_a = threading.RLock()\n"
            "def nest():\n"
            "    with _a:\n"
            "        with _a:\n"
            "            pass\n"
        )
        assert _count(f, "R009") == 0

    def test_acquire_release_pairs_tracked(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def one():\n"
            "    _a.acquire()\n"
            "    with _b:\n"
            "        pass\n"
            "    _a.release()\n"
            "def two():\n"
            "    with _b:\n"
            "        with _a:\n"
            "            pass\n"
        )
        assert _count(f, "R009") == 2

    def test_release_ends_held_region(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_a = threading.Lock()\n"
            "_b = threading.Lock()\n"
            "def one():\n"
            "    _a.acquire()\n"
            "    _a.release()\n"
            "    with _b:\n"
            "        pass\n"
            "def two():\n"
            "    with _b:\n"
            "        with _a:\n"
            "            pass\n"
        )
        assert _count(f, "R009") == 0


class TestBlockingSpecifics:
    def test_wait_outside_lock_is_clean(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_l = threading.Lock()\n"
            "_e = threading.Event()\n"
            "def f():\n"
            "    with _l:\n"
            "        pass\n"
            "    _e.wait()\n"
        )
        assert _count(f, "R010") == 0

    def test_file_io_under_lock_hot_module_flagged(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        f = pkg / "hotpath.py"
        f.write_text(
            "import threading\n"
            "_l = threading.Lock()\n"
            "def f(path):\n"
            "    with _l:\n"
            "        return path.read_text()\n"
        )
        report = run_analysis([f], rules_for(["R010"]), root=tmp_path)
        assert len(report.findings) == 1
        assert ".read_text()" in report.findings[0].message

    def test_file_io_under_lock_cold_module_allowed(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "faults"
        pkg.mkdir(parents=True)
        f = pkg / "journal.py"
        f.write_text(
            "import threading\n"
            "_l = threading.Lock()\n"
            "def f(path):\n"
            "    with _l:\n"
            "        return path.read_text()\n"
        )
        report = run_analysis([f], rules_for(["R010"]), root=tmp_path)
        assert report.findings == []

    def test_sleep_alias_resolved(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "from time import sleep\n"
            "_l = threading.Lock()\n"
            "def f():\n"
            "    with _l:\n"
            "        sleep(1)\n"
        )
        assert _count(f, "R010") == 1


class TestForkSafetySpecifics:
    def test_submitted_function_is_a_worker(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_l = threading.Lock()\n"
            "def job(x):\n"
            "    with _l:\n"
            "        return x\n"
            "def run(items):\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    return [pool.submit(job, i) for i in items]\n"
        )
        report = _run_path(f, "R011")
        assert len(report.findings) == 1
        assert "`job`" in report.findings[0].message

    def test_thread_pool_submit_is_not_a_worker(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "_l = threading.Lock()\n"
            "def job(x):\n"
            "    with _l:\n"
            "        return x\n"
            "def run(items):\n"
            "    pool = ThreadPoolExecutor(2)\n"
            "    return [pool.submit(job, i) for i in items]\n"
        )
        assert _count(f, "R011") == 0

    def test_instance_locks_exempt(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def merge_shard(self, items):\n"
            "        with self._lock:\n"
            "            return list(items)\n"
        )
        assert _count(f, "R011") == 0

    def test_reinit_in_callee_covers_worker(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import threading\n"
            "_l = threading.Lock()\n"
            "def _reinit():\n"
            "    global _l\n"
            "    _l = threading.Lock()\n"
            "def merge_shard(items):\n"
            "    _reinit()\n"
            "    with _l:\n"
            "        return list(items)\n"
        )
        assert _count(f, "R011") == 0


def _count(path, code):
    return len(run_analysis([path], rules_for([code]), root=path.parent).findings)


def _run_path(path, code):
    return run_analysis([path], rules_for([code]), root=path.parent)
