"""Acceptance: the repository itself lints clean under every rule.

This is the gate `make lint` enforces; keeping it in the test suite means
a rule regression (or a new violation) fails CI even when only `make
test` runs.
"""

from pathlib import Path

from repro.analysis.core import run_analysis
from repro.analysis.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_benchmarks_lint_clean():
    report = run_analysis(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], all_rules(), root=REPO_ROOT
    )
    assert report.findings == [], "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in report.findings
    )
    assert report.exit_code == 0
    # The telemetry layer's sanctioned perf_counter sites (and the
    # registry's import-time write) stay suppressed, not silent; every
    # other host-measurement site now routes through repro.obs.host_timer.
    assert report.suppressed >= 3
    assert report.files_checked > 90
