"""Text/JSON renderers and the stable report schema."""

import json

from repro.analysis.core import AnalysisReport, Finding
from repro.analysis.reporting import render_json, render_text


def _report():
    return AnalysisReport(
        findings=[
            Finding("R001", "src/a.py", 3, 4, "wall-clock read"),
            Finding("R003", "src/b.py", 7, 0, "mixes units"),
        ],
        suppressed=2,
        files_checked=5,
        rules_run=("R001", "R003"),
    )


class TestText:
    def test_one_line_per_finding(self):
        out = render_text(_report())
        assert "src/a.py:3:4: R001 wall-clock read" in out
        assert "src/b.py:7:0: R003 mixes units" in out

    def test_summary_trailer(self):
        out = render_text(_report())
        assert "2 finding(s) in 5 file(s) [R001 x1, R003 x1]; 2 suppressed" in out

    def test_clean_trailer(self):
        out = render_text(AnalysisReport(files_checked=3, rules_run=("R001",)))
        assert out == "clean: 3 file(s), rules R001\n"


class TestJSON:
    def test_schema_version_1(self):
        doc = json.loads(render_json(_report()))
        assert doc["version"] == 1
        assert set(doc) == {
            "version", "files_checked", "rules_run", "findings",
            "suppressed", "by_rule", "exit_code",
        }

    def test_round_trip_values(self):
        doc = json.loads(render_json(_report()))
        assert doc["exit_code"] == 1
        assert doc["files_checked"] == 5
        assert doc["suppressed"] == 2
        assert doc["by_rule"] == {"R001": 1, "R003": 1}
        assert doc["findings"][0] == {
            "rule": "R001", "path": "src/a.py", "line": 3, "col": 4,
            "message": "wall-clock read",
        }

    def test_clean_report_exit_zero(self):
        doc = json.loads(render_json(AnalysisReport(files_checked=1)))
        assert doc["exit_code"] == 0
        assert doc["findings"] == []
