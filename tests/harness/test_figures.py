"""Every figure regenerator builds with the paper's qualitative shape."""

import pytest

from repro.harness.figures import FIGURE_BUILDERS, build_figure


class TestAllFigures:
    @pytest.mark.parametrize("number", sorted(FIGURE_BUILDERS))
    def test_builds_and_renders(self, number):
        fig = build_figure(number)
        assert fig.number == number
        assert fig.series
        text = fig.render()
        assert f"Figure {number}" in text
        assert fig.to_csv().startswith("series,x,y")

    def test_unknown_number(self):
        with pytest.raises(KeyError):
            build_figure(7)


class TestShapes:
    def test_fig1_two_series_with_gap(self):
        fig = build_figure(1)
        assert set(fig.series) == {"Sophon SG2042", "Sophon SG2044"}
        end42 = fig.series["Sophon SG2042"][-1][1]
        end44 = fig.series["Sophon SG2044"][-1][1]
        assert end44 > 2.7 * end42

    def test_scaling_figures_have_five_machines(self):
        fig = build_figure(4)
        assert len(fig.series) == 5

    def test_sweeps_respect_core_counts(self):
        fig = build_figure(2)
        assert fig.series["Intel Skylake"][-1][0] == 26
        assert fig.series["Marvell ThunderX2"][-1][0] == 32
        assert fig.series["Sophon SG2044"][-1][0] == 64

    def test_fig5_cg_whole_chip_crossover(self):
        fig = build_figure(5)
        sg = dict(fig.series["Sophon SG2044"])
        tx = dict(fig.series["Marvell ThunderX2"])
        assert tx[16] > sg[16]
        assert sg[64] > tx[32]
