"""Integrity of the transcribed paper numbers."""

from repro.harness import paper


def test_table1_full_coverage():
    assert set(paper.TABLE1) == set(paper.KERNELS) | set(paper.PSEUDO_APPS)


def test_table2_d1_ft_is_dnr():
    assert paper.TABLE2["ft"]["allwinner-d1"] is None


def test_table3_and_4_consistent_kernels():
    assert set(paper.TABLE3) == set(paper.TABLE4) == set(paper.KERNELS)


def test_table4_headline_ratios():
    assert paper.TABLE4["is"][0] / paper.TABLE4["is"][1] > 4.9
    assert paper.TABLE4["ep"][0] / paper.TABLE4["ep"][1] < 1.6


def test_table6_structure():
    for app in paper.PSEUDO_APPS:
        assert set(paper.TABLE6[app]) == {16, 26, 32, 64}
        assert paper.TABLE6[app][64]["thunderx2"] is None  # only 32 cores


def test_table7_cg_anomaly_recorded():
    old, vec, novec = paper.TABLE7["cg"]
    assert vec < old < novec
