"""The reproduction scorecard: pinned accuracy bounds.

These bounds are the repository's quality gate: if a model change pushes
any group's error past them, the reproduction has regressed.
"""

import pytest

from repro.harness.scorecard import scorecard


@pytest.fixture(scope="module")
def scores():
    return {s.name: s for s in scorecard(table1_accesses=30_000)}


class TestScorecard:
    def test_all_five_groups_present(self, scores):
        assert len(scores) == 5

    def test_anchored_points_exact(self, scores):
        s = scores["Tables 2+3 (anchored)"]
        assert s.mean_abs_rel_err < 0.001
        assert s.max_abs_rel_err < 0.001

    def test_table4_emergent_within_bounds(self, scores):
        s = scores["Table 4 (64-core, emergent)"]
        assert s.mean_abs_rel_err < 0.12
        assert s.max_abs_rel_err < 0.30

    def test_table6_ratios_within_bounds(self, scores):
        s = scores["Table 6 (ratios, emergent)"]
        assert s.mean_abs_rel_err < 0.20
        assert s.max_abs_rel_err < 0.60  # the known BT@64 deviation

    def test_compilers_within_bounds(self, scores):
        s = scores["Tables 7+8 (compilers)"]
        assert s.mean_abs_rel_err < 0.10

    def test_table1_profile_within_bounds(self, scores):
        s = scores["Table 1 stall profile"]
        assert s.mean_abs_rel_err < 0.06

    def test_summary_formatting(self, scores):
        text = scores["Table 4 (64-core, emergent)"].summary()
        assert "pts" in text and "%" in text
