"""Bulk CSV export."""

import pytest

from repro.harness.export import export_all


class TestExport:
    def test_selected_subset(self, tmp_path):
        written = export_all(tmp_path, tables=(4, 5), figures=(1,))
        names = sorted(p.name for p in written)
        assert names == ["INDEX.md", "figure1.csv", "table4.csv", "table5.csv"]

    def test_csv_contents_parse(self, tmp_path):
        export_all(tmp_path, tables=(4,), figures=())
        lines = (tmp_path / "table4.csv").read_text().strip().split("\n")
        assert lines[0].startswith("Benchmark,")
        assert len(lines) == 6  # header + 5 kernels

    def test_index_lists_artifacts(self, tmp_path):
        export_all(tmp_path, tables=(5,), figures=(1,))
        index = (tmp_path / "INDEX.md").read_text()
        assert "Table 5" in index
        assert "Figure 1" in index

    def test_idempotent_overwrite(self, tmp_path):
        a = export_all(tmp_path, tables=(5,), figures=())
        b = export_all(tmp_path, tables=(5,), figures=())
        assert (tmp_path / "table5.csv").exists()
        assert [p.name for p in a] == [p.name for p in b]

    def test_unknown_table_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            export_all(tmp_path, tables=(9,), figures=())
