"""Every table regenerator builds and carries the right structure."""

import pytest

from repro.harness.tables import TABLE_BUILDERS, build_table


class TestAllTables:
    @pytest.mark.parametrize("number", sorted(TABLE_BUILDERS))
    def test_builds_and_renders(self, number):
        if number == 1:
            result = TABLE_BUILDERS[1](n_accesses=20_000)
        else:
            result = build_table(number)
        assert result.number == number
        assert result.rows
        text = result.render()
        assert f"Table {number}" in text
        csv = result.to_csv()
        assert csv.count("\n") == len(result.rows) + 1

    def test_unknown_number(self):
        with pytest.raises(KeyError):
            build_table(9)


class TestSpecificShapes:
    def test_table2_has_dnr_for_d1_ft(self):
        t = build_table(2)
        ft_row = next(r for r in t.rows if r[0] == "FT")
        assert None in ft_row  # the AllWinner D1 cell

    def test_table3_five_kernels(self):
        t = build_table(3)
        assert [r[0] for r in t.rows] == ["IS", "MG", "EP", "CG", "FT"]

    def test_table4_carries_paper_ratio_column(self):
        t = build_table(4)
        is_row = next(r for r in t.rows if r[0] == "IS")
        assert is_row[-1] == pytest.approx(4.91, abs=0.01)

    def test_table5_lists_the_five_hpc_cpus(self):
        t = build_table(5)
        assert len(t.rows) == 5
        labels = [r[0] for r in t.rows]
        assert "Sophon SG2044" in labels

    def test_table6_rows_per_app_and_core_count(self):
        t = build_table(6)
        assert len(t.rows) == 3 * 4  # {BT,LU,SP} x {16,26,32,64}

    def test_table6_blank_beyond_core_counts(self):
        t = build_table(6)
        row64 = next(r for r in t.rows if r[0] == "BT" and r[1] == 64)
        # Skylake (26 cores) and TX2 (32) cannot run 64 threads.
        assert row64[6] is None or row64[8] is None

    def test_table7_cg_vec_collapse_visible(self):
        t = build_table(7)
        cg = next(r for r in t.rows if r[0] == "CG")
        gcc15_vec, gcc15_novec = cg[3], cg[5]
        assert gcc15_vec < 0.6 * gcc15_novec
