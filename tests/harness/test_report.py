"""Table/CSV rendering."""

import pytest

from repro.harness.report import format_value, render_csv, render_table


class TestFormatValue:
    def test_dnr_for_none(self):
        assert format_value(None) == "DNR"

    def test_float_trimming(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(32457.83) == "32,458"

    def test_bool(self):
        assert format_value(True) == "yes"


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        out = render_table("T", ["a", "b"], [[1, 2.5], [3, None]])
        assert "== T ==" in out
        assert "a" in out and "b" in out
        assert "DNR" in out

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [[1, 2]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table("T", [], [])


class TestRenderCsv:
    def test_round_trip_shape(self):
        csv = render_csv(["x", "y"], [[1, 2.0], [3, None]])
        lines = csv.strip().split("\n")
        assert lines[0] == "x,y"
        assert lines[2] == "3,DNR"

    def test_commas_rejected(self):
        with pytest.raises(ValueError):
            render_csv(["a"], [["1,2"]])
