"""Hierarchy + trace generators + the Table 1 profile."""

import numpy as np
import pytest

from repro.cachesim.hierarchy import xeon8170_hierarchy
from repro.cachesim.stats import profile_kernel, table1_profile
from repro.cachesim.trace import KERNEL_TRACES, build_trace


class TestHierarchy:
    def test_levels_and_latencies(self):
        h = xeon8170_hierarchy()
        assert h.latencies == (4, 14, 60, 200)
        assert h.l1.size_bytes < h.l2.size_bytes < h.l3.size_bytes

    def test_repeat_access_promotes_to_l1(self):
        h = xeon8170_hierarchy()
        assert h.access(0) == 4  # cold: DRAM
        assert h.access(0) == 1  # now L1

    def test_run_trace_counts_everything(self):
        h = xeon8170_hierarchy()
        trace = np.arange(0, 64 * 1000, 64, dtype=np.int64)
        counts, levels = h.run_trace(trace)
        assert counts.total == len(trace)
        assert len(levels) == len(trace)

    def test_streaming_mask_length_checked(self):
        h = xeon8170_hierarchy()
        with pytest.raises(ValueError):
            h.run_trace(np.zeros(10, dtype=np.int64), np.zeros(5, dtype=bool))


class TestTraces:
    @pytest.mark.parametrize("kernel", sorted(KERNEL_TRACES))
    def test_trace_builds_with_mask(self, kernel):
        addrs, mask, spec = build_trace(kernel, n_accesses=5000)
        assert len(addrs) == len(mask) == 5000
        assert addrs.min() >= 0
        assert spec.kernel == kernel

    def test_deterministic(self):
        a1, m1, _ = build_trace("cg", 4000, seed=3)
        a2, m2, _ = build_trace("cg", 4000, seed=3)
        assert np.array_equal(a1, a2)
        assert np.array_equal(m1, m2)

    def test_ep_trace_fully_prefetchable_or_tiny(self):
        addrs, mask, _ = build_trace("ep", 5000)
        # EP's streams live in tens of KiB: tiny footprint.
        assert addrs.max() < 64 * 2**20

    def test_is_histogram_not_prefetchable(self):
        _, mask, _ = build_trace("is", 5000)
        assert 0.2 < (~mask).mean() < 0.95

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            build_trace("hpl")

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            build_trace("is", 10)


class TestTable1Profile:
    @pytest.fixture(scope="class")
    def profiles(self):
        return table1_profile(n_accesses=40_000)

    def test_all_eight_kernels(self, profiles):
        assert len(profiles) == 8

    def test_ep_has_no_memory_problem(self, profiles):
        c, d, b = profiles["ep"].as_percentages()
        assert d <= 2
        assert b == 0
        assert c < 20

    def test_mg_is_the_bandwidth_hog(self, profiles):
        bw = {k: p.ddr_bandwidth_bound for k, p in profiles.items()}
        assert max(bw, key=bw.get) == "mg"
        assert bw["mg"] > 0.5

    def test_is_stalls_on_cache_not_ddr(self, profiles):
        c, d, _ = profiles["is"].as_percentages()
        assert c > 20
        assert d < c / 3

    def test_sp_stalls_exceed_bt(self, profiles):
        sp = profiles["sp"]
        bt = profiles["bt"]
        assert sp.cache_stall + sp.ddr_stall > bt.cache_stall + bt.ddr_stall

    def test_pseudo_apps_not_bandwidth_bound(self, profiles):
        for app in ("bt", "lu", "sp"):
            assert profiles[app].ddr_bandwidth_bound < 0.15

    def test_fractions_in_range(self, profiles):
        for p in profiles.values():
            assert 0.0 <= p.cache_stall <= 1.0
            assert 0.0 <= p.ddr_stall <= 1.0
            assert 0.0 <= p.ddr_bandwidth_bound <= 1.0
            assert p.cache_stall + p.ddr_stall < 1.0

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            profile_kernel("is", warmup_fraction=1.0)


class TestTraceCache:
    def test_hit_returns_same_readonly_arrays(self):
        from repro.cachesim.trace import build_trace, clear_trace_cache

        clear_trace_cache()
        a1, m1, s1 = build_trace("cg", n_accesses=4000, seed=3)
        a2, m2, s2 = build_trace("cg", n_accesses=4000, seed=3)
        assert a1 is a2 and m1 is m2 and s1 is s2
        assert not a1.flags.writeable and not m1.flags.writeable

    def test_distinct_keys_distinct_traces(self):
        from repro.cachesim.trace import build_trace

        a1, _, _ = build_trace("cg", n_accesses=4000, seed=3)
        a3, _, _ = build_trace("cg", n_accesses=4000, seed=4)
        assert a1 is not a3

    def test_clear_evicts_and_rebuild_is_identical(self):
        import numpy as np

        from repro.cachesim.trace import build_trace, clear_trace_cache

        clear_trace_cache()
        a1, m1, _ = build_trace("ft", n_accesses=4000, seed=3)
        clear_trace_cache()
        a2, m2, _ = build_trace("ft", n_accesses=4000, seed=3)
        assert a1 is not a2
        assert np.array_equal(a1, a2) and np.array_equal(m1, m2)
