"""The Section 5.4 L2-doubling ablation for CG."""

import pytest

from repro.cachesim.sophon import cg_l2_ablation, sophon_hierarchy


class TestSophonHierarchy:
    def test_latencies_match_catalog_story(self):
        h = sophon_hierarchy(2)
        assert h.latencies == (3, 24, 70, 210)

    def test_l2_scales_with_parameter(self):
        assert sophon_hierarchy(2).l2.size_bytes == 2 * sophon_hierarchy(1).l2.size_bytes

    def test_bad_l2_rejected(self):
        with pytest.raises(ValueError):
            sophon_hierarchy(0)


class TestCGL2Ablation:
    @pytest.fixture(scope="class")
    def results(self):
        return cg_l2_ablation()

    def test_doubled_l2_holds_the_x_vector(self, results):
        # The paper's hypothesis: class C's 1.2 MB x-vector fits the
        # SG2044's 2 MB cluster L2 but not the SG2042's 1 MB.
        assert results[2].fast_fraction > 0.95
        assert results[1].fast_fraction < 0.85

    def test_sg2042_spills_a_material_share_to_l3(self, results):
        assert results[1].l3_or_dram_fraction > 0.15
        assert results[2].l3_or_dram_fraction < 0.05

    def test_fractions_sum_to_one(self, results):
        for stats in results.values():
            total = stats.l1_fraction + stats.l2_fraction + stats.l3_or_dram_fraction
            assert total == pytest.approx(1.0)

    def test_tiny_vector_rejected(self):
        with pytest.raises(ValueError):
            cg_l2_ablation(x_vector_bytes=100)
