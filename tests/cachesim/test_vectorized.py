"""Engine equivalence: the vectorized reuse-distance simulator against
the dict-based oracle, on random traces/geometries and the kernel set."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.hierarchy import (
    TRACE_ENGINES,
    CacheHierarchy,
    xeon8170_hierarchy,
)
from repro.cachesim.stats import profile_kernel
from repro.cachesim.trace import KERNEL_TRACES, build_trace
from repro.cachesim.vectorized import bypass_hits, lru_hits


def _dict_lru(lines, streaming, n_sets, ways):
    """Straight-line reference: per-set insertion-ordered dicts."""
    sets = [dict() for _ in range(n_sets)]
    out = np.zeros(len(lines), bool)
    for i, ln in enumerate(lines.tolist()):
        e = sets[ln % n_sets]
        if ln in e:
            del e[ln]
            e[ln] = None
            out[i] = True
        elif not streaming[i]:
            if len(e) >= ways:
                e.pop(next(iter(e)))
            e[ln] = None
    return out


def _run_both(hier_factory, addresses, mask):
    """Run both engines on fresh hierarchies; return everything observable."""
    out = []
    for engine in ("exact", "vectorized"):
        hier = hier_factory()
        rec = obs.install()
        try:
            result, levels = hier.run_trace(
                addresses, streaming_mask=mask, engine=engine
            )
        finally:
            obs.disable()
        stats = [
            (c.stats.hits, c.stats.misses)
            for c in (hier.l1, hier.l2, hier.l3)
        ]
        out.append((result, levels, stats, rec.counters_snapshot()))
    return out


class TestUnitEngines:
    @given(
        lines=st.lists(st.integers(0, 70), min_size=1, max_size=500),
        n_sets=st.sampled_from([1, 2, 3, 4, 8]),
        ways=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_hits_matches_dict(self, lines, n_sets, ways):
        arr = np.asarray(lines, dtype=np.int64)
        got = lru_hits(arr, n_sets, ways)
        want = _dict_lru(arr, np.zeros(len(arr), bool), n_sets, ways)
        assert np.array_equal(got, want)

    @given(
        lines=st.lists(st.integers(0, 70), min_size=1, max_size=400),
        n_sets=st.sampled_from([1, 2, 3, 4, 8]),
        ways=st.integers(1, 12),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_bypass_hits_matches_dict(self, lines, n_sets, ways, data):
        arr = np.asarray(lines, dtype=np.int64)
        streaming = np.asarray(
            data.draw(
                st.lists(
                    st.booleans(), min_size=len(arr), max_size=len(arr)
                )
            ),
            dtype=bool,
        )
        got = bypass_hits(arr, streaming, n_sets, ways)
        want = _dict_lru(arr, streaming, n_sets, ways)
        assert np.array_equal(got, want)


class TestHierarchyDifferential:
    @given(
        addrs=st.lists(st.integers(0, 1 << 13), min_size=1, max_size=400),
        l1_ways=st.sampled_from([1, 2, 4]),
        l1_sets=st.sampled_from([1, 2, 4]),
        line_bytes=st.sampled_from([32, 48, 64]),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_engines_identical_on_random_traces(
        self, addrs, l1_ways, l1_sets, line_bytes, data
    ):
        streaming = np.asarray(
            data.draw(
                st.lists(
                    st.booleans(), min_size=len(addrs), max_size=len(addrs)
                )
            ),
            dtype=bool,
        )

        def factory():
            l1 = SetAssociativeCache(
                l1_sets * l1_ways * line_bytes, line_bytes, l1_ways
            )
            l2 = SetAssociativeCache(4 * 8 * line_bytes, line_bytes, 8)
            l3 = SetAssociativeCache(3 * 6 * line_bytes, line_bytes, 6)
            return CacheHierarchy(l1, l2, l3)

        arr = np.asarray(addrs, dtype=np.int64)
        (r1, lv1, st1, c1), (r2, lv2, st2, c2) = _run_both(
            factory, arr, streaming
        )
        assert r1 == r2
        assert np.array_equal(lv1, lv2)
        assert st1 == st2
        assert c1 == c2

    def test_all_streaming_mask(self):
        arr = np.arange(0, 64 * 300, 64, dtype=np.int64) % (64 * 40)
        mask = np.ones(len(arr), bool)
        (r1, lv1, st1, c1), (r2, lv2, st2, c2) = _run_both(
            xeon8170_hierarchy, arr, mask
        )
        assert r1 == r2 and np.array_equal(lv1, lv2) and st1 == st2

    def test_empty_trace(self):
        result, levels = xeon8170_hierarchy().run_trace(
            np.zeros(0, np.int64), engine="vectorized"
        )
        assert result.total == 0 and len(levels) == 0


class TestKernelParity:
    @pytest.mark.parametrize("kernel", sorted(KERNEL_TRACES))
    @pytest.mark.parametrize("masked", [False, True])
    def test_kernel_trace_bit_identical(self, kernel, masked):
        trace, prefetchable, _spec = build_trace(kernel, 120_000, seed=42)
        mask = prefetchable if masked else None
        (r1, lv1, st1, c1), (r2, lv2, st2, c2) = _run_both(
            xeon8170_hierarchy, trace, mask
        )
        assert r1 == r2
        assert np.array_equal(lv1, lv2)
        assert st1 == st2
        assert c1 == c2


class TestEngineContract:
    def test_registry_holds_both_engines(self):
        assert set(TRACE_ENGINES) == {"exact", "vectorized"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown trace engine"):
            xeon8170_hierarchy().run_trace(
                np.zeros(4, np.int64), engine="nope"
            )

    def test_vectorized_requires_cold_hierarchy(self):
        hier = xeon8170_hierarchy()
        hier.run_trace(np.array([0, 64, 128], dtype=np.int64))
        with pytest.raises(ValueError, match="cold"):
            hier.run_trace(np.array([0], dtype=np.int64), engine="vectorized")

    def test_exact_continues_from_warm_state(self):
        hier = xeon8170_hierarchy()
        hier.run_trace(np.array([0], dtype=np.int64))
        result, _ = hier.run_trace(np.array([0], dtype=np.int64))
        assert result.l1_hits == 1  # still resident from the first run


class TestWindowedBandwidth:
    @staticmethod
    def _bound_windows_loop(levels, cycles, n_windows):
        """The pre-vectorization per-window reference loop."""
        edges = np.linspace(0, len(levels), n_windows + 1, dtype=int)
        bound = 0
        for w in range(n_windows):
            lo, hi = edges[w], edges[w + 1]
            if hi <= lo:
                continue
            dram_lines = int((levels[lo:hi] == 4).sum())
            seg_seconds = float(cycles[lo:hi].sum()) / 2.1e9
            if dram_lines * 64 * 26 / seg_seconds >= 0.5 * 90e9:
                bound += 1
        return bound

    @pytest.mark.parametrize("kernel", sorted(KERNEL_TRACES))
    def test_vectorized_windows_match_loop(self, kernel):
        n_windows = 50
        profile = profile_kernel(kernel, n_accesses=20_000, seed=7)
        # Rebuild the same per-access data the profiler used.
        trace, prefetchable, spec = build_trace(kernel, 20_000, seed=7)
        _res, levels_full = xeon8170_hierarchy().run_trace(
            trace, streaming_mask=prefetchable, engine="vectorized"
        )
        cut = int(len(levels_full) * 0.3)
        levels = levels_full[cut:]
        demand = ~prefetchable[cut:]
        lat = (4, 14, 60, 200)
        cycles = np.full(len(levels), spec.cycles_per_access)
        cycles += (levels == 1) * lat[0]
        for lvl, latency in ((2, lat[1]), (3, lat[2]), (4, lat[3])):
            cycles += ((levels == lvl) & demand) * latency * spec.stall_overlap
        want = self._bound_windows_loop(levels, cycles, n_windows)
        assert profile.ddr_bandwidth_bound == want / n_windows

    def test_empty_windows_never_bound(self):
        # More windows than post-warmup accesses: the linspace edges
        # repeat, and the repeated (empty) windows must not count.
        profile = profile_kernel("ep", n_accesses=1000, n_windows=5000)
        assert 0.0 <= profile.ddr_bandwidth_bound < 1.0


class TestProfileCache:
    def test_repeat_profile_reemits_identical_counters(self):
        from repro.cachesim.stats import clear_profile_cache

        clear_profile_cache()
        snaps = []
        for _ in range(2):
            rec = obs.install()
            try:
                profile = profile_kernel("cg", n_accesses=6000, seed=11)
            finally:
                obs.disable()
            snaps.append((profile, rec.counters_snapshot()))
        (p1, c1), (p2, c2) = snaps
        assert p1 == p2
        assert c1 == c2 and c1["cachesim.accesses"] == 6000
        clear_profile_cache()

    def test_clear_caches_covers_profiles(self):
        from repro.cachesim import stats
        from repro.core.sweep import clear_caches

        profile_kernel("mg", n_accesses=6000, seed=11)
        assert stats._profile_cache
        clear_caches()
        assert not stats._profile_cache
