"""Property test: the cache against an independent reference LRU model."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachesim.cache import SetAssociativeCache


class ReferenceLRU:
    """Straight-line reference: an OrderedDict per set, no cleverness."""

    def __init__(self, size, line, assoc):
        self.line = line
        self.assoc = assoc
        self.n_sets = size // (line * assoc)
        self.sets = [OrderedDict() for _ in range(self.n_sets)]

    def access(self, addr):
        ln = addr // self.line
        s = self.sets[ln % self.n_sets]
        tag = ln // self.n_sets
        if tag in s:
            s.move_to_end(tag)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[tag] = None
        return False


@given(
    addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=600),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_cache_matches_reference_lru(addrs, assoc):
    size = 64 * assoc * 8  # 8 sets
    cache = SetAssociativeCache(size, 64, assoc)
    ref = ReferenceLRU(size, 64, assoc)
    for a in addrs:
        assert cache.access(a) == ref.access(a)


@given(addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_bigger_cache_never_hits_less(addrs):
    small = SetAssociativeCache(1024, 64, 4)
    big = SetAssociativeCache(4096, 64, 4)
    for a in addrs:
        small.access(a)
        big.access(a)
    # LRU set-associative caches of the same geometry family are
    # inclusion-ordered: more ways/sets of the same shape never hurt.
    assert big.stats.hits >= small.stats.hits
