"""Set-associative LRU cache behaviour."""

import pytest

from repro.cachesim.cache import SetAssociativeCache


def cache(size=1024, line=64, assoc=2):
    return SetAssociativeCache(size, line, assoc)


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = cache()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_geometry(self):
        c = cache(1024, 64, 2)
        assert c.n_sets == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 64, 3)
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 64, 1)


class TestLRU:
    def test_lru_eviction_order(self):
        c = cache(2 * 64, 64, 2)  # one set, two ways
        c.access(0)        # A
        c.access(64)       # B  (0 and 64 map to set 0... with 1 set: yes)
        c.access(0)        # A touched: B is now LRU
        c.access(128)      # C evicts B
        assert c.access(0)       # A survives
        assert not c.access(64)  # B was evicted

    def test_associativity_prevents_conflict(self):
        direct = cache(2 * 64, 64, 1)  # 2 sets, direct mapped
        direct.access(0)
        direct.access(128)  # same set as 0: conflict evicts
        assert not direct.access(0)

        assoc = cache(2 * 64, 64, 2)  # 1 set, 2-way
        assoc.access(0)
        assoc.access(128)
        assert assoc.access(0)  # both fit

    def test_no_allocate_probes_without_displacing(self):
        c = cache(2 * 64, 64, 2)
        c.access(0)
        c.access(64)
        assert not c.access(128, allocate=False)  # miss, no insertion
        assert c.access(0)
        assert c.access(64)

    def test_working_set_within_capacity_all_hits(self):
        c = cache(64 * 64, 64, 8)
        lines = [i * 64 for i in range(32)]
        for a in lines:
            c.access(a)
        assert all(c.access(a) for a in lines)


class TestStats:
    def test_counters(self):
        c = cache()
        c.access(0)
        c.access(0)
        c.access(4096)
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_flush_keeps_stats_drops_lines(self):
        c = cache()
        c.access(0)
        c.flush()
        assert c.resident_lines() == 0
        assert not c.access(0)
        assert c.stats.misses == 2
