"""Cold vs warm differential suite across every request kind.

For each artifact kind (sweep, table, figure, whatif), a cold run
against an empty store and a warm run from a **fresh** engine sharing
only the store directory must render byte-identical text -- and the
warm run must execute zero configs.  Table 2 includes DNR cells, so the
suite also pins the DNR-through-store path explicitly.
"""

import pytest

from repro import obs
from repro.core.perfmodel import DNRError
from repro.core.sweep import ExperimentConfig, SweepEngine
from repro.service import execute_request, parse_request
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


PAYLOADS = [
    pytest.param(
        {
            "kind": "sweep",
            "machines": ["sg2044", "sg2042"],
            "kernels": ["ep", "is"],
            "threads": [1, 4],
        },
        id="sweep",
    ),
    # Table 2 renders DNR cells: the store must round-trip those too.
    pytest.param({"kind": "table", "number": 2}, id="table2"),
    pytest.param({"kind": "figure", "number": 5}, id="figure5"),
    pytest.param({"kind": "whatif", "kernel": "ep", "threads": [8]}, id="whatif-ep"),
]


@pytest.mark.parametrize("payload", PAYLOADS)
def test_warm_artifact_is_byte_identical(payload, tmp_path):
    request = parse_request(payload)
    store = ResultStore(tmp_path / "store")

    cold = execute_request(SweepEngine(jobs=1, store=store), request)

    recorder = obs.install()
    try:
        warm = execute_request(SweepEngine(jobs=2, store=store), request)
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert warm == cold
    assert counters.get("sweep.configs_executed", 0) == 0
    if payload["kind"] != "whatif":  # whatif is analytic: no engine work
        assert counters["store.hits"] >= 1


def test_dnr_served_from_store(tmp_path):
    """A config that does-not-run raises the same DNR warm as cold."""
    store = ResultStore(tmp_path / "store")
    # FT class B needs more DRAM than the Allwinner D1 carries.
    config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")

    with pytest.raises(DNRError) as cold:
        SweepEngine(jobs=1, store=store).run(config)

    recorder = obs.install()
    try:
        with pytest.raises(DNRError) as warm:
            SweepEngine(jobs=1, store=store).run(config)
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert str(warm.value) == str(cold.value)
    assert counters.get("sweep.configs_executed", 0) == 0
    assert counters["store.hits"] >= 1
