"""ResultStore units: round-trips, integrity, leases, LRU eviction.

The store's one promise is that a hit is indistinguishable from a
recompute: values round-trip bit-identically, anything that fails
verification degrades to a miss (never a wrong answer), and leases make
execution at-most-once without ever blocking a read.
"""

import json

import pytest

from repro import obs
from repro.core.perfmodel import DNRError
from repro.core.sweep import SweepEngine, expand_grid
from repro.store import STORE_VERSION, ResultStore, store_from_env


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _entry_path(store, key):
    """The object file backing ``key`` (tests may corrupt it at will)."""
    return store._objects / store.lease_path(key).name.replace(".lease", ".json")


class TestRoundTrip:
    def test_text(self, store):
        store.put(("artifact", "sweep-abc"), "machine,kernel\nsg2044,ep\n")
        assert store.get(("artifact", "sweep-abc")) == "machine,kernel\nsg2044,ep\n"

    def test_miss_is_none(self, store):
        assert store.get(("nope",)) is None
        assert ("nope",) not in store

    def test_contains(self, store):
        store.put(("k",), "v")
        assert ("k",) in store

    def test_experiment_results_bit_identical(self, store):
        engine = SweepEngine(jobs=1)
        grid = expand_grid("sg2044", ("ep", "cg"), thread_counts=(1, 2))
        results = engine.run_many(grid, on_dnr="none")
        for config, result in zip(grid, results):
            key = engine.cache_key(config)
            store.put(key, result)
            assert store.get(key) == result  # == is exact, not approximate

    def test_dnr_round_trip(self, store):
        engine = SweepEngine(jobs=1)
        from repro.core.sweep import ExperimentConfig

        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        with pytest.raises(DNRError) as exc:
            engine.run(config)
        key = engine.cache_key(config)
        store.put(key, exc.value)
        restored = store.get(key)
        assert isinstance(restored, DNRError)
        assert str(restored) == str(exc.value)

    def test_second_instance_same_root_sees_entries(self, store, tmp_path):
        store.put(("shared",), "payload")
        other = ResultStore(tmp_path / "store")
        assert other.get(("shared",)) == "payload"

    def test_get_many_returns_only_hits(self, store):
        store.put(("a",), "1")
        store.put(("b",), "2")
        found = store.get_many([("a",), ("b",), ("c",)])
        assert found == {("a",): "1", ("b",): "2"}


class TestIntegrity:
    def _counters(self):
        return obs.recorder().counters_snapshot()

    def test_truncated_entry_is_a_miss_then_rewritable(self, store):
        store.put(("k",), "some artifact text")
        path = _entry_path(store, ("k",))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        recorder = obs.install()
        try:
            assert store.get(("k",)) is None  # miss, not garbage
        finally:
            obs.disable()
        assert recorder.counters_snapshot()["store.corrupt_entries"] == 1
        assert not path.exists()  # quarantined by unlink

        # The recompute-and-rewrite path restores service.
        store.put(("k",), "some artifact text")
        assert store.get(("k",)) == "some artifact text"

    def test_tampered_payload_fails_sha(self, store):
        store.put(("k",), "honest text")
        path = _entry_path(store, ("k",))
        entry = json.loads(path.read_text())
        entry["payload"] = json.dumps({"text": "tampered text"})
        path.write_text(json.dumps(entry))
        assert store.get(("k",)) is None

    def test_version_mismatch_is_a_miss(self, store):
        store.put(("k",), "text")
        path = _entry_path(store, ("k",))
        entry = json.loads(path.read_text())
        entry["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(("k",)) is None

    def test_key_mismatch_is_a_miss(self, store):
        # An entry filed under the wrong digest (e.g. a botched manual
        # copy) must not be served for the colliding key.
        store.put(("a",), "a's value")
        wrong = _entry_path(store, ("b",))
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(_entry_path(store, ("a",)).read_text())
        assert store.get(("b",)) is None
        assert store.get(("a",)) == "a's value"

    def test_non_json_entry_is_a_miss(self, store):
        store.put(("k",), "text")
        _entry_path(store, ("k",)).write_text("not json at all {")
        assert store.get(("k",)) is None


class TestLeases:
    def test_exclusive_claim(self, store):
        assert store.try_lease(("k",)) is True
        assert store.try_lease(("k",)) is False  # held
        assert store.lease_active(("k",))
        store.release_lease(("k",))
        assert not store.lease_active(("k",))
        store.release_lease(("k",))  # idempotent
        assert store.try_lease(("k",)) is True

    def test_break_lease(self, store):
        store.try_lease(("k",))
        store.break_lease(("k",))
        assert store.try_lease(("k",)) is True

    def test_lease_does_not_block_reads(self, store):
        store.put(("k",), "v")
        store.try_lease(("k",))
        assert store.get(("k",)) == "v"


class TestEviction:
    def _sized_store(self, tmp_path, n_keep):
        """A store whose cap fits ``n_keep`` same-sized entries."""
        probe = ResultStore(tmp_path / "probe")
        probe.put(("probe", 0), "x" * 64)
        size = probe.stats()["bytes"]
        return ResultStore(tmp_path / "store", max_bytes=n_keep * size + size // 2)

    def test_lru_eviction_under_cap(self, tmp_path):
        store = self._sized_store(tmp_path, 2)
        store.put(("probe", 1), "a" * 64)
        store.put(("probe", 2), "b" * 64)
        store.put(("probe", 3), "c" * 64)  # pushes over: evicts oldest
        assert store.get(("probe", 1)) is None
        assert store.get(("probe", 2)) == "b" * 64
        assert store.get(("probe", 3)) == "c" * 64
        assert store.stats()["bytes"] <= store.max_bytes

    def test_get_refreshes_recency(self, tmp_path):
        store = self._sized_store(tmp_path, 2)
        store.put(("probe", 1), "a" * 64)
        store.put(("probe", 2), "b" * 64)
        assert store.get(("probe", 1)) == "a" * 64  # bump 1 past 2
        store.put(("probe", 3), "c" * 64)
        assert store.get(("probe", 1)) == "a" * 64  # survived
        assert store.get(("probe", 2)) is None  # evicted instead

    def test_leased_entry_never_evicted(self, tmp_path):
        store = self._sized_store(tmp_path, 2)
        store.put(("probe", 1), "a" * 64)
        store.put(("probe", 2), "b" * 64)
        store.try_lease(("probe", 1))  # oldest, but claimed
        try:
            store.put(("probe", 3), "c" * 64)
            assert store.get(("probe", 1)) == "a" * 64  # protected
            assert store.get(("probe", 2)) is None  # next-oldest went instead
        finally:
            store.release_lease(("probe", 1))

    def test_eviction_counter(self, tmp_path):
        store = self._sized_store(tmp_path, 1)
        recorder = obs.install()
        try:
            store.put(("probe", 1), "a" * 64)
            store.put(("probe", 2), "b" * 64)
        finally:
            obs.disable()
        assert recorder.counters_snapshot()["store.evictions"] >= 1

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(tmp_path / "s", max_bytes=0)
        with pytest.raises(ValueError, match="lease_timeout_s"):
            ResultStore(tmp_path / "s", lease_timeout_s=0)


class TestIndex:
    def test_rebuilt_after_index_loss(self, store, tmp_path):
        store.put(("a",), "1")
        store.put(("b",), "2")
        (tmp_path / "store" / "index.json").unlink()
        fresh = ResultStore(tmp_path / "store")
        assert fresh.stats()["entries"] == 2
        assert fresh.get(("a",)) == "1"

    def test_corrupt_index_is_rebuilt(self, store, tmp_path):
        store.put(("a",), "1")
        (tmp_path / "store" / "index.json").write_text("{broken")
        fresh = ResultStore(tmp_path / "store")
        assert fresh.stats()["entries"] == 1

    def test_stats_shape(self, store):
        stats = store.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["max_bytes"] is None and stats["leases"] == 0
        store.put(("k",), "v")
        store.try_lease(("other",))
        try:
            stats = store.stats()
            assert stats["entries"] == 1 and stats["bytes"] > 0
            assert stats["leases"] == 1
        finally:
            store.release_lease(("other",))

    def test_clear(self, store):
        store.put(("k",), "v")
        store.try_lease(("k",))
        store.clear()
        assert store.get(("k",)) is None
        assert store.stats() == {
            "root": str(store.root),
            "entries": 0,
            "bytes": 0,
            "max_bytes": None,
            "leases": 0,
        }


class TestStoreFromEnv:
    def test_absent_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert store_from_env() is None

    def test_root_and_cap(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        monkeypatch.setenv("REPRO_STORE_MAX_MB", "8")
        store = store_from_env()
        assert store.root == tmp_path / "envstore"
        assert store.max_bytes == 8 * 2**20

    def test_bogus_cap_falls_back_to_unbounded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        monkeypatch.setenv("REPRO_STORE_MAX_MB", "a-lot")
        store = store_from_env()
        assert store is not None and store.max_bytes is None
