"""SweepEngine x ResultStore: warm restarts and cross-process single-flight.

A store-backed engine must (a) never recompute what the store already
holds, (b) let exactly one claimant execute each family under
contention, and (c) recover leases abandoned by dead claimants without
wall-clock sleeps leaking into results.
"""

import multiprocessing as mp
import threading

import pytest

from repro import obs
from repro.core.sweep import SweepEngine, expand_grid
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


GRID = expand_grid(("sg2042", "sg2044"), ("ep", "is"), thread_counts=(1, 2))


def test_warm_restart_executes_nothing(tmp_path):
    store = ResultStore(tmp_path / "store")
    cold = SweepEngine(jobs=2, store=store).run_many(GRID, on_dnr="none")

    recorder = obs.install()
    try:
        warm = SweepEngine(jobs=2, store=store).run_many(GRID, on_dnr="none")
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert warm == cold
    assert counters.get("sweep.configs_executed", 0) == 0
    assert counters["store.hits"] >= len(GRID)
    assert store.stats()["leases"] == 0  # nothing left behind


def _contend(store_root, queue):
    """Child process: 4 threads sweep the same grid against one store."""
    recorder = obs.install()
    engine = SweepEngine(jobs=1, store=ResultStore(store_root))
    results = [None] * 4

    def sweep(i):
        results[i] = engine.run_many(GRID, on_dnr="none")

    threads = [threading.Thread(target=sweep, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r == results[0] for r in results)
    queue.put(recorder.counters_snapshot().get("sweep.configs_executed", 0))


def test_two_processes_execute_each_config_once(tmp_path):
    """8 concurrent sweeps (2 processes x 4 threads), one execution each."""
    ctx = mp.get_context("fork")
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_contend, args=(tmp_path / "store", queue))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    executed = [queue.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
    assert all(p.exitcode == 0 for p in procs)
    # Every config computed exactly once across all 8 sweeps combined.
    assert sum(executed) == len(GRID)

    # And the store now warm-serves a ninth sweep with zero executions.
    recorder = obs.install()
    try:
        warm = SweepEngine(jobs=2, store=ResultStore(tmp_path / "store")).run_many(
            GRID, on_dnr="none"
        )
    finally:
        obs.disable()
    assert len(warm) == len(GRID)
    assert recorder.counters_snapshot().get("sweep.configs_executed", 0) == 0


def test_takeover_after_lease_timeout(tmp_path):
    """A lease whose holder died mid-run is broken and re-claimed."""
    store = ResultStore(tmp_path / "store", lease_timeout_s=0.05, poll_interval_s=0.01)
    # Simulate a crashed claimant: lease held, result never published.
    dead_key = SweepEngine(jobs=1).cache_key(GRID[0])
    assert store.try_lease(dead_key)

    recorder = obs.install()
    try:
        engine = SweepEngine(jobs=1, store=store)
        results = engine.run_many(GRID, on_dnr="none")
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert len(results) == len(GRID)
    assert counters["store.lease_timeouts"] >= 1
    assert store.stats()["leases"] == 0


def test_orphan_lease_taken_over_without_timeout(tmp_path):
    """If the foreign lease vanishes with no entry, take over immediately."""
    store = ResultStore(tmp_path / "store", lease_timeout_s=10.0, poll_interval_s=0.01)
    engine = SweepEngine(jobs=1, store=store)
    orphan_key = engine.cache_key(GRID[0])
    assert store.try_lease(orphan_key)

    # First wait iteration sleeps; release the lease there so the next
    # iteration observes lease-gone + entry-missing and claims it.
    engine._sleep = lambda _s: store.release_lease(orphan_key)

    recorder = obs.install()
    try:
        results = engine.run_many(GRID, on_dnr="none")
    finally:
        obs.disable()
    counters = recorder.counters_snapshot()

    assert len(results) == len(GRID)
    assert counters["store.lease_takeovers"] >= 1
    assert counters.get("store.lease_timeouts", 0) == 0  # no 10 s wait burned
    assert store.stats()["leases"] == 0
