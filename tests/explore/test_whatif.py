"""The upgrade-ablation study: which SG2044 change bought what."""

import pytest

from repro.explore.whatif import UPGRADES, ablate_upgrade, upgrade_ladder, variant
from repro.machines.catalog import get_machine


class TestVariant:
    def test_renamed_copy(self):
        base = get_machine("sg2042")
        v = variant(base, "test", clock_hz=2.6e9)
        assert v.clock_hz == 2.6e9
        assert v.name == "test"
        assert base.clock_hz == 2.0e9  # original untouched

    def test_full_ladder_lands_near_sg2044(self):
        ladder = upgrade_ladder("ep", 64)
        assert ladder[0][0] == "baseline-sg2042"
        assert len(ladder) == len(UPGRADES) + 1


class TestAttribution:
    """The paper's causal story, quantified."""

    def test_memory_upgrade_dominates_is(self):
        # IS's 4.91x comes almost entirely from the memory subsystem.
        assert ablate_upgrade("is", "memory") > 3.0
        assert ablate_upgrade("is", "clock") < 1.3

    def test_memory_upgrade_dominates_mg(self):
        assert ablate_upgrade("mg", "memory") > 2.0

    def test_clock_dominates_ep(self):
        assert ablate_upgrade("ep", "clock") == pytest.approx(1.3, abs=0.02)
        assert ablate_upgrade("ep", "memory") == pytest.approx(1.0, abs=0.02)

    def test_rvv10_helps_compute_kernels_via_mainline_gcc(self):
        assert ablate_upgrade("ep", "rvv10") > 1.1

    def test_memory_matters_for_cg_too(self):
        assert ablate_upgrade("cg", "memory") > 1.5

    def test_unknown_step_rejected(self):
        with pytest.raises(KeyError):
            upgrade_ladder("is", order=("warp-drive",))

    def test_single_core_ablation_much_smaller(self):
        # Table 3 vs Table 4: at one core the memory upgrade is nearly
        # invisible; at 64 it is everything.
        assert ablate_upgrade("is", "memory", n_threads=1) < 1.4
        assert ablate_upgrade("is", "memory", n_threads=64) > 3.0
