"""Roofline placement of the NPB kernels."""

import pytest

from repro.explore.roofline import peak_gflops, ridge_intensity, roofline_point
from repro.machines.catalog import get_machine
from repro.npb.signatures import signature_for


class TestPeaks:
    def test_peak_scales_with_cores(self):
        m = get_machine("sg2044")
        assert peak_gflops(m, 64) == pytest.approx(64 * peak_gflops(m, 1))

    def test_vector_peak_above_scalar(self):
        m = get_machine("skylake8170")
        assert peak_gflops(m, 1, vectorised=True) > peak_gflops(m, 1, vectorised=False)

    def test_sg2044_ridge_left_of_sg2042(self):
        # 3x the bandwidth at 1.3x the compute moves the ridge point left:
        # more kernels become compute-bound on the SG2044.
        assert ridge_intensity(get_machine("sg2044")) < ridge_intensity(
            get_machine("sg2042")
        )


class TestPlacement:
    def test_ep_compute_bound_everywhere(self):
        for name in ("sg2042", "sg2044", "epyc7742"):
            p = roofline_point(get_machine(name), signature_for("ep", "C"))
            assert p.bound == "compute"

    def test_mg_memory_bound_everywhere(self):
        for name in ("sg2042", "sg2044", "epyc7742", "skylake8170"):
            p = roofline_point(get_machine(name), signature_for("mg", "C"))
            assert p.bound == "memory"

    def test_mg_attainable_tracks_bandwidth(self):
        p42 = roofline_point(get_machine("sg2042"), signature_for("mg", "C"))
        p44 = roofline_point(get_machine("sg2044"), signature_for("mg", "C"))
        assert 2.5 < p44.attainable_gflops / p42.attainable_gflops < 3.5

    def test_intensity_is_flops_over_bytes(self):
        sig = signature_for("mg", "C")
        p = roofline_point(get_machine("sg2044"), sig)
        assert p.arithmetic_intensity == pytest.approx(1.0 / sig.dram_bytes_per_op)
