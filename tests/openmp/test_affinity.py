"""OMP_PROC_BIND / OMP_PLACES parsing and placements."""

import pytest

from repro.machines.topology import Topology
from repro.openmp.affinity import ProcBind, parse_places, place_threads

SOPHON = Topology(total_cores=64, cores_per_cluster=4)


class TestProcBindParsing:
    def test_unset_is_false(self):
        assert ProcBind.parse(None) is ProcBind.FALSE
        assert ProcBind.parse("") is ProcBind.FALSE

    @pytest.mark.parametrize("text,expected", [
        ("false", ProcBind.FALSE),
        ("TRUE", ProcBind.TRUE),
        ("close", ProcBind.CLOSE),
        ("Spread", ProcBind.SPREAD),
        ("master", ProcBind.MASTER),
    ])
    def test_values(self, text, expected):
        assert ProcBind.parse(text) is expected

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            ProcBind.parse("sideways")


class TestPlacesParsing:
    def test_cores_default(self):
        places = parse_places("cores", SOPHON)
        assert len(places) == 64
        assert places[5] == [5]

    def test_sockets(self):
        topo = Topology(total_cores=8, cores_per_cluster=2, numa_regions=2)
        assert parse_places("sockets", topo) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_explicit_singletons(self):
        assert parse_places("{0},{8},{16}", SOPHON) == [[0], [8], [16]]

    def test_interval_form(self):
        assert parse_places("{0:4},{60:4}", SOPHON) == [
            [0, 1, 2, 3],
            [60, 61, 62, 63],
        ]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            parse_places("{64}", SOPHON)

    def test_zero_length_interval_rejected(self):
        with pytest.raises(ValueError):
            parse_places("{0:0}", SOPHON)


class TestPlacement:
    def test_false_is_unbound(self):
        p = place_threads(SOPHON, 64, "false")
        assert p.cores is None

    def test_close_packs(self):
        p = place_threads(SOPHON, 8, "close")
        assert p.cores == tuple(range(8))
        assert p.max_cluster_occupancy() == 4.0

    def test_spread_spreads(self):
        p = place_threads(SOPHON, 16, "spread")
        assert p.max_cluster_occupancy() == 1.0

    def test_master_stacks_everything(self):
        p = place_threads(SOPHON, 4, "master")
        assert set(p.cores) == {0}

    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            place_threads(SOPHON, 65, "close")
