"""OpenMP loop schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openmp.schedule import (
    Chunk,
    ScheduleKind,
    imbalance,
    schedule_iterations,
)


def coverage(chunks, n):
    seen = []
    for ch in chunks:
        seen.extend(range(ch.start, ch.stop))
    return sorted(seen) == list(range(n))


class TestStatic:
    def test_near_equal_blocks(self):
        chunks = schedule_iterations(10, 3)
        sizes = sorted(ch.size for ch in chunks)
        assert sizes == [3, 3, 4]

    def test_every_iteration_exactly_once(self):
        assert coverage(schedule_iterations(100, 7), 100)

    def test_static_chunked_round_robin(self):
        chunks = schedule_iterations(8, 2, ScheduleKind.STATIC, chunk_size=2)
        assert [ch.thread for ch in chunks] == [0, 1, 0, 1]

    def test_fewer_iterations_than_threads(self):
        chunks = schedule_iterations(2, 8)
        assert len(chunks) == 2
        assert coverage(chunks, 2)


class TestDynamicAndGuided:
    @given(
        n=st.integers(1, 500),
        threads=st.integers(1, 16),
        chunk=st.integers(1, 32),
        kind=st.sampled_from([ScheduleKind.DYNAMIC, ScheduleKind.GUIDED]),
    )
    @settings(max_examples=60)
    def test_complete_disjoint_coverage(self, n, threads, chunk, kind):
        chunks = schedule_iterations(n, threads, kind, chunk)
        assert coverage(chunks, n)

    def test_guided_chunks_shrink(self):
        chunks = schedule_iterations(1000, 4, ScheduleKind.GUIDED, chunk_size=8)
        sizes = [ch.size for ch in chunks]
        assert sizes[0] > sizes[-1]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestImbalance:
    def test_balanced_static(self):
        chunks = schedule_iterations(64, 8)
        assert imbalance(chunks, 8) == pytest.approx(0.0)

    def test_unbalanced_detected(self):
        chunks = [Chunk(0, 0, 10), Chunk(1, 10, 12)]
        assert imbalance(chunks, 2) == pytest.approx(10 / 6 - 1)

    def test_empty_thread_rejected(self):
        with pytest.raises(ValueError):
            imbalance([], 2)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            schedule_iterations(0, 4)
        with pytest.raises(ValueError):
            schedule_iterations(4, 0)
        with pytest.raises(ValueError):
            schedule_iterations(4, 2, ScheduleKind.DYNAMIC, chunk_size=0)
        with pytest.raises(ValueError):
            Chunk(0, 5, 5)
