"""The fork-join simulator and the Section 5.2 placement findings."""

import pytest

from repro.machines import get_machine
from repro.openmp import OpenMPRuntime, ScheduleKind


@pytest.fixture
def rt():
    return OpenMPRuntime(get_machine("sg2044"))


class TestRegions:
    def test_fork_and_join_barriers_accounted(self, rt):
        with rt.parallel(16) as region:
            pass
        assert region.barriers == 2  # fork + join
        assert region.sync_seconds > 0
        assert rt.regions == [region]

    def test_parallel_for_adds_implicit_barrier(self, rt):
        with rt.parallel(8) as region:
            chunks = rt.parallel_for(region, 1000)
        assert region.barriers == 3
        assert len(chunks) == 8

    def test_reduction_costs_more_than_barrier(self, rt):
        with rt.parallel(32) as region:
            b = rt.barrier(region)
            r = rt.reduction(region)
        assert r > b

    def test_nested_regions_rejected(self, rt):
        with rt.parallel(4):
            with pytest.raises(RuntimeError):
                with rt.parallel(2):
                    pass

    def test_dynamic_schedule_imbalance_recorded(self, rt):
        with rt.parallel(7) as region:
            rt.parallel_for(region, 100, ScheduleKind.DYNAMIC, chunk_size=3)
        assert region.load_imbalance >= 0.0

    def test_thread_count_validated(self, rt):
        with pytest.raises(ValueError):
            rt.parallel(65)


class TestPlacementEfficiency:
    """The paper's surprising Section 5.2 result."""

    def test_unbound_is_best(self):
        m = get_machine("sg2044")
        unbound = OpenMPRuntime(m).placement_efficiency(64)
        close = OpenMPRuntime(m, proc_bind="close").placement_efficiency(64)
        spread = OpenMPRuntime(m, proc_bind="spread").placement_efficiency(64)
        master = OpenMPRuntime(m, proc_bind="master").placement_efficiency(64)
        assert unbound == 1.0
        assert unbound > close
        assert unbound > spread
        assert master < 0.1

    def test_spread_beats_close_at_partial_occupancy(self):
        m = get_machine("sg2044")
        close = OpenMPRuntime(m, proc_bind="close").placement_efficiency(16)
        spread = OpenMPRuntime(m, proc_bind="spread").placement_efficiency(16)
        assert spread > close

    def test_full_chip_close_equals_spread(self):
        # With every core busy there is nothing left to spread.
        m = get_machine("sg2044")
        close = OpenMPRuntime(m, proc_bind="close").placement_efficiency(64)
        spread = OpenMPRuntime(m, proc_bind="spread").placement_efficiency(64)
        assert close == pytest.approx(spread)
