"""The `repro lint` subcommand: exit codes, formats, rule selection."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parents[1] / "analysis" / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


class TestLintCommand:
    def test_repo_source_is_clean(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_fixture_exits_nonzero(self, capsys):
        rc = main(["lint", str(FIXTURES / "r003_bad.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "R003" in out

    def test_json_format_parses(self, capsys):
        assert main(["lint", "--format", "json", str(SRC)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["exit_code"] == 0

    def test_rule_selection(self, capsys):
        rc = main(["lint", "--rules", "R001", str(FIXTURES / "r003_bad.py")])
        assert rc == 0  # R003 violations are invisible to an R001-only run
        rc = main(["lint", "--rules", "R001,R003", str(FIXTURES / "r003_bad.py")])
        assert rc == 1

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005"):
            assert code in out

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--format", "yaml"])
