"""The `repro lint` subcommand: exit codes, formats, rule selection."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).resolve().parents[1] / "analysis" / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


class TestLintCommand:
    def test_repo_source_is_clean(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_fixture_exits_nonzero(self, capsys):
        rc = main(["lint", str(FIXTURES / "r003_bad.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "R003" in out

    def test_json_format_parses(self, capsys):
        assert main(["lint", "--format", "json", str(SRC)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["exit_code"] == 0

    def test_rule_selection(self, capsys):
        rc = main(["lint", "--rules", "R001", str(FIXTURES / "r003_bad.py")])
        assert rc == 0  # R003 violations are invisible to an R001-only run
        rc = main(["lint", "--rules", "R001,R003", str(FIXTURES / "r003_bad.py")])
        assert rc == 1

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005"):
            assert code in out

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--format", "yaml"])


class TestLintCache:
    """CLI wiring for the incremental engine: cache flags, --jobs, --stats."""

    def _project(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "m.py").write_text("import time\nt = time.time()\n")
        return tmp_path

    def test_cache_written_in_cwd_by_default(self, tmp_path, monkeypatch, capsys):
        root = self._project(tmp_path, monkeypatch)
        assert main(["lint", "."]) == 1
        assert (root / ".repro-lint-cache.json").exists()

    def test_no_cache_writes_nothing(self, tmp_path, monkeypatch, capsys):
        root = self._project(tmp_path, monkeypatch)
        main(["lint", "--no-cache", "."])
        assert not (root / ".repro-lint-cache.json").exists()

    def test_cache_flag_overrides_location(self, tmp_path, monkeypatch, capsys):
        root = self._project(tmp_path, monkeypatch)
        main(["lint", "--cache", "elsewhere.json", "."])
        assert (root / "elsewhere.json").exists()
        assert not (root / ".repro-lint-cache.json").exists()

    def test_stats_on_stderr_keeps_json_stdout_clean(
        self, tmp_path, monkeypatch, capsys
    ):
        self._project(tmp_path, monkeypatch)
        main(["lint", "--stats", "--format", "json", "."])
        cap = capsys.readouterr()
        doc = json.loads(cap.out)  # would raise if stats leaked into stdout
        assert doc["version"] == 1
        assert "stats:" in cap.err
        main(["lint", "--stats", "--format", "json", "."])
        assert "(1 cached, 0 analyzed)" in capsys.readouterr().err

    def test_jobs_output_matches_serial(self, tmp_path, monkeypatch, capsys):
        self._project(tmp_path, monkeypatch)
        main(["lint", "--no-cache", "--format", "json", "."])
        serial = capsys.readouterr().out
        main(["lint", "--no-cache", "--jobs", "2", "--format", "json", "."])
        assert capsys.readouterr().out == serial


class TestLintHelp:
    def test_rule_span_derived_from_registry(self, capsys):
        from repro.analysis.registry import registered_codes
        from repro.cli import _lint_help

        codes = registered_codes()
        assert f"{codes[0]}-{codes[-1]}" in _lint_help()
        assert "R013" in _lint_help()  # the newest rule is covered
