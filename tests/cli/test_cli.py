"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "sg2044" in out and "RVV v1.0.0" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "Sophon SG2044" in capsys.readouterr().out

    def test_table4_csv(self, capsys):
        assert main(["table", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("Benchmark,")

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "STREAM" in capsys.readouterr().out

    def test_npb_ep_class_s(self, capsys):
        assert main(["npb", "ep", "--npb-class", "S"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_predict(self, capsys):
        assert main(["predict", "sg2044", "is", "--threads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Mop/s" in out and "dominant" in out

    def test_cg_study(self, capsys):
        assert main(["cg-study"]) == 0
        assert "slowdown" in capsys.readouterr().out

    def test_stream(self, capsys):
        assert main(["stream", "--elements", "100000"]) == 0
        assert "GB/s" in capsys.readouterr().out


class TestExplorationCommands:
    def test_ablate(self, capsys):
        assert main(["ablate", "ep", "--threads", "64"]) == 0
        out = capsys.readouterr().out
        assert "clock" in out and "memory" in out

    def test_cluster(self, capsys):
        assert main(["cluster", "sg2044", "ep", "--sockets", "1", "4"]) == 0
        assert "socket" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "sg2044"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out and "compute-bound" in out

    def test_export(self, capsys, tmp_path):
        assert main(["export", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "table4.csv" in out and "figure2.csv" in out

    def test_score(self, capsys):
        assert main(["score"]) == 0
        out = capsys.readouterr().out
        assert "anchored" in out and "emergent" in out
