"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_range_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "sg2044" in out and "RVV v1.0.0" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "Sophon SG2044" in capsys.readouterr().out

    def test_table4_csv(self, capsys):
        assert main(["table", "4", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("Benchmark,")

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "STREAM" in capsys.readouterr().out

    def test_npb_ep_class_s(self, capsys):
        assert main(["npb", "ep", "--npb-class", "S"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_predict(self, capsys):
        assert main(["predict", "sg2044", "is", "--threads", "64"]) == 0
        out = capsys.readouterr().out
        assert "Mop/s" in out and "dominant" in out

    def test_cg_study(self, capsys):
        assert main(["cg-study"]) == 0
        assert "slowdown" in capsys.readouterr().out

    def test_stream(self, capsys):
        assert main(["stream", "--elements", "100000"]) == 0
        assert "GB/s" in capsys.readouterr().out


class TestExplorationCommands:
    def test_ablate(self, capsys):
        assert main(["ablate", "ep", "--threads", "64"]) == 0
        out = capsys.readouterr().out
        assert "clock" in out and "memory" in out

    def test_cluster(self, capsys):
        assert main(["cluster", "sg2044", "ep", "--sockets", "1", "4"]) == 0
        assert "socket" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "sg2044"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out and "compute-bound" in out

    def test_export(self, capsys, tmp_path):
        assert main(["export", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "table4.csv" in out and "figure2.csv" in out

    def test_score(self, capsys):
        assert main(["score"]) == 0
        out = capsys.readouterr().out
        assert "anchored" in out and "emergent" in out


class TestStatsCommand:
    def test_stats_text_tree(self, capsys):
        assert main(["stats", "table6"]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out
        assert "table6 x1" in out
        assert "sweep.configs_requested" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "figure5", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["counters"]["harness.figures_built"] == 1
        assert report["spans"]["children"][0]["name"] == "figure5"

    def test_stats_accepts_loose_spellings(self, capsys):
        assert main(["stats", "t1"]) == 0
        assert "table1 x1" in capsys.readouterr().out

    def test_stats_rejects_nonsense(self, capsys):
        assert main(["stats", "bogus"]) == 2
        assert "unrecognised artifact" in capsys.readouterr().err

    def test_stats_rejects_unknown_number(self, capsys):
        assert main(["stats", "table99"]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_stats_leaves_telemetry_disabled(self):
        from repro import obs

        assert main(["stats", "table1"]) == 0
        assert not obs.is_enabled()

    def test_table_telemetry_flag_writes_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        assert main(["table", "6", "--telemetry", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["version"] == 1
        assert report["counters"]["harness.tables_built"] == 1
        assert "timings" in report
