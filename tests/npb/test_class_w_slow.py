"""Class W functional runs (bigger than CI-default class S)."""

import pytest

from repro.npb.suite import run_benchmark

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("kernel", ["is", "mg", "ep", "ft"])
def test_class_w_verifies(kernel):
    result = run_benchmark(kernel, "W")
    assert result.verified, f"{kernel} W failed: {result.details}"


def test_bt_class_w_verifies():
    result = run_benchmark("bt", "W")
    assert result.verified


def test_class_a_ep_official_constants():
    result = run_benchmark("ep", "A")
    assert result.verified
    assert result.details["sx"] == pytest.approx(-4.295875165629892e3, rel=1e-10)
