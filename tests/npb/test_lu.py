"""LU: hyperplane wavefronts and SSOR sweep correctness."""

import numpy as np
import pytest

from repro.npb.lu import OMEGA, Hyperplanes, lu_step, run_lu, ssor_step
from repro.npb.pseudo import NCOMP, ModelProblem


class TestHyperplanes:
    def test_partition_complete_and_disjoint(self):
        h = Hyperplanes(6)
        seen = np.concatenate(h.planes)
        assert len(seen) == 6**3
        assert len(np.unique(seen)) == 6**3

    def test_plane_count(self):
        assert Hyperplanes(6).n_planes() == 3 * 6 - 2

    def test_plane_membership(self):
        n = 4
        h = Hyperplanes(n)
        for plane_id, plane in enumerate(h.planes):
            for flat in plane:
                i, j, k = flat // (n * n), (flat // n) % n, flat % n
                assert i + j + k == plane_id

    def test_corner_planes_singletons(self):
        h = Hyperplanes(5)
        assert len(h.planes[0]) == 1
        assert len(h.planes[-1]) == 1

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            Hyperplanes(1)


class TestSweepCorrectness:
    def test_forward_sweep_solves_lower_triangular_system(self):
        """(D + omega*L) x = rhs, checked by explicit reconstruction."""
        n = 4
        h = Hyperplanes(n)
        rng = np.random.default_rng(10)
        rhs = rng.normal(size=(NCOMP, n**3))
        diag = 3.0 * np.eye(NCOMP) + 0.1
        coeff = (0.3, 0.2, 0.1)
        x = h.sweep(rhs, np.linalg.inv(diag), coeff, forward=True)

        # Reconstruct (D + omega L) x and compare to rhs.
        recon = np.zeros_like(rhs)
        strides = (n * n, n, 1)
        for flat in range(n**3):
            i, j, k = flat // (n * n), (flat // n) % n, flat % n
            acc = diag @ x[:, flat]
            for axis, (idx, s) in enumerate(zip((i, j, k), strides)):
                if idx > 0:
                    acc += OMEGA * coeff[axis] * x[:, flat - s]
            recon[:, flat] = acc
        assert np.allclose(recon, rhs, atol=1e-10)

    def test_backward_sweep_mirror(self):
        n = 3
        h = Hyperplanes(n)
        rng = np.random.default_rng(11)
        rhs = rng.normal(size=(NCOMP, n**3))
        diag = 4.0 * np.eye(NCOMP)
        coeff = (0.2, 0.2, 0.2)
        x = h.sweep(rhs, np.linalg.inv(diag), coeff, forward=False)
        recon = np.zeros_like(rhs)
        strides = (n * n, n, 1)
        for flat in range(n**3):
            i, j, k = flat // (n * n), (flat // n) % n, flat % n
            acc = diag @ x[:, flat]
            for axis, (idx, s) in enumerate(zip((i, j, k), strides)):
                if idx < n - 1:
                    acc += OMEGA * coeff[axis] * x[:, flat + s]
            recon[:, flat] = acc
        assert np.allclose(recon, rhs, atol=1e-10)


class TestLUConvergence:
    def test_ssor_step_reduces_error(self):
        prob = ModelProblem(8)
        hyper = Hyperplanes(8)
        u = np.zeros((NCOMP, 8, 8, 8))
        dt = 0.8 * prob.h
        e0 = prob.error_norm(u)
        for _ in range(10):
            u = u + ssor_step(prob, hyper, prob.residual(u), dt)
        assert prob.error_norm(u) < 0.6 * e0

    def test_convenience_step_matches_factory(self):
        prob = ModelProblem(6)
        u = np.zeros((NCOMP, 6, 6, 6))
        r = prob.residual(u)
        a = lu_step(prob, u, r, 0.1)
        from repro.npb.lu import lu_step_factory

        b = lu_step_factory(Hyperplanes(6))(prob, u, r, 0.1)
        assert np.allclose(a, b)

    def test_class_s_verifies(self):
        assert run_lu("S").verified
