"""BT: batched block-tridiagonal solver and ADI convergence."""

import numpy as np
import pytest

from repro.npb.bt import block_tridiag_solve, bt_step, line_blocks, run_bt
from repro.npb.pseudo import NCOMP, ModelProblem


def dense_from_blocks(a, b, c):
    """Assemble the full block-tridiagonal matrix for verification."""
    n, k, _ = b.shape
    m = np.zeros((n * k, n * k))
    for i in range(n):
        m[i * k : (i + 1) * k, i * k : (i + 1) * k] = b[i]
        if i > 0:
            m[i * k : (i + 1) * k, (i - 1) * k : i * k] = a[i]
        if i < n - 1:
            m[i * k : (i + 1) * k, (i + 1) * k : (i + 2) * k] = c[i]
    return m


class TestBlockTridiagSolve:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(7)
        n, k, batch = 6, 5, 3
        a = rng.normal(size=(n, k, k)) * 0.1
        c = rng.normal(size=(n, k, k)) * 0.1
        b = rng.normal(size=(n, k, k)) * 0.1 + 3.0 * np.eye(k)
        a[0] = 0.0
        c[-1] = 0.0
        d = rng.normal(size=(n, batch, k))
        x = block_tridiag_solve(a, b, c, d)
        dense = dense_from_blocks(a, b, c)
        for j in range(batch):
            expect = np.linalg.solve(dense, d[:, j, :].reshape(-1))
            assert np.allclose(x[:, j, :].reshape(-1), expect, atol=1e-10)

    def test_identity_system(self):
        n, k = 4, 5
        a = np.zeros((n, k, k))
        c = np.zeros((n, k, k))
        b = np.broadcast_to(np.eye(k), (n, k, k)).copy()
        d = np.random.default_rng(8).normal(size=(n, 2, k))
        assert np.allclose(block_tridiag_solve(a, b, c, d), d)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            block_tridiag_solve(
                np.zeros((4, 5, 5)),
                np.zeros((3, 5, 5)),
                np.zeros((4, 5, 5)),
                np.zeros((4, 1, 5)),
            )


class TestLineBlocks:
    def test_boundary_closure(self):
        a, b, c = line_blocks(8, 0.125, 0.05, 0, np.eye(NCOMP))
        assert np.all(a[0] == 0.0)
        assert np.all(c[-1] == 0.0)

    def test_diagonal_dominance(self):
        # The implicit factor must be comfortably invertible.
        a, b, c = line_blocks(8, 0.125, 0.05, 1, np.eye(NCOMP))
        diag_mag = np.abs(np.diagonal(b[4]))
        off = np.abs(a[4]).sum() + np.abs(c[4]).sum()
        assert diag_mag.min() > 0.5


class TestBTConvergence:
    def test_step_reduces_error(self):
        prob = ModelProblem(8)
        u = np.zeros((NCOMP, 8, 8, 8))
        dt = 0.5 * prob.h
        e0 = prob.error_norm(u)
        for _ in range(10):
            u = u + bt_step(prob, u, prob.residual(u), dt)
        assert prob.error_norm(u) < 0.6 * e0

    def test_class_s_verifies(self):
        result = run_bt("S")
        assert result.verified
        assert result.details["final_error"] < 0.2 * result.details["initial_error"]
