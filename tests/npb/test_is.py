"""IS: ranking correctness, sort verification, key distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.npb.is_ import generate_keys, rank_keys, run_is


class TestKeyGeneration:
    def test_deterministic(self):
        assert np.array_equal(generate_keys(1000, 256), generate_keys(1000, 256))

    def test_range(self):
        keys = generate_keys(10_000, 512)
        assert keys.min() >= 0
        assert keys.max() < 512

    def test_gaussian_ish_centre_heavy(self):
        # Sum of four uniforms: the middle half holds most of the mass.
        keys = generate_keys(100_000, 1024)
        middle = np.sum((keys >= 256) & (keys < 768))
        assert middle / 100_000 > 0.75

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            generate_keys(0, 16)


class TestRanking:
    def test_rank_of_minimum_is_zero(self):
        keys = np.array([5, 3, 9, 3, 1], dtype=np.int32)
        ranks = rank_keys(keys, 16)
        assert ranks[4] == 0

    def test_ranks_count_smaller_keys(self):
        keys = np.array([5, 3, 9, 3, 1], dtype=np.int32)
        ranks = rank_keys(keys, 16)
        # key 5 has 3 smaller keys (3, 3, 1).
        assert ranks[0] == 3
        # duplicate keys share the first-occurrence rank.
        assert ranks[1] == ranks[3] == 1

    @given(
        keys=st.lists(st.integers(0, 63), min_size=1, max_size=200),
    )
    @settings(max_examples=50)
    def test_rank_property_vs_sorting(self, keys):
        arr = np.asarray(keys, dtype=np.int32)
        ranks = rank_keys(arr, 64)
        for value, rank in zip(arr, ranks):
            assert rank == int(np.sum(arr < value))


class TestRunIS:
    @pytest.mark.parametrize("npb_class", ["S", "W"])
    def test_verifies(self, npb_class):
        result = run_is(npb_class)
        assert result.verified
        assert result.details["partial_ok"] == 1.0
        assert result.details["full_ok"] == 1.0

    def test_op_accounting(self):
        result = run_is("S")
        assert result.total_mops == pytest.approx(10 * 2**16 / 1e6)
