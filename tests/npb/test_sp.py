"""SP: pentadiagonal solver correctness and convergence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.npb.sp import line_coefficients, penta_solve, run_sp, sp_step
from repro.npb.pseudo import NCOMP, ModelProblem


def dense_from_bands(e, a, b, c, f):
    n = len(b)
    m = np.zeros((n, n))
    for i in range(n):
        m[i, i] = b[i]
        if i >= 1:
            m[i, i - 1] = a[i]
        if i >= 2:
            m[i, i - 2] = e[i]
        if i + 1 < n:
            m[i, i + 1] = c[i]
        if i + 2 < n:
            m[i, i + 2] = f[i]
    return m


class TestPentaSolve:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(9)
        n = 12
        e = rng.normal(size=n) * 0.1
        a = rng.normal(size=n) * 0.2
        b = rng.normal(size=n) * 0.1 + 4.0
        c = rng.normal(size=n) * 0.2
        f = rng.normal(size=n) * 0.1
        e[:2] = 0.0
        a[0] = 0.0
        c[-1] = 0.0
        f[-2:] = 0.0
        d = rng.normal(size=(n, 4))
        x = penta_solve(e, a, b, c, f, d)
        dense = dense_from_bands(e, a, b, c, f)
        for j in range(4):
            assert np.allclose(x[:, j], np.linalg.solve(dense, d[:, j]), atol=1e-10)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25)
    def test_random_dominant_systems(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        e = rng.uniform(-0.2, 0.2, n)
        a = rng.uniform(-0.4, 0.4, n)
        b = rng.uniform(3.0, 5.0, n)
        c = rng.uniform(-0.4, 0.4, n)
        f = rng.uniform(-0.2, 0.2, n)
        e[:2] = a[0] = c[-1] = 0.0
        f[-2:] = 0.0
        d = rng.normal(size=(n, 1))
        x = penta_solve(e, a, b, c, f, d)
        dense = dense_from_bands(e, a, b, c, f)
        assert np.allclose(dense @ x[:, 0], d[:, 0], atol=1e-8)

    def test_tridiagonal_special_case(self):
        # With zero e/f bands the solver degrades to Thomas.
        n = 6
        z = np.zeros(n)
        b = np.full(n, 2.0)
        a = np.full(n, -1.0)
        c = np.full(n, -1.0)
        a[0] = c[-1] = 0.0
        d = np.ones((n, 1))
        x = penta_solve(z, a, b, c, f=z, d=d)
        dense = dense_from_bands(z, a, b, c, z)
        assert np.allclose(dense @ x[:, 0], d[:, 0])

    def test_too_short_rejected(self):
        z = np.zeros(2)
        with pytest.raises(ValueError):
            penta_solve(z, z, z + 1, z, z, np.ones((2, 1)))


class TestCoefficients:
    def test_dissipation_bands_present(self):
        e, a, b, c, f = line_coefficients(10, 0.1, 0.05, 0, 2.0)
        assert e[5] > 0.0
        assert f[5] > 0.0

    def test_boundary_closure(self):
        e, a, b, c, f = line_coefficients(10, 0.1, 0.05, 0, 2.0)
        assert e[0] == e[1] == 0.0
        assert a[0] == 0.0
        assert c[-1] == 0.0
        assert f[-1] == f[-2] == 0.0


class TestSPConvergence:
    def test_step_reduces_error(self):
        prob = ModelProblem(8)
        u = np.zeros((NCOMP, 8, 8, 8))
        dt = 0.5 * prob.h
        e0 = prob.error_norm(u)
        for _ in range(15):
            u = u + sp_step(prob, u, prob.residual(u), dt)
        assert prob.error_norm(u) < 0.6 * e0

    def test_class_s_verifies(self):
        assert run_sp("S").verified
