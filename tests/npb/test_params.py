"""Problem-size tables: monotonicity and plausibility across classes."""

import pytest

from repro.npb.common import NPBClass
from repro.npb.params import (
    ALL_BENCHMARKS,
    bt_params,
    cg_params,
    ep_params,
    ft_params,
    is_params,
    lu_params,
    mg_params,
    sp_params,
)

GETTERS = {
    "is": is_params,
    "mg": mg_params,
    "ep": ep_params,
    "cg": cg_params,
    "ft": ft_params,
    "bt": bt_params,
    "lu": lu_params,
    "sp": sp_params,
}

CLASSES = [NPBClass.S, NPBClass.W, NPBClass.A, NPBClass.B, NPBClass.C]


@pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
def test_op_counts_grow_with_class(kernel):
    mops = [GETTERS[kernel](c).total_mops for c in CLASSES]
    assert all(b > a for a, b in zip(mops, mops[1:]))


@pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
def test_working_sets_nondecreasing(kernel):
    ws = [GETTERS[kernel](c).working_set_bytes for c in CLASSES]
    assert all(b >= a for a, b in zip(ws, ws[1:]))


def test_is_class_c_sizes():
    p = is_params(NPBClass.C)
    assert p.n_keys == 2**27
    assert p.max_key == 2**23
    assert p.iterations == 10


def test_ep_class_c_op_count():
    # NPB counts 2^(m+1) operations; class C has m = 32.
    assert ep_params(NPBClass.C).total_mops == pytest.approx(2**33 / 1e6)


def test_cg_official_sizes_and_zetas():
    s = cg_params(NPBClass.S)
    assert (s.n, s.nonzer, s.niter, s.shift) == (1400, 7, 15, 10.0)
    assert s.zeta_ref == pytest.approx(8.5971775078648)
    c = cg_params(NPBClass.C)
    assert (c.n, c.nonzer, c.niter, c.shift) == (150000, 15, 75, 110.0)


def test_mg_class_c_is_512_cubed_20_iters():
    p = mg_params(NPBClass.C)
    assert p.grid == 512
    assert p.iterations == 20


def test_ft_class_b_is_not_cubic():
    p = ft_params(NPBClass.B)
    assert (p.nx, p.ny, p.nz) == (512, 256, 256)


def test_ft_class_b_working_set_exceeds_1gb():
    # This is what makes the AllWinner D1 a DNR in the paper's Table 2.
    assert ft_params(NPBClass.B).working_set_bytes > 2**30 * 0.85


def test_pseudo_apps_class_c_grid():
    for getter in (bt_params, lu_params, sp_params):
        assert getter(NPBClass.C).grid == 162


def test_pseudo_app_flop_totals_near_official():
    # BT C ~= 6.8e11, LU C ~= 4.1e11, SP C ~= 5.8e11 flops.
    assert bt_params(NPBClass.C).total_mops == pytest.approx(6.8e5, rel=0.03)
    assert lu_params(NPBClass.C).total_mops == pytest.approx(4.1e5, rel=0.03)
    assert sp_params(NPBClass.C).total_mops == pytest.approx(5.8e5, rel=0.03)
