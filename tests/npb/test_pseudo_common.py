"""The shared BT/LU/SP substrate: operator, manufactured solution."""

import numpy as np
import pytest

from repro.npb.pseudo import (
    NCOMP,
    ModelProblem,
    apply_operator,
    coupling_matrix,
    manufactured_solution,
)


class TestCouplingMatrix:
    def test_symmetric_positive_definite(self):
        k = coupling_matrix()
        assert np.allclose(k, k.T)
        assert np.all(np.linalg.eigvalsh(k) > 0)


class TestOperator:
    def test_linearity(self):
        rng = np.random.default_rng(6)
        u1 = rng.normal(size=(NCOMP, 8, 8, 8))
        u2 = rng.normal(size=(NCOMP, 8, 8, 8))
        k = coupling_matrix()
        left = apply_operator(u1 + 3.0 * u2, 0.125, k)
        right = apply_operator(u1, 0.125, k) + 3.0 * apply_operator(u2, 0.125, k)
        assert np.allclose(left, right)

    def test_constant_field_sees_only_coupling(self):
        # Derivatives of a constant vanish; L(c) = K c.
        u = np.ones((NCOMP, 8, 8, 8))
        k = coupling_matrix()
        out = apply_operator(u, 0.125, k)
        expected = k @ np.ones(NCOMP)
        for c in range(NCOMP):
            assert np.allclose(out[c], expected[c])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            apply_operator(np.zeros((3, 8, 8, 8)), 0.125, coupling_matrix())


class TestModelProblem:
    def test_residual_zero_at_exact_solution(self):
        prob = ModelProblem(12)
        r = prob.residual(prob.u_exact)
        assert np.abs(r).max() < 1e-10

    def test_error_norm_zero_at_exact_solution(self):
        prob = ModelProblem(12)
        assert prob.error_norm(prob.u_exact) == 0.0

    def test_manufactured_solution_periodic_smooth(self):
        u = manufactured_solution(16)
        assert u.shape == (NCOMP, 16, 16, 16)
        # Components are distinct.
        assert not np.allclose(u[0], u[1])

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            ModelProblem(2)
