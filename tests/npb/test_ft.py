"""FT: spectral PDE evolution, round-trip, checksum behaviour."""

import numpy as np
import pytest

from repro.npb.common import NPBClass
from repro.npb.ft import evolution_factors, ft_iterations, initial_field, run_ft
from repro.npb.params import ft_params


class TestEvolutionFactors:
    def test_dc_mode_untouched(self):
        p = ft_params(NPBClass.S)
        f = evolution_factors(p, t=5.0)
        assert f[0, 0, 0] == pytest.approx(1.0)

    def test_decays_with_wavenumber(self):
        p = ft_params(NPBClass.S)
        f = evolution_factors(p, t=1.0)
        assert f[1, 0, 0] < f[0, 0, 0]
        assert f[2, 0, 0] < f[1, 0, 0]

    def test_aliased_wavenumbers_symmetric(self):
        p = ft_params(NPBClass.S)
        f = evolution_factors(p, t=1.0)
        # k and -k (== n-k) decay identically.
        assert f[1, 0, 0] == pytest.approx(f[-1, 0, 0])

    def test_all_in_unit_interval(self):
        p = ft_params(NPBClass.S)
        f = evolution_factors(p, t=3.0)
        assert np.all(f > 0.0)
        assert np.all(f <= 1.0)


class TestInitialField:
    def test_deterministic_complex_field(self):
        p = ft_params(NPBClass.S)
        a = initial_field(p)
        b = initial_field(p)
        assert a.dtype == np.complex128
        assert np.array_equal(a, b)
        assert a.shape == (64, 64, 64)


class TestIterations:
    def test_checksums_deterministic(self):
        p = ft_params(NPBClass.S)
        u_hat = np.fft.fftn(initial_field(p))
        c1 = ft_iterations(p, u_hat)
        c2 = ft_iterations(p, u_hat)
        assert c1 == c2
        assert len(c1) == p.iterations

    def test_energy_decays(self):
        # Parseval: diffusion strictly shrinks the spectral energy.
        p = ft_params(NPBClass.S)
        u_hat = np.fft.fftn(initial_field(p))
        e0 = np.abs(u_hat) ** 2
        f = evolution_factors(p, 1.0)
        e1 = np.abs(u_hat * f) ** 2
        assert e1.sum() < e0.sum()


class TestRunFT:
    def test_class_s_verifies(self):
        result = run_ft("S")
        assert result.verified
        assert np.isfinite(result.details["checksum1_re"])
