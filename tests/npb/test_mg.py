"""MG: stencil operators, grid transfers, V-cycle convergence."""

import numpy as np
import pytest

from repro.npb.mg import (
    A_WEIGHTS,
    build_rhs,
    interp,
    mg_solve,
    psinv,
    resid,
    rprj3,
    run_mg,
)


class TestOperators:
    def test_resid_of_zero_guess_is_rhs(self):
        v = np.random.default_rng(1).normal(size=(8, 8, 8))
        assert np.allclose(resid(np.zeros_like(v), v), v)

    def test_a_weights_annihilate_constants(self):
        # sum of the 27-point operator weights is 0: A(const) = 0.
        total = A_WEIGHTS[0] + 6 * A_WEIGHTS[1] + 12 * A_WEIGHTS[2] + 8 * A_WEIGHTS[3]
        assert total == pytest.approx(0.0)
        const = np.full((8, 8, 8), 3.7)
        assert np.allclose(resid(const, np.zeros_like(const)), 0.0, atol=1e-12)

    def test_operator_linearity(self):
        rng = np.random.default_rng(2)
        u1, u2 = rng.normal(size=(2, 8, 8, 8))
        z = np.zeros_like(u1)
        left = resid(u1 + 2.0 * u2, z)
        right = resid(u1, z) + 2.0 * resid(u2, z)
        assert np.allclose(left, right)

    def test_psinv_shape_preserved(self):
        r = np.random.default_rng(3).normal(size=(8, 8, 8))
        assert psinv(r).shape == r.shape

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            resid(np.zeros((4, 4, 4)), np.zeros((8, 8, 8)))


class TestGridTransfers:
    def test_restriction_halves_grid(self):
        assert rprj3(np.ones((16, 16, 16))).shape == (8, 8, 8)

    def test_restriction_of_constant(self):
        # Full weighting sums to 4: restriction of c gives 4c (the NPB
        # coarse-grid scaling convention).
        out = rprj3(np.full((8, 8, 8), 1.0))
        assert np.allclose(out, 4.0)

    def test_interp_doubles_grid(self):
        assert interp(np.ones((4, 4, 4))).shape == (8, 8, 8)

    def test_interp_preserves_constants(self):
        assert np.allclose(interp(np.full((4, 4, 4), 2.5)), 2.5)

    def test_interp_exact_at_coarse_points(self):
        z = np.random.default_rng(4).normal(size=(4, 4, 4))
        fine = interp(z)
        assert np.allclose(fine[0::2, 0::2, 0::2], z)

    def test_odd_grid_rejected(self):
        with pytest.raises(ValueError):
            rprj3(np.ones((7, 7, 7)))


class TestRHS:
    def test_twenty_charges(self):
        v = build_rhs(16)
        assert np.sum(v == 1.0) == 10
        assert np.sum(v == -1.0) == 10
        assert np.sum(v != 0.0) == 20

    def test_deterministic(self):
        assert np.array_equal(build_rhs(8), build_rhs(8))


class TestSolve:
    def test_residual_decreases_monotonically(self):
        v = build_rhs(16)
        _, norms = mg_solve(v, 4)
        assert all(b < a for a, b in zip(norms, norms[1:]))

    def test_class_s_verifies(self):
        result = run_mg("S")
        assert result.verified
        assert result.details["reduction"] > 10.0

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            mg_solve(np.zeros((8, 8, 8)), 0)
