"""The suite registry and full class-S run."""

import pytest

from repro.npb.params import ALL_BENCHMARKS
from repro.npb.suite import RUNNERS, run_benchmark, run_suite


def test_registry_covers_all_eight():
    assert set(RUNNERS) == set(ALL_BENCHMARKS)
    assert len(RUNNERS) == 8


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError, match="mg"):
        run_benchmark("hpl", "S")


def test_case_insensitive_lookup():
    assert run_benchmark("EP", "S").verified


@pytest.mark.slow
def test_full_class_s_suite_verifies():
    results = run_suite("S")
    assert len(results) == 8
    for result in results:
        assert result.verified, f"{result.name} failed verification"
