"""Workload signatures: Table 1 character and structural expectations."""

import pytest

from repro.npb.params import ALL_BENCHMARKS
from repro.npb.signatures import signature_for


class TestCharacter:
    """The signature classifier must agree with the paper's Table 1."""

    def test_is_latency_bound(self):
        assert signature_for("is", "C").memory_character() == "latency-bound"

    def test_ep_compute_bound(self):
        assert signature_for("ep", "C").memory_character() == "compute-bound"

    def test_mg_not_compute_bound(self):
        assert signature_for("mg", "C").memory_character() != "compute-bound"

    def test_sp_more_traffic_than_bt(self):
        # Table 1: SP has the highest stall rates of the three, BT the lowest.
        assert (
            signature_for("sp", "C").dram_bytes_per_op
            > signature_for("lu", "C").dram_bytes_per_op
            > signature_for("bt", "C").dram_bytes_per_op
        )

    def test_only_cg_has_the_gather_pathology(self):
        for kernel in ALL_BENCHMARKS:
            sig = signature_for(kernel, "C")
            assert (sig.gather_pathology > 0) == (kernel == "cg")

    def test_only_ft_has_alltoall(self):
        for kernel in ALL_BENCHMARKS:
            sig = signature_for(kernel, "C")
            assert (sig.comm.alltoall_bytes > 0) == (kernel == "ft")

    def test_lu_has_most_barriers(self):
        # Wavefront sweeps synchronise per hyperplane.
        lu = signature_for("lu", "C").comm.barriers_per_mop
        for other in ("bt", "sp", "ep"):
            assert lu > signature_for(other, "C").comm.barriers_per_mop


class TestStructure:
    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
    @pytest.mark.parametrize("npb_class", ["S", "W", "A", "B", "C"])
    def test_all_signatures_build(self, kernel, npb_class):
        sig = signature_for(kernel, npb_class)
        assert sig.total_mops > 0
        assert sig.npb_class == npb_class

    def test_cached(self):
        assert signature_for("is", "C") is signature_for("is", "C")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="cg"):
            signature_for("nonesuch", "C")

    def test_class_c_bigger_than_class_s(self):
        for kernel in ALL_BENCHMARKS:
            assert (
                signature_for(kernel, "C").total_mops
                > signature_for(kernel, "S").total_mops
            )

    def test_is_random_target_is_histogram(self):
        sig = signature_for("is", "C")
        assert sig.random_target_bytes == pytest.approx(4 * 2**23)

    def test_cg_random_target_is_x_vector(self):
        sig = signature_for("cg", "C")
        assert sig.random_target_bytes == pytest.approx(8 * 150000)
        assert sig.gather_mlp_factor < 1.0  # dependency-chained gathers
