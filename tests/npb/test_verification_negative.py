"""Failure injection: the verifiers must *reject* wrong computations.

A verification layer that never fails is decoration.  These tests corrupt
results and data paths and check that every acceptance check actually
trips.
"""

import numpy as np
import pytest

from repro.npb.common import NPBClass
from repro.npb import ep as ep_mod
from repro.npb.is_ import _full_verify, generate_keys, rank_keys
from repro.npb.mg import A_WEIGHTS, build_rhs, mg_solve, resid
from repro.npb.params import cg_params
from repro.npb.cg import make_matrix, power_method


class TestISRejectsCorruption:
    def test_unsorted_output_rejected(self):
        keys = generate_keys(1000, 64)
        wrong = np.sort(keys)[::-1].copy()
        assert not _full_verify(keys, wrong)

    def test_non_permutation_rejected(self):
        keys = generate_keys(1000, 64)
        wrong = np.sort(keys)
        wrong[0] = wrong[-1]  # duplicate one key: multiset differs
        assert not _full_verify(keys, wrong)

    def test_correct_sort_accepted(self):
        keys = generate_keys(1000, 64)
        assert _full_verify(keys, np.sort(keys))


class TestEPRejectsCorruption:
    def test_wrong_sums_fail_golden_check(self):
        counts = np.array([10, 8, 6, 4, 2, 1, 0, 0, 0, 0])
        n = int(counts.sum() / (np.pi / 4))
        ok = ep_mod._verify(NPBClass.S, -3247.83, -6958.40, counts, n)
        # Close to golden but not within 1e-9 relative: must fail.
        assert not ok

    def test_bad_acceptance_rate_fails(self):
        counts = np.zeros(10, dtype=np.int64)
        counts[0] = 100
        assert not ep_mod._verify(NPBClass.C, 0.0, 0.0, counts, 100000)

    def test_nonmonotone_annuli_fail(self):
        counts = np.array([5, 50, 5, 3, 2, 1, 0, 0, 0, 0], dtype=np.int64)
        n = int(counts.sum() / (np.pi / 4))
        assert not ep_mod._verify(NPBClass.C, 0.0, 0.0, counts, n)


class TestCGRejectsCorruption:
    def test_perturbed_matrix_changes_zeta(self):
        params = cg_params(NPBClass.S)
        a, _ = make_matrix(params)
        zeta_good, _ = power_method(a, params.shift, 5)
        a_bad = a.copy()
        a_bad[0, 0] *= 1.01
        zeta_bad, _ = power_method(a_bad, params.shift, 5)
        assert abs(zeta_good - zeta_bad) > 1e-10  # the check would trip


class TestMGDetectsBrokenOperator:
    def test_divergent_iteration_detected(self):
        # A "smoother" with the wrong sign diverges; the monotone-decrease
        # check in run_mg exists exactly for this.  Emulate by checking
        # the norms of an intentionally wrong update sequence.
        v = build_rhs(16)
        u = np.zeros_like(v)
        r0 = float(np.sqrt((resid(u, v) ** 2).mean()))
        u_bad = u - 10.0 * v  # a step in a wrong direction and size
        r1 = float(np.sqrt((resid(u_bad, v) ** 2).mean()))
        assert r1 > r0  # the verifier's condition would fail

    def test_weights_still_sum_to_zero(self):
        # Guard against accidental edits to the stencil constants.
        assert A_WEIGHTS[0] + 6 * A_WEIGHTS[1] + 12 * A_WEIGHTS[2] + 8 * A_WEIGHTS[3] == pytest.approx(0.0)

    def test_solver_actually_depends_on_rhs(self):
        _, n1 = mg_solve(build_rhs(16, seed=314159265), 2)
        _, n2 = mg_solve(build_rhs(16, seed=271828183), 2)
        assert n1 != n2
