"""CG: makea fidelity (official zeta!), CG iteration, power method."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.npb.cg import conj_grad, make_matrix, power_method, run_cg
from repro.npb.common import NPBClass
from repro.npb.params import cg_params


@pytest.fixture(scope="module")
def matrix_s():
    return make_matrix(cg_params(NPBClass.S))[0]


class TestMakea:
    def test_shape_and_nnz(self, matrix_s):
        assert matrix_s.shape == (1400, 1400)
        # ~ n (nonzer+1)^2 * dedup factor.
        assert 40_000 < matrix_s.nnz < 120_000

    def test_symmetric(self, matrix_s):
        diff = (matrix_s - matrix_s.T).tocoo()
        assert np.abs(diff.data).max() < 1e-12 if diff.nnz else True

    def test_diagonal_dominant_negative_shift(self, matrix_s):
        # a(i,i) gets rcond - shift = 0.1 - 10 added: strongly negative
        # diagonal, which is what makes A - shift*I SPD-like for the
        # inverse power method.
        diag = matrix_s.diagonal()
        assert np.all(diag < 0)

    def test_deterministic(self):
        a1, _ = make_matrix(cg_params(NPBClass.S))
        a2, _ = make_matrix(cg_params(NPBClass.S))
        assert (a1 != a2).nnz == 0


class TestConjGrad:
    def test_solves_spd_system(self):
        rng = np.random.default_rng(5)
        m = rng.normal(size=(50, 50))
        a = sp.csr_matrix(m @ m.T + 50 * np.eye(50))
        x = rng.normal(size=50)
        z, rnorm = conj_grad(a, x, inner_iterations=50)
        assert np.allclose(a @ z, x, atol=1e-6)
        assert rnorm < 1e-6

    def test_residual_norm_definition(self, matrix_s):
        x = np.ones(1400)
        z, rnorm = conj_grad(matrix_s, x, inner_iterations=5)
        assert rnorm == pytest.approx(np.linalg.norm(x - matrix_s @ z))


class TestPowerMethod:
    def test_diagonal_matrix_known_eigenvalue(self):
        # For A = diag(d), the power iteration converges to the dominant
        # |1/d|; zeta = shift + 1/(x.z) with z = A^-1 x.
        d = np.array([-2.0, -4.0, -8.0])
        a = sp.csr_matrix(np.diag(d))
        zeta, _ = power_method(a, shift=10.0, niter=50, inner_iterations=30)
        # x converges to the eigenvector of min |d| (=-2): zeta -> 10 - 2.
        assert zeta == pytest.approx(8.0, abs=1e-6)


class TestRunCG:
    def test_class_s_matches_official_zeta(self):
        result = run_cg("S")
        assert result.verified
        assert result.details["zeta"] == pytest.approx(8.5971775078648, abs=1e-10)

    @pytest.mark.slow
    def test_class_w_matches_official_zeta(self):
        result = run_cg("W")
        assert result.verified
        assert result.details["zeta"] == pytest.approx(10.362595087124, abs=1e-10)


class TestBatchedRandlc:
    def test_stream_matches_scalar_reference(self):
        from repro.npb.cg import _BatchedRandlc, _ScalarRandlc

        scalar, batched = _ScalarRandlc(), _BatchedRandlc()
        # Mixed next()/draw() patterns, including a draw larger than one
        # refill block, must consume the identical stream.
        for k in (1, 1, 7, 1500, 2, 1024, 3, 2500):
            assert np.array_equal(scalar.draw(k), batched.draw(k))
            assert scalar.x == batched.x
        for _ in range(100):
            assert scalar.next() == batched.next()
        assert scalar.x == batched.x

    def test_reseeding_from_x_continues_stream(self):
        from repro.npb.cg import _BatchedRandlc

        a = _BatchedRandlc()
        a.draw(777)  # leave lookahead in the buffer
        b = _BatchedRandlc(a.x)
        assert np.array_equal(a.draw(50), b.draw(50))


class TestMatrixCache:
    def test_hit_returns_same_matrix_and_equivalent_stream(self):
        from repro.npb.cg import clear_matrix_cache, make_matrix

        clear_matrix_cache()
        a1, rng1 = make_matrix(cg_params(NPBClass.S))
        a2, rng2 = make_matrix(cg_params(NPBClass.S))
        assert a1 is a2  # shared read-only artifact
        assert np.array_equal(rng1.draw(64), rng2.draw(64))

    def test_clear_evicts(self):
        from repro.npb.cg import clear_matrix_cache, make_matrix

        clear_matrix_cache()
        a1, _ = make_matrix(cg_params(NPBClass.S))
        clear_matrix_cache()
        a2, _ = make_matrix(cg_params(NPBClass.S))
        assert a1 is not a2
        assert (a1 != a2).nnz == 0
