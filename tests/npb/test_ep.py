"""EP: official verification values and statistical invariants."""

import numpy as np
import pytest

from repro.npb.ep import N_ANNULI, ep_kernel, run_ep


class TestEPKernel:
    def test_class_s_matches_official_npb_constants(self):
        # The strongest validation in the suite: bit-faithful randlc +
        # polar method reproduce NPB's published class S sums.
        sx, sy, _ = ep_kernel(2**24)
        assert sx == pytest.approx(-3.247834652034740e3, rel=1e-10)
        assert sy == pytest.approx(-6.958407078382297e3, rel=1e-10)

    def test_batch_size_does_not_change_result(self):
        a = ep_kernel(2**18, batch=2**18)
        b = ep_kernel(2**18, batch=1009)
        assert a[0] == pytest.approx(b[0], rel=1e-12)
        assert a[1] == pytest.approx(b[1], rel=1e-12)
        assert np.array_equal(a[2], b[2])

    def test_acceptance_rate_is_pi_over_four(self):
        _, _, counts = ep_kernel(2**20)
        assert counts.sum() / 2**20 == pytest.approx(np.pi / 4, abs=0.002)

    def test_annulus_counts_decrease(self):
        _, _, counts = ep_kernel(2**20)
        nonzero = counts[counts > 0]
        assert np.all(np.diff(nonzero) <= 0)

    def test_counts_shape(self):
        _, _, counts = ep_kernel(1000)
        assert counts.shape == (N_ANNULI,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ep_kernel(0)


class TestRunEP:
    def test_class_s_verifies(self):
        result = run_ep("S")
        assert result.verified
        assert result.name == "ep"
        assert result.details["acceptance_rate"] == pytest.approx(np.pi / 4, abs=0.01)

    def test_mops_accounting(self):
        result = run_ep("S")
        assert result.total_mops == pytest.approx(2**25 / 1e6)
        assert result.mops_per_s > 0
