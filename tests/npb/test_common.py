"""randlc generator: exactness, jump-ahead, vectorised equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.npb.common import (
    DEFAULT_MULTIPLIER,
    NPBClass,
    Randlc,
    Timer,
    randlc_jump_multiplier,
)

MASK = (1 << 46) - 1


def scalar_reference(seed: int, n: int) -> list[float]:
    """Independent straight-line reference implementation."""
    x = seed
    out = []
    for _ in range(n):
        x = (DEFAULT_MULTIPLIER * x) & MASK
        out.append(x / float(1 << 46))
    return out


class TestRandlc:
    def test_scalar_next_matches_reference(self):
        rng = Randlc()
        assert [rng.next() for _ in range(100)] == scalar_reference(314159265, 100)

    def test_vectorised_generate_matches_reference(self):
        rng = Randlc()
        got = rng.generate(10_000, block=64)
        assert np.allclose(got, scalar_reference(314159265, 10_000), rtol=0, atol=0)

    def test_generate_then_next_continues_stream(self):
        a = Randlc()
        b = Randlc()
        a.generate(777)
        ref = scalar_reference(314159265, 778)
        assert a.next() == ref[777]
        del b

    def test_block_size_does_not_change_output(self):
        outs = [Randlc().generate(5000, block=b) for b in (1, 7, 512, 4096, 8192)]
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)

    def test_skip_equals_discard(self):
        a = Randlc()
        b = Randlc()
        a.skip(12345)
        b.generate(12345)
        assert a.state == b.state

    def test_values_in_open_unit_interval(self):
        u = Randlc().generate(100_000)
        assert np.all(u > 0.0)
        assert np.all(u < 1.0)

    def test_roughly_uniform(self):
        u = Randlc().generate(200_000)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.005

    def test_zero_count(self):
        assert Randlc().generate(0).shape == (0,)

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            Randlc(seed=0)
        with pytest.raises(ValueError):
            Randlc(seed=1 << 46)


class TestJumpMultiplier:
    def test_identity(self):
        assert randlc_jump_multiplier(DEFAULT_MULTIPLIER, 0) == 1

    def test_one_step(self):
        assert randlc_jump_multiplier(DEFAULT_MULTIPLIER, 1) == DEFAULT_MULTIPLIER & MASK

    @given(i=st.integers(0, 10_000), j=st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_composition(self, i, j):
        a = DEFAULT_MULTIPLIER
        combined = randlc_jump_multiplier(a, i + j)
        split = (
            randlc_jump_multiplier(a, i) * randlc_jump_multiplier(a, j)
        ) & MASK
        assert combined == split

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            randlc_jump_multiplier(DEFAULT_MULTIPLIER, -1)


class TestNPBClass:
    def test_ordering(self):
        assert NPBClass.S < NPBClass.W < NPBClass.A < NPBClass.B < NPBClass.C

    def test_rank(self):
        assert NPBClass.C.rank == 4


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed_s >= 0.0
