"""HPL extension: blocked LU correctness and the official residual check."""

import numpy as np
import pytest

from repro.extensions.hpl import hpl_signature, lu_factor_blocked, run_hpl_host


class TestBlockedLU:
    def test_reconstructs_pa_equals_lu(self):
        rng = np.random.default_rng(12)
        n = 64
        a0 = rng.normal(size=(n, n))
        a = a0.copy()
        piv = lu_factor_blocked(a, block=16)
        l = np.tril(a, -1) + np.eye(n)
        u = np.triu(a)
        assert np.allclose(l @ u, a0[piv], atol=1e-10)

    def test_block_size_does_not_change_factorisation(self):
        rng = np.random.default_rng(13)
        a0 = rng.normal(size=(48, 48))
        outs = []
        for block in (1, 8, 48, 64):
            a = a0.copy()
            lu_factor_blocked(a, block)
            outs.append(a)
        for other in outs[1:]:
            assert np.allclose(outs[0], other, atol=1e-11)

    def test_singular_matrix_detected(self):
        with pytest.raises(ZeroDivisionError):
            lu_factor_blocked(np.zeros((8, 8)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lu_factor_blocked(np.zeros((4, 6)))


class TestRunHPL:
    def test_residual_passes_official_threshold(self):
        result = run_hpl_host(n=192)
        assert result.verified
        assert result.residual < 16.0
        assert result.gflops > 0

    def test_flop_accounting(self):
        r = run_hpl_host(n=128)
        # 2/3 n^3 dominates.
        assert r.gflops * r.time_s * 1e9 == pytest.approx(
            (2 / 3) * 128**3 + 2 * 128**2
        )

    def test_tiny_n_rejected(self):
        with pytest.raises(ValueError):
            run_hpl_host(n=4)


class TestHPLSignature:
    def test_compute_bound_character(self):
        sig = hpl_signature(20_000)
        assert sig.memory_character() == "compute-bound"
        assert sig.vec_fraction > 0.9

    def test_models_on_all_hpc_machines(self, model):
        from repro.compilers.gcc import default_compiler_for, get_compiler
        from repro.machines.catalog import get_machine

        for name in ("sg2044", "sg2042", "epyc7742"):
            m = get_machine(name)
            pred = model.predict(
                m, hpl_signature(20_000), get_compiler(default_compiler_for(name)), m.n_cores
            )
            assert pred.mops > 0

    def test_wide_vectors_win_hpl(self, model):
        # The paper's implicit expectation: HPL favours AVX-512 et al.
        from repro.compilers.gcc import get_compiler
        from repro.machines.catalog import get_machine

        sig = hpl_signature(20_000)
        sg = model.predict(get_machine("sg2044"), sig, get_compiler("gcc-15.2"), 64)
        epyc = model.predict(get_machine("epyc7742"), sig, get_compiler("gcc-11.2"), 64)
        assert epyc.mops > 1.5 * sg.mops
