"""HPCG extension: 27-point operator, SymGS-preconditioned CG."""

import numpy as np
import pytest

from repro.extensions.hpcg import build_poisson27, hpcg_signature, run_hpcg_host


class TestOperator:
    def test_symmetric(self):
        a = build_poisson27(5)
        diff = (a - a.T).tocoo()
        assert diff.nnz == 0 or np.abs(diff.data).max() == 0

    def test_interior_row_sums_to_zero(self):
        # 26 on the diagonal, -1 on 26 neighbours.
        n = 5
        a = build_poisson27(n)
        centre = (n // 2) * n * n + (n // 2) * n + n // 2
        assert a[centre].sum() == pytest.approx(0.0)

    def test_corner_has_seven_point_neighbourhood(self):
        a = build_poisson27(4)
        assert a[0].nnz == 8  # corner: itself + 7 neighbours

    def test_positive_definite(self):
        a = build_poisson27(4).toarray()
        eig = np.linalg.eigvalsh(a)
        assert eig.min() > 0

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            build_poisson27(1)


class TestRunHPCG:
    def test_converges_and_verifies(self):
        result = run_hpcg_host(grid=8, iterations=20)
        assert result.verified
        assert result.final_relative_residual < 1e-6
        assert result.symmetry_error < 1e-10

    def test_more_iterations_tighter_residual(self):
        short = run_hpcg_host(grid=8, iterations=3)
        long = run_hpcg_host(grid=8, iterations=15)
        assert long.final_relative_residual < short.final_relative_residual


class TestHPCGSignature:
    def test_memory_bound_character(self):
        sig = hpcg_signature()
        assert sig.memory_character() in ("bandwidth-bound", "mixed")
        assert sig.dram_bytes_per_op >= 3.0

    def test_sg2044_closes_gap_on_hpcg_not_hpl(self, model):
        # The interesting Section 7 prediction: the SG2044/EPYC ratio is
        # far better on HPCG than on HPL.
        from repro.compilers.gcc import get_compiler
        from repro.extensions.hpl import hpl_signature
        from repro.machines.catalog import get_machine

        sg, epyc = get_machine("sg2044"), get_machine("epyc7742")
        gcc15, gcc11 = get_compiler("gcc-15.2"), get_compiler("gcc-11.2")
        hpl_ratio = (
            model.predict(sg, hpl_signature(20_000), gcc15, 64).mops
            / model.predict(epyc, hpl_signature(20_000), gcc11, 64).mops
        )
        hpcg_ratio = (
            model.predict(sg, hpcg_signature(), gcc15, 64).mops
            / model.predict(epyc, hpcg_signature(), gcc11, 64).mops
        )
        assert hpcg_ratio > 1.5 * hpl_ratio
