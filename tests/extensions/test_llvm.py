"""The LLVM-vs-GCC future-work study."""

from repro.extensions.llvm_study import llvm_vs_gcc


def test_five_kernels_compared():
    rows = llvm_vs_gcc()
    assert [r.kernel for r in rows] == ["is", "mg", "ep", "cg", "ft"]


def test_llvm_within_sane_band_of_gcc():
    for row in llvm_vs_gcc():
        assert 0.8 < row.llvm_over_gcc < 1.25


def test_multicore_variant_runs():
    rows = llvm_vs_gcc(n_threads=64)
    assert all(r.gcc_mops > 0 and r.llvm_mops > 0 for r in rows)
