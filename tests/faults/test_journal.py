"""SweepJournal: exact round-trips, crash tolerance, checkpoint/resume."""

import json
import threading

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.perfmodel import DNRError
from repro.core.sweep import SweepEngine, expand_grid
from repro.faults import SweepJournal

GRID = dict(machines=("sg2044", "sg2042"), kernels=("is", "ep", "mg"))


def _grid():
    return expand_grid(GRID["machines"], GRID["kernels"], thread_counts=(1, 8))


class CountingRunner(ExperimentRunner):
    """Counts family executions so resume tests can prove work was skipped."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0
        self._count_lock = threading.Lock()

    def run_many(self, configs):
        with self._count_lock:
            self.calls += 1
        return super().run_many(configs)


class TestRoundTrip:
    def test_results_bit_identical_through_disk(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.json")
        engine = SweepEngine(journal=journal)
        grid = _grid()
        originals = engine.run_many(grid)

        reloaded = SweepJournal(tmp_path / "j.json").results()
        for config, original in zip(grid, originals):
            assert reloaded[engine.cache_key(config)] == original

    def test_dnr_round_trips(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.json")
        engine = SweepEngine(journal=journal)
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        assert engine.run_many([config], on_dnr="none") == [None]

        reloaded = SweepJournal(tmp_path / "j.json").results()
        value = reloaded[engine.cache_key(config)]
        assert isinstance(value, DNRError)

    def test_journal_snapshot_is_stable_json(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.json")
        SweepEngine(journal=journal).run_many(_grid())
        data = json.loads((tmp_path / "j.json").read_text())
        assert data["version"] == 1
        assert len(data["entries"]) == len(_grid())


class TestCrashTolerance:
    def test_missing_file_is_empty(self, tmp_path):
        assert len(SweepJournal(tmp_path / "nope.json")) == 0

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text('{"version": 1, "entries": {"torn')
        assert len(SweepJournal(path)) == 0

    def test_version_mismatch_ignored(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text('{"version": 99, "entries": {"k": {}}}')
        assert len(SweepJournal(path)) == 0

    def test_one_malformed_entry_does_not_poison_the_rest(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.json")
        engine = SweepEngine(journal=journal)
        grid = _grid()
        engine.run_many(grid)
        data = json.loads((tmp_path / "j.json").read_text())
        first_key = sorted(data["entries"])[0]
        data["entries"][first_key] = {"result": {"garbage": True}}
        (tmp_path / "j.json").write_text(json.dumps(data))
        assert len(SweepJournal(tmp_path / "j.json").results()) == len(grid) - 1


class TestResume:
    def test_interrupted_run_resumes_from_completed_families(self, tmp_path):
        grid = _grid()
        # "Interrupted" run: only the first two families complete.
        partial = SweepJournal(tmp_path / "j.json")
        first = CountingRunner()
        SweepEngine(first, journal=partial).run_many(grid[:4])
        assert first.calls == 2

        # Resumed run over the full grid: only the remaining families execute.
        resumed_runner = CountingRunner()
        engine = SweepEngine(
            resumed_runner, journal=SweepJournal(tmp_path / "j.json")
        )
        resumed = engine.run_many(grid)
        assert resumed_runner.calls == 4  # 6 families total, 2 journaled

        # Bit-identical to a cold run with no journal anywhere.
        cold = SweepEngine().run_many(grid)
        assert resumed == cold

    def test_stale_journal_is_inert(self, tmp_path):
        """Entries from different runner settings must never be served."""
        grid = _grid()
        noisy = SweepJournal(tmp_path / "j.json")
        SweepEngine(ExperimentRunner(seed=1), journal=noisy).run_many(grid)

        other_runner = CountingRunner()  # default seed != 1
        engine = SweepEngine(other_runner, journal=SweepJournal(tmp_path / "j.json"))
        engine.run_many(grid)
        assert other_runner.calls == 6  # nothing matched; everything ran

    def test_detach_stops_recording(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.json")
        engine = SweepEngine(journal=journal)
        engine.detach_journal()
        engine.run_many(_grid())
        assert len(SweepJournal(tmp_path / "j.json")) == 0


class TestResumedArtifactsByteIdentical:
    def test_interrupted_table_run_resumes_byte_identical(self, tmp_path):
        """The acceptance criterion: interrupt + resume == uninterrupted."""
        from repro.cli import main
        from repro.core.sweep import clear_caches

        out_a = tmp_path / "uninterrupted"
        out_b = tmp_path / "resumed"
        journal_path = tmp_path / "journal.json"

        clear_caches()
        assert main(["export", str(out_a), "--jobs", "2"]) == 0

        # "Interrupt": warm only part of the grid into the journal, cold
        # caches again, then resume the full export against the journal.
        clear_caches()
        assert main(["table", "3", "--journal", str(journal_path)]) == 0
        assert len(SweepJournal(journal_path)) > 0
        clear_caches()
        assert (
            main(["export", str(out_b), "--jobs", "2", "--journal", str(journal_path)])
            == 0
        )
        clear_caches()

        for artifact in sorted(out_a.iterdir()):
            assert (out_b / artifact.name).read_bytes() == artifact.read_bytes()
