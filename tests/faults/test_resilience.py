"""Resilient sweep execution: the double-execution fix, retries, timeouts.

The headline regression: a group that raises used to trip the executor's
"thread-starved pool" fallback, which serially re-executed *every*
group -- double-counting ``sweep.groups_executed``/``configs_executed``
and re-running work whose results were already stored.  These tests pin
the fixed contract: only pool *startup* failures fall back, only
not-yet-executed groups run serially, and an in-group failure propagates
exactly once.
"""

import threading

import pytest

from repro import faults, obs
from repro.core.experiment import ExperimentRunner
from repro.core.sweep import SweepEngine, expand_grid
from repro.faults import FaultPlan, GroupTimeoutError, TransientError

KERNELS = ("is", "ep", "mg", "cg")


def _grid():
    # 4 families x 2 thread counts = 8 configs on one machine.
    return expand_grid(("sg2044",), KERNELS, thread_counts=(1, 4))


class PoisonRunner(ExperimentRunner):
    """Counts family executions; raises for one kernel until ``fixed``."""

    def __init__(self, poison_kernel=None, error=None) -> None:
        super().__init__()
        self.poison_kernel = poison_kernel
        self.error = error or RuntimeError("model blew up")
        self.fixed = False
        self.family_calls: dict[str, int] = {}
        self._count_lock = threading.Lock()

    def run_many(self, configs):
        kernel = configs[0].kernel
        with self._count_lock:
            self.family_calls[kernel] = self.family_calls.get(kernel, 0) + 1
        if kernel == self.poison_kernel and not self.fixed:
            raise self.error
        return super().run_many(configs)


class TestDoubleExecutionRegression:
    """The ISSUE's regression: in-group failure must not re-run the sweep."""

    def test_group_failure_does_not_serially_reexecute(self):
        runner = PoisonRunner(poison_kernel="mg")
        engine = SweepEngine(runner, jobs=4)
        rec = obs.install()
        with pytest.raises(RuntimeError, match="model blew up"):
            engine.run_many(_grid())
        obs.disable()

        # Every family -- including the poisoned one -- was attempted
        # exactly once.  The buggy fallback ran the survivors twice.
        assert runner.family_calls == {k: 1 for k in KERNELS}
        counters = rec.counters_snapshot()
        assert counters["sweep.groups_executed"] == 3
        assert counters["sweep.configs_executed"] == 6
        assert rec.quiescent()

    def test_survivor_results_are_cached_despite_the_failure(self):
        runner = PoisonRunner(poison_kernel="mg")
        engine = SweepEngine(runner, jobs=4)
        grid = _grid()
        with pytest.raises(RuntimeError):
            engine.run_many(grid)
        survivors = [c for c in grid if c.kernel != "mg"]
        engine.run_many(survivors)  # pure cache hits: no new executions
        assert runner.family_calls == {k: 1 for k in KERNELS}

    def test_failed_family_is_reclaimable_after_a_fix(self):
        runner = PoisonRunner(poison_kernel="mg")
        engine = SweepEngine(runner, jobs=4)
        grid = _grid()
        with pytest.raises(RuntimeError):
            engine.run_many(grid)
        runner.fixed = True
        results = engine.run_many(grid)
        assert all(r is not None for r in results)
        # Only the poisoned family re-ran; the survivors stayed cached.
        assert runner.family_calls == {"is": 1, "ep": 1, "cg": 1, "mg": 2}

    def test_serial_failure_abandons_unexecuted_group_spans(self):
        runner = PoisonRunner(poison_kernel="is")  # first family in order
        engine = SweepEngine(runner, jobs=1)
        rec = obs.install()
        with pytest.raises(RuntimeError):
            engine.run_many(_grid())
        obs.disable()

        # Only the attempted group appears; the three groups whose spans
        # were opened but never executed are pruned from the tree.
        run_many = rec.span_tree()["children"]
        assert [n["name"] for n in run_many] == ["run_many"]
        groups = [n["name"] for n in run_many[0]["children"]]
        assert groups == ["group[is/C]"]
        assert rec.quiescent()


class TestPoolStartupFallback:
    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        runner = PoisonRunner()
        engine = SweepEngine(runner, jobs=4)

        def starved(workers):
            raise RuntimeError("can't start new thread")

        monkeypatch.setattr(engine, "_make_pool", starved)
        rec = obs.install()
        results = engine.run_many(_grid())
        obs.disable()

        assert all(r is not None for r in results)
        assert runner.family_calls == {k: 1 for k in KERNELS}
        counters = rec.counters_snapshot()
        assert counters["sweep.groups_executed"] == 4
        assert counters["sweep.configs_executed"] == 8
        assert rec.quiescent()

    def test_partial_submit_failure_runs_remainder_serially(self, monkeypatch):
        class FlakyPool:
            """Accepts two submissions, then the workers are exhausted."""

            def __init__(self, inner):
                self.inner = inner
                self.accepted = 0

            def submit(self, fn, *args):
                if self.accepted >= 2:
                    raise RuntimeError("can't start new thread")
                self.accepted += 1
                return self.inner.submit(fn, *args)

            def shutdown(self, wait=True):
                self.inner.shutdown(wait=wait)

        runner = PoisonRunner()
        engine = SweepEngine(runner, jobs=4)
        make_pool = engine._make_pool
        monkeypatch.setattr(
            engine, "_make_pool", lambda workers: FlakyPool(make_pool(workers))
        )
        rec = obs.install()
        results = engine.run_many(_grid())
        obs.disable()

        assert all(r is not None for r in results)
        # Two families ran pooled, two serially -- each exactly once.
        assert runner.family_calls == {k: 1 for k in KERNELS}
        assert rec.counters_snapshot()["sweep.groups_executed"] == 4
        assert rec.quiescent()


class TestRetriesAndTimeouts:
    def test_transient_failures_are_retried_with_backoff(self):
        runner = PoisonRunner()
        engine = SweepEngine(runner, jobs=1, retries=2, backoff_s=0.01)
        delays = []
        engine._sleep = delays.append
        faults.install(
            FaultPlan(seed=1, transient_rate=1.0, max_failures=2)
        )
        rec = obs.install()
        results = engine.run_many(_grid())
        obs.disable()

        assert all(r is not None for r in results)
        assert runner.family_calls == {k: 1 for k in KERNELS}
        counters = rec.counters_snapshot()
        assert counters["sweep.retries"] == 8  # 2 injected faults x 4 families
        assert counters["faults.transient"] == 8
        # Exponential backoff: 0.01 then 0.02, per family.
        assert sorted(delays) == [0.01] * 4 + [0.02] * 4

    def test_transient_failures_beyond_budget_propagate(self):
        runner = PoisonRunner()
        engine = SweepEngine(runner, jobs=1, retries=1, backoff_s=0.0)
        faults.install(FaultPlan(seed=1, transient_rate=1.0, max_failures=2))
        with pytest.raises(TransientError):
            engine.run_many(_grid())
        # The runner itself never ran: injection fires before execution.
        assert runner.family_calls == {}

    def test_runner_transient_errors_also_retry(self):
        runner = PoisonRunner(
            poison_kernel="ep", error=TransientError("flaky backend")
        )

        original = runner.run_many

        def heal_after_first(configs):
            try:
                return original(configs)
            except TransientError:
                runner.fixed = True
                raise

        runner.run_many = heal_after_first
        engine = SweepEngine(runner, jobs=1, retries=2, backoff_s=0.0)
        results = engine.run_many(_grid())
        assert all(r is not None for r in results)
        assert runner.family_calls["ep"] == 2  # failed once, retried once

    def test_slow_group_raises_group_timeout(self):
        release = threading.Event()

        class StallingRunner(ExperimentRunner):
            def run_many(self, configs):
                if configs[0].kernel == "is":
                    release.wait(timeout=5.0)
                return super().run_many(configs)

        engine = SweepEngine(StallingRunner(), jobs=2, group_timeout_s=0.05)
        try:
            with pytest.raises(GroupTimeoutError, match="group timeout"):
                engine.run_many(_grid())
        finally:
            release.set()
        # The timed-out family was not stored: a later attempt re-claims it.
        fresh = SweepEngine(ExperimentRunner(), jobs=1)
        assert all(r is not None for r in fresh.run_many(_grid()))


def _pruned(node):
    """Span tree minus injected ``fault[...]`` nodes, children sorted."""
    return {
        "name": node["name"],
        "count": node["count"],
        "children": sorted(
            (
                _pruned(child)
                for child in node["children"]
                if not child["name"].startswith("fault[")
            ),
            key=lambda n: n["name"],
        ),
    }


def _volatile(name):
    return name == "sweep.retries" or name.startswith("faults.")


class TestFaultConvergence:
    """The ISSUE's key invariant, as a property over fault rates."""

    @pytest.mark.parametrize("rate", [0.0, 0.1, 0.3])
    def test_sweep_converges_bit_identical_under_faults(self, runner, rate):
        grid = expand_grid(
            ("sg2044", "sg2042"), KERNELS, thread_counts=(1, 4, 16)
        )
        assert len(grid) == 24

        rec_clean = obs.install()
        clean = SweepEngine(runner, jobs=4).run_many(grid)
        obs.disable()

        faults.install(
            FaultPlan(
                seed=11,
                transient_rate=rate,
                slow_rate=rate / 2.0,
                slow_delay_s=0.5,
                sleep=lambda s: None,
            )
        )
        rec_faulted = obs.install()
        engine = SweepEngine(runner, jobs=4, retries=2, backoff_s=0.0)
        faulted = engine.run_many(grid)
        injected = faults.plan().stats()
        obs.disable()
        faults.disable()

        # Bit-identical results: every float compares exactly equal.
        assert faulted == clean
        if rate >= 0.3:
            assert sum(injected.values()) > 0  # the run was actually faulted

        # Non-volatile telemetry is identical; only the retry/injection
        # counters may differ between the two runs.
        clean_counters = rec_clean.counters_snapshot()
        faulted_counters = {
            k: v
            for k, v in rec_faulted.counters_snapshot().items()
            if not _volatile(k)
        }
        assert faulted_counters == clean_counters
        assert _pruned(rec_faulted.span_tree()) == _pruned(rec_clean.span_tree())
        assert rec_clean.quiescent() and rec_faulted.quiescent()
