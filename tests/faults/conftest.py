"""Every faults test starts and ends with injection and telemetry off."""

import pytest

from repro import faults, obs


@pytest.fixture(autouse=True)
def _clean_slots():
    faults.disable()
    obs.disable()
    yield
    faults.disable()
    obs.disable()
