"""FaultPlan: deterministic schedules, the slot, and the taxonomy."""

import pytest

from repro import faults, obs
from repro.core.perfmodel import DNRError
from repro.faults import (
    FaultPlan,
    GroupTimeoutError,
    InjectedIOError,
    InjectedTransientError,
    NullFaultPlan,
    TransientError,
    classify,
)


def _drive(plan, site, key, attempts):
    """Outcome sequence: 'ok' or the injected exception class name."""
    out = []
    for _ in range(attempts):
        try:
            plan.inject(site, key, kinds=("transient", "slow", "io"))
            out.append("ok")
        except InjectedTransientError:
            out.append("transient")
        except InjectedIOError:
            out.append("io")
    return out


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = _drive(FaultPlan(seed=5, transient_rate=0.5), "s", "k", 10)
        b = _drive(FaultPlan(seed=5, transient_rate=0.5), "s", "k", 10)
        assert a == b

    def test_different_seeds_differ(self):
        schedules = {
            tuple(_drive(FaultPlan(seed=s, transient_rate=0.5), "s", "k", 16))
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1)
        assert _drive(plan, "s", "k", 50) == ["ok"] * 50
        assert plan.stats() == {}

    def test_rate_one_fires_until_cap(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, max_failures=2)
        assert _drive(plan, "s", "k", 5) == ["transient", "transient", "ok", "ok", "ok"]

    def test_cap_is_per_key(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, max_failures=1)
        assert _drive(plan, "s", "a", 2) == ["transient", "ok"]
        assert _drive(plan, "s", "b", 2) == ["transient", "ok"]

    def test_io_kind_only_fires_at_io_probes(self):
        plan = FaultPlan(seed=1, io_rate=1.0, max_failures=10)
        # A probe that does not list "io" never raises it.
        plan.inject("s", "k", kinds=("transient", "slow"))
        with pytest.raises(InjectedIOError):
            plan.inject("s", "k", kinds=("io",))

    def test_slow_fault_calls_sleep_deterministically(self):
        delays = []
        plan = FaultPlan(
            seed=3, slow_rate=1.0, slow_delay_s=0.25, max_failures=2,
            sleep=delays.append,
        )
        for _ in range(5):
            plan.inject("s", "k")
        assert delays == [0.25, 0.25]  # capped at max_failures

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="transient_rate"):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError, match="max_failures"):
            FaultPlan(max_failures=-1)

    def test_injection_counters_and_spans(self):
        rec = obs.install()
        plan = FaultPlan(seed=1, transient_rate=1.0, max_failures=1)
        with pytest.raises(InjectedTransientError):
            plan.inject("s", "k")
        counters = rec.counters_snapshot()
        assert counters["faults.injected"] == 1
        assert counters["faults.transient"] == 1
        names = [c["name"] for c in rec.span_tree()["children"]]
        assert "fault[transient]" in names
        assert rec.quiescent()


class TestSlot:
    def test_default_is_null(self):
        assert isinstance(faults.plan(), NullFaultPlan)
        assert not faults.is_enabled()
        faults.inject("anything", "goes")  # no-op, no error

    def test_install_and_disable(self):
        plan = faults.install(FaultPlan(seed=2, transient_rate=1.0))
        assert faults.plan() is plan
        assert faults.is_enabled()
        with pytest.raises(InjectedTransientError):
            faults.inject("s", "k")
        faults.disable()
        assert not faults.is_enabled()
        faults.inject("s", "k")


class TestTaxonomy:
    def test_classify_buckets(self):
        assert classify(TransientError("x")) == "transient"
        assert classify(InjectedTransientError("x")) == "transient"
        assert classify(DNRError("no fit")) == "dnr"
        assert classify(GroupTimeoutError("late")) == "fatal"
        assert classify(RuntimeError("bug")) == "fatal"
        assert classify(InjectedIOError("disk")) == "fatal"

    def test_injected_io_is_an_oserror(self):
        # Real filesystem guards must see injected I/O faults.
        assert issubclass(InjectedIOError, OSError)
