"""write_text_atomic: torn writes are impossible, by test."""

import pytest

from repro import faults
from repro.faults import FaultPlan, InjectedIOError, write_text_atomic


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        path = tmp_path / "artifact.csv"
        assert write_text_atomic(path, "a,b\n1,2\n") == path
        assert path.read_text() == "a,b\n1,2\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "artifact.csv"
        path.write_text("old")
        write_text_atomic(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_residue_on_success(self, tmp_path):
        write_text_atomic(tmp_path / "a.csv", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.csv"]

    def test_injected_crash_preserves_old_content(self, tmp_path):
        """The headline property: a crash mid-write never truncates."""
        path = tmp_path / "table6.csv"
        write_text_atomic(path, "complete,old,table\n")
        faults.install(FaultPlan(seed=1, io_rate=1.0, max_failures=1))
        with pytest.raises(InjectedIOError):
            write_text_atomic(path, "half-written new conte")
        # Old artifact intact, no temporary residue.
        assert path.read_text() == "complete,old,table\n"
        assert [p.name for p in tmp_path.iterdir()] == ["table6.csv"]
        # The fault schedule is capped: the retried write succeeds.
        write_text_atomic(path, "complete,new,table\n")
        assert path.read_text() == "complete,new,table\n"

    def test_injected_crash_with_no_previous_file(self, tmp_path):
        path = tmp_path / "fresh.csv"
        faults.install(FaultPlan(seed=1, io_rate=1.0, max_failures=1))
        with pytest.raises(InjectedIOError):
            write_text_atomic(path, "data")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


class TestExportGoesThroughAtomicWrites:
    def test_export_survives_injected_io_crash(self, tmp_path):
        """An export interrupted mid-artifact leaves no torn CSVs behind."""
        from repro.harness.export import export_all

        baseline_dir = tmp_path / "clean"
        export_all(baseline_dir, tables=(2,), figures=())
        baseline = (baseline_dir / "table2.csv").read_bytes()

        out = tmp_path / "faulted"
        out.mkdir()
        stale = out / "table2.csv"
        stale.write_text("stale,but,complete\n")
        faults.install(FaultPlan(seed=1, io_rate=1.0, max_failures=1))
        with pytest.raises(InjectedIOError):
            export_all(out, tables=(2,), figures=())
        assert stale.read_text() == "stale,but,complete\n"
        assert not list(out.glob("*.tmp"))

        # Restarting the export (the crash is over) converges to the
        # uninterrupted bytes.
        faults.disable()
        export_all(out, tables=(2,), figures=())
        assert stale.read_bytes() == baseline

    def test_telemetry_report_written_atomically(self, tmp_path):
        from repro import obs
        from repro.obs.export import render_json, write_report

        rec = obs.install()
        obs.incr("x", 3)
        obs.disable()
        path = tmp_path / "report.json"
        write_report(path, rec)
        assert path.read_text() == render_json(rec)
        faults.install(FaultPlan(seed=1, io_rate=1.0, max_failures=1))
        with pytest.raises(InjectedIOError):
            write_report(path, rec)
        assert path.read_text() == render_json(rec)
