"""``repro bench`` end to end: real pytest subprocesses over a toy suite.

A two-suite toy bench directory (built in ``tmp_path``) stands in for
``benchmarks/``: same conftest wiring (fixtures imported from
``repro.bench.fixtures``), real subprocess runs, real artifact merges
and history appends.  A ``TOY_SLOW`` environment knob injects a
deliberate >=2x slowdown into one suite so the acceptance criteria are
exercised for real: slowdown -> exit 1, clean re-run -> exit 0.
"""

import os
from pathlib import Path

import pytest

import repro
from repro.bench.history import BenchHistory
from repro.bench.schema import load_artifact
from repro.cli import main

_CONFTEST = """\
from repro.bench.fixtures import (  # noqa: F401
    escalate_until,
    make_bench_artifact_fixture,
    time_best_of,
)

bench_artifact = make_bench_artifact_fixture()
"""

_BENCH_ALPHA = """\
import os


def _work():
    slow = 60 if os.environ.get("TOY_SLOW") else 1
    return sum(range(40_000 * slow))


def test_alpha_work(time_best_of, bench_artifact):
    work_s, total = time_best_of("alpha.work", _work, 5)
    assert total > 0
    bench_artifact("alpha.work", work_s=work_s, sums_per_s=1.0 / work_s)
"""

_BENCH_BETA = """\
def test_beta_work(time_best_of, bench_artifact):
    work_s, total = time_best_of("beta.work", lambda: sum(range(50_000)), 5)
    assert total > 0
    bench_artifact("beta.work", work_s=work_s)
"""


@pytest.fixture
def toy(tmp_path, monkeypatch):
    """A toy bench tree + CLI argument prefix aimed at it."""
    bench_dir = tmp_path / "toybench"
    bench_dir.mkdir()
    (bench_dir / "conftest.py").write_text(_CONFTEST)
    (bench_dir / "bench_alpha.py").write_text(_BENCH_ALPHA)
    (bench_dir / "bench_beta.py").write_text(_BENCH_BETA)
    # The subprocess must be able to import repro from anywhere.
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH", src if not existing else src + os.pathsep + existing
    )
    monkeypatch.delenv("TOY_SLOW", raising=False)
    monkeypatch.delenv("REPRO_BENCH_ARTIFACT", raising=False)
    args = [
        "bench",
        "--bench-dir", str(bench_dir),
        "--artifact", str(tmp_path / "bench_artifact.json"),
        "--history", str(tmp_path / "history"),
        "--no-fidelity",
    ]
    return {
        "args": args,
        "artifact": tmp_path / "bench_artifact.json",
        "history": BenchHistory(tmp_path / "history"),
        "bench_dir": bench_dir,
    }


class TestList:
    def test_lists_toy_suites(self, toy, capsys):
        assert main([*toy["args"], "--list"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out

    def test_empty_dir_errors(self, tmp_path, capsys):
        code = main(["bench", "--bench-dir", str(tmp_path), "--list"])
        assert code == 2
        assert "no bench suites" in capsys.readouterr().err


class TestRecord:
    def test_two_full_runs_accumulate_two_history_records(self, toy, capsys):
        """Acceptance: consecutive full runs accumulate, byte for byte."""
        assert main(toy["args"]) == 0
        assert main(toy["args"]) == 0
        assert len(toy["history"]) == 2
        records = toy["history"].records()
        labels = {e["label"] for e in records[0]["entries"]}
        assert labels == {"alpha.work", "beta.work"}
        assert "recorded 2 entries from 2 suite(s)" in capsys.readouterr().out
        # Each record round-trips bit-identically through the codec.
        from repro.bench.history import decode_record, encode_record

        for path in sorted((toy["history"].root).iterdir()):
            text = path.read_text()
            assert encode_record(decode_record(text)) == text

    def test_subset_run_preserves_other_suites_entries(self, toy):
        """Acceptance: the artifact-clobbering bug stays dead end to end."""
        assert main(toy["args"]) == 0
        before = load_artifact(toy["artifact"])
        beta_before = next(
            e for e in before["entries"] if e["label"] == "beta.work"
        )
        assert main([*toy["args"], "alpha"]) == 0
        after = load_artifact(toy["artifact"])
        by_label = {e["label"]: e for e in after["entries"]}
        assert set(by_label) == {"alpha.work", "beta.work"}
        assert by_label["beta.work"] == beta_before  # untouched
        assert after["run"]["suites"] == ["alpha"]
        assert len(toy["history"]) == 2

    def test_unknown_suite_exits_2(self, toy, capsys):
        assert main([*toy["args"], "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestCheck:
    def test_empty_history_seeds_then_slowdown_fails_then_clean_passes(
        self, toy, capsys, monkeypatch
    ):
        # 1. Empty history: pass and seed.
        assert main([*toy["args"], "--check"]) == 0
        out = capsys.readouterr().out
        assert "seeded" in out and "verdict: pass" in out
        assert len(toy["history"]) == 1

        # 2. Injected >=2x slowdown (60x here): loud non-zero exit, the
        #    bad run is NOT recorded as a baseline.
        monkeypatch.setenv("TOY_SLOW", "1")
        assert main([*toy["args"], "--check", "--rounds", "1"]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "verdict: REGRESSION" in out
        assert len(toy["history"]) == 1

        # 3. Clean re-run: exit 0, appended.
        monkeypatch.delenv("TOY_SLOW")
        assert main([*toy["args"], "--check"]) == 0
        assert "verdict: pass" in capsys.readouterr().out
        assert len(toy["history"]) == 2
