"""The noise-aware regression gate (``check_run``) with injected runs.

A fake ``run_fn`` stands in for the pytest subprocess, so these tests
exercise the gate's decision logic -- seeding, margins, escalation,
blessing, history hygiene -- deterministically and fast.
"""

import pytest

from repro.bench.history import BenchHistory
from repro.bench.runner import BenchError, check_run, discover_suites, record_run
from repro.bench.schema import load_artifact


def _meta(suites=("s",), labels=("s.work",)):
    return {
        "schema_version": 2,
        "git_sha": "f" * 40,
        "timestamp": "2026-08-09T00:00:00Z",
        "machine": {},
        "suites": sorted(suites),
        "labels_recorded": sorted(labels),
        "escalation_rounds": 0,
        "empty": False,
    }


def _run_fn(responses):
    """A fake runner yielding canned (entries, meta) per call, recording calls."""
    calls = []

    def run(suites):
        calls.append(suites)
        response = responses[min(len(calls), len(responses)) - 1]
        entries = [dict(e) for e in response]
        return entries, _meta()

    run.calls = calls
    return run


def _entry(work_s, label="s.work"):
    return {"label": label, "suite": "s", "work_s": work_s}


@pytest.fixture
def bench_dir(tmp_path):
    # A real suite file so escalation has something to re-run; the fake
    # run_fn never actually executes it.
    d = tmp_path / "benchmarks"
    d.mkdir()
    (d / "bench_s.py").write_text("def test_noop():\n    pass\n")
    return d


class TestCheckRun:
    def test_empty_history_passes_and_seeds(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        run = _run_fn([[_entry(1.0)]])
        deltas, escalations, code = check_run(
            bench_dir, history=history, fidelity=False, run_fn=run
        )
        assert code == 0
        assert escalations == 0
        assert [d.verdict for d in deltas] == ["seeded"]
        assert len(history) == 1  # the run became baseline #1

    def test_clean_rerun_passes_and_accumulates(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        for _ in range(2):
            _, _, code = check_run(
                bench_dir,
                history=history,
                fidelity=False,
                run_fn=_run_fn([[_entry(1.0)]]),
            )
            assert code == 0
        assert len(history) == 2

    def test_2x_slowdown_fails_and_is_not_recorded(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(1.0)]]),
        )
        run = _run_fn([[_entry(2.0)]])  # slow on every round
        deltas, escalations, code = check_run(
            bench_dir, history=history, fidelity=False, rounds=2, run_fn=run
        )
        assert code == 1
        assert escalations == 2  # it re-measured before believing it
        assert [d.verdict for d in deltas] == ["regression"]
        # A failed run must not poison the baselines.
        assert len(history) == 1

    def test_escalation_clears_transient_slowdown(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(1.0)]]),
        )
        # First measurement 3x slow (host-load epoch), re-measurement clean.
        run = _run_fn([[_entry(3.0)], [_entry(1.05)]])
        deltas, escalations, code = check_run(
            bench_dir, history=history, fidelity=False, rounds=2, run_fn=run
        )
        assert code == 0
        assert escalations == 1
        assert run.calls == [None, ["s"]]  # re-ran only the suspect suite
        assert [d.verdict for d in deltas] == ["ok"]
        assert len(history) == 2

    def test_fold_keeps_best_across_rounds(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(1.0)]]),
        )
        # Re-measurement is WORSE: the fold must keep the first (better)
        # observation, not regress the entry further.
        run = _run_fn([[_entry(3.0)], [_entry(5.0)], [_entry(5.0)]])
        deltas, _, code = check_run(
            bench_dir, history=history, fidelity=False, rounds=2, run_fn=run
        )
        assert code == 1
        assert deltas[0].observed == 3.0

    def test_bless_records_despite_regression(self, bench_dir, tmp_path):
        history = BenchHistory(tmp_path / "history")
        check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(1.0)]]),
        )
        _, _, code = check_run(
            bench_dir, history=history, fidelity=False, rounds=0,
            bless=True, run_fn=_run_fn([[_entry(4.0)]]),
        )
        assert code == 0
        assert len(history) == 2
        # The blessed run is now the baseline: 4.0 passes, 1.0 improves.
        deltas, _, code = check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(3.9)]]),
        )
        assert code == 0

    def test_unrunnable_suite_fails_without_escalation(self, tmp_path):
        # The regressed label's suite has no bench_*.py file: nothing to
        # re-run, the verdict stands immediately.
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_other.py").write_text("def test_noop():\n    pass\n")
        history = BenchHistory(tmp_path / "history")
        check_run(
            bench_dir, history=history, fidelity=False,
            run_fn=_run_fn([[_entry(1.0)]]),
        )
        run = _run_fn([[_entry(2.0)]])
        _, escalations, code = check_run(
            bench_dir, history=history, fidelity=False, rounds=3, run_fn=run
        )
        assert code == 1
        assert escalations == 0
        assert run.calls == [None]


class TestRecordRun:
    def test_record_merges_artifact_and_appends_history(self, bench_dir, tmp_path):
        artifact_path = tmp_path / "bench_artifact.json"
        history = BenchHistory(tmp_path / "history")
        record_run(
            bench_dir, artifact_path=artifact_path, history=history,
            fidelity=False, run_fn=_run_fn([[_entry(1.0)]]),
        )
        record_run(
            bench_dir, artifact_path=artifact_path, history=history,
            fidelity=False, run_fn=_run_fn([[_entry(1.1)]]),
        )
        assert len(history) == 2
        artifact = load_artifact(artifact_path)
        assert artifact["schema_version"] == 2
        assert [e["work_s"] for e in artifact["entries"]] == [1.1]

    def test_fidelity_entries_folded_in(self, bench_dir, tmp_path):
        artifact_path = tmp_path / "bench_artifact.json"
        history = BenchHistory(tmp_path / "history")
        entries, run_meta = record_run(
            bench_dir, artifact_path=artifact_path, history=history,
            fidelity=True, run_fn=_run_fn([[_entry(1.0)]]),
        )
        fid = [e for e in entries if e["suite"] == "fidelity"]
        assert fid, "scorecard produced no fidelity entries"
        assert all(e["label"].startswith("fidelity.") for e in fid)
        assert all("mean_abs_rel_err" in e for e in fid)
        assert "fidelity" in run_meta["suites"]
        # Deterministic: a second run repeats the numbers bit for bit,
        # so the fidelity gate can hold a zero-spread baseline.
        entries2, _ = record_run(
            bench_dir, artifact_path=artifact_path, history=history,
            fidelity=True, run_fn=_run_fn([[_entry(1.0)]]),
        )
        assert [e for e in entries2 if e["suite"] == "fidelity"] == fid

    def test_fidelity_regression_fails_the_gate(self, bench_dir, tmp_path):
        # Seed real fidelity numbers, then hand-inject a drifted entry.
        history = BenchHistory(tmp_path / "history")
        entries, _ = record_run(
            bench_dir, artifact_path=tmp_path / "a.json", history=history,
            fidelity=True, run_fn=_run_fn([[_entry(1.0)]]),
        )
        from repro.bench.compare import compare_entries, regressions

        drifted = [dict(e) for e in entries if e["suite"] == "fidelity"]
        drifted[0]["mean_abs_rel_err"] = (
            drifted[0]["mean_abs_rel_err"] * 10 + 1.0
        )
        deltas = compare_entries(drifted, history)
        assert any(
            d.label == drifted[0]["label"] and d.field == "mean_abs_rel_err"
            for d in regressions(deltas)
        )

    def test_unknown_suite_raises(self, bench_dir, tmp_path):
        with pytest.raises(BenchError, match="unknown suite"):
            record_run(
                bench_dir, artifact_path=tmp_path / "a.json",
                history=BenchHistory(tmp_path / "h"),
                suites=["nope"], fidelity=False,
            )


class TestDiscoverSuites:
    def test_stems_mapped_to_files(self, tmp_path):
        (tmp_path / "bench_alpha.py").write_text("")
        (tmp_path / "bench_beta.py").write_text("")
        (tmp_path / "conftest.py").write_text("")
        suites = discover_suites(tmp_path)
        assert sorted(suites) == ["alpha", "beta"]
        assert suites["alpha"].name == "bench_alpha.py"

    def test_missing_dir_is_empty(self, tmp_path):
        assert discover_suites(tmp_path / "nope") == {}
