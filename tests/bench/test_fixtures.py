"""The shared measurement helpers: elapsed floor, recorder, suite tags.

The zero-elapsed bug this locks down: sub-resolution timed regions used
to return ``0.0`` from the best-of-N helper and every downstream
``n / elapsed`` throughput ratio raised ``ZeroDivisionError``.  The
helper now re-measures and then clamps to :data:`MIN_ELAPSED_S`.
"""

import json

from repro.bench.fixtures import (
    MIN_ELAPSED_S,
    ArtifactRecorder,
    current_suite,
    escalate_until_impl,
    time_best_of_impl,
)
from repro.bench.schema import load_artifact


def _fake_timer(values):
    """A timer yielding canned elapsed times (and counting calls)."""
    calls = []

    def timer(body):
        result = body()
        elapsed = values[min(len(calls), len(values) - 1)]
        calls.append(elapsed)
        return elapsed, result

    timer.calls = calls
    return timer


class TestTimeBestOf:
    def test_returns_best_and_result(self):
        timer = _fake_timer([0.5, 0.2, 0.4])
        best, result = time_best_of_impl("x", lambda: 42, 3, timer=timer)
        assert best == 0.2
        assert result == 42

    def test_zero_elapsed_never_returned(self):
        """The ZeroDivisionError regression test."""
        timer = _fake_timer([0.0])  # timer can never resolve the region
        best, _ = time_best_of_impl("x", lambda: None, 2, timer=timer)
        assert best == MIN_ELAPSED_S
        assert 1.0 / best > 0  # the downstream ratio is safe by construction
        # It spent the retry budget before clamping: 2 reps x (1 + 3 rounds).
        assert len(timer.calls) == 8

    def test_remeasures_until_measurable(self):
        # First round unresolvable, second round measurable: the helper
        # re-runs and returns the real observation, not the floor.
        timer = _fake_timer([0.0, 0.0, 0.003, 0.004])
        best, _ = time_best_of_impl("x", lambda: None, 2, timer=timer)
        assert best == 0.003
        assert len(timer.calls) == 4

    def test_setup_runs_outside_timed_region(self):
        made = []

        def setup():
            made.append(object())
            return made[-1]

        seen = []
        timer = _fake_timer([0.1])
        time_best_of_impl("x", seen.append, 3, setup=setup, timer=timer)
        assert seen == made and len(made) == 3

    def test_real_timer_obeys_floor(self):
        # No injected timer: the obs.host_timer path, with an empty body
        # (the fastest region possible), still respects the floor.
        best, _ = time_best_of_impl("floor_probe", lambda: None, 1)
        assert best >= MIN_ELAPSED_S


class TestEscalateUntil:
    def test_no_rounds_when_margin_met(self):
        assert escalate_until_impl(lambda: 5.0, lambda: None, margin=3.0,
                                   max_rounds=4) == 0

    def test_rounds_until_cleared(self):
        state = {"v": 1.0}

        def remeasure():
            state["v"] += 1.0

        rounds = escalate_until_impl(
            lambda: state["v"], remeasure, margin=3.0, max_rounds=10
        )
        assert rounds == 2 and state["v"] == 3.0

    def test_budget_exhausted(self):
        assert escalate_until_impl(lambda: 0.0, lambda: None, margin=1.0,
                                   max_rounds=3) == 3


class TestCurrentSuite:
    def test_suite_from_pytest_current_test(self):
        env = {"PYTEST_CURRENT_TEST": "benchmarks/bench_store.py::test_x (call)"}
        assert current_suite(env) == "store"

    def test_windows_separator(self):
        env = {"PYTEST_CURRENT_TEST": r"benchmarks\bench_fig1_stream.py::t (call)"}
        assert current_suite(env) == "fig1_stream"

    def test_none_outside_bench(self):
        assert current_suite({"PYTEST_CURRENT_TEST": "tests/test_x.py::t"}) is None
        assert current_suite({}) is None


class TestArtifactRecorder:
    def test_last_recording_wins_per_label(self, tmp_path):
        rec = ArtifactRecorder(tmp_path / "a.json")
        rec.record("x", suite="s", v_s=1.0)
        rec.record("x", suite="s", v_s=0.8)
        assert [e["v_s"] for e in rec.entries()] == [0.8]

    def test_flush_merges_by_label(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ARTIFACT", raising=False)
        path = tmp_path / "a.json"
        first = ArtifactRecorder(path)
        first.record("alpha.x", suite="alpha", x_s=1.0)
        first.record("beta.y", suite="beta", y_s=2.0)
        first.flush()
        # A subset session touching only alpha preserves beta's entry.
        second = ArtifactRecorder(path)
        second.record("alpha.x", suite="alpha", x_s=0.9)
        second.flush()
        artifact = load_artifact(path)
        by_label = {e["label"]: e for e in artifact["entries"]}
        assert by_label["alpha.x"]["x_s"] == 0.9
        assert by_label["beta.y"]["y_s"] == 2.0
        assert artifact["run"]["suites"] == ["alpha"]

    def test_empty_session_writes_empty_run_record(self, tmp_path, monkeypatch):
        """Satellite fix: teardown must not skip the write when nothing ran."""
        monkeypatch.delenv("REPRO_BENCH_ARTIFACT", raising=False)
        path = tmp_path / "a.json"
        seeded = ArtifactRecorder(path)
        seeded.record("alpha.x", suite="alpha", x_s=1.0)
        seeded.flush()
        stamp_before = load_artifact(path)["run"]["timestamp"]

        empty = ArtifactRecorder(path)
        empty.flush()
        artifact = load_artifact(path)
        assert artifact["run"]["empty"] is True
        assert artifact["run"]["labels_recorded"] == []
        # ... while the existing entries survive untouched.
        assert [e["label"] for e in artifact["entries"]] == ["alpha.x"]
        assert artifact["run"]["timestamp"] >= stamp_before

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        target = tmp_path / "override.json"
        monkeypatch.setenv("REPRO_BENCH_ARTIFACT", str(target))
        rec = ArtifactRecorder(tmp_path / "default.json")
        rec.record("x", suite="s", v_s=1.0)
        assert rec.flush() == target
        assert target.exists()
        assert not (tmp_path / "default.json").exists()

    def test_escalation_rounds_summed_into_run_meta(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ARTIFACT", raising=False)
        path = tmp_path / "a.json"
        rec = ArtifactRecorder(path)
        rec.record("x", suite="s", v_s=1.0, extra_rounds=2)
        rec.record("y", suite="s", v_s=1.0, extra_rounds=1)
        rec.flush()
        assert load_artifact(path)["run"]["escalation_rounds"] == 3

    def test_flush_output_is_valid_sorted_json(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_ARTIFACT", raising=False)
        path = tmp_path / "a.json"
        rec = ArtifactRecorder(path)
        rec.record("x", suite="s", v_s=1.0)
        rec.flush()
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema_version"] == 2
