"""Direction detection, spread-derived margins, and delta classification."""

from repro.bench.compare import compare_entries, regressions, render_deltas
from repro.bench.thresholds import (
    BASE_MARGIN,
    SPREAD_FACTOR,
    baseline_from_history,
    field_direction,
    margin_from_history,
)


class _FakeHistory:
    def __init__(self, series_map):
        self._map = series_map

    def series(self, label, field):
        return list(self._map.get((label, field), ()))


class TestFieldDirection:
    def test_durations_and_errors_lower_better(self):
        assert field_direction("get_s") == "lower"
        assert field_direction("elapsed_s") == "lower"
        assert field_direction("mean_abs_rel_err") == "lower"

    def test_rates_and_speedups_higher_better(self):
        # _per_s also ends in _s: the higher-better check must win.
        assert field_direction("gets_per_s") == "higher"
        assert field_direction("speedup") == "higher"
        assert field_direction("batch_speedup") == "higher"

    def test_metadata_ungated(self):
        assert field_direction("n_configs") is None
        assert field_direction("label") is None
        assert field_direction("fast_fraction") is None


class TestMargins:
    def test_short_history_gets_base_margin(self):
        assert margin_from_history([]) == BASE_MARGIN
        assert margin_from_history([1.0]) == BASE_MARGIN

    def test_tight_history_stays_at_base(self):
        assert margin_from_history([1.0, 1.01, 0.99]) == BASE_MARGIN

    def test_noisy_history_widens_margin(self):
        values = [1.0, 1.8]  # 80% spread
        assert margin_from_history(values) == SPREAD_FACTOR * 0.8

    def test_nonpositive_values_ignored(self):
        assert margin_from_history([0.0, -1.0, 2.0]) == BASE_MARGIN

    def test_baseline_is_best_by_direction(self):
        assert baseline_from_history([0.5, 0.3, 0.4], "lower") == 0.3
        assert baseline_from_history([10.0, 30.0, 20.0], "higher") == 30.0
        assert baseline_from_history([], "lower") is None


class TestCompareEntries:
    def test_seeded_without_history(self):
        deltas = compare_entries(
            [{"label": "x", "suite": "s", "run_s": 1.0}], _FakeHistory({})
        )
        assert [d.verdict for d in deltas] == ["seeded"]
        assert regressions(deltas) == []

    def test_2x_slowdown_is_regression(self):
        """Acceptance bar: a clean 2x slowdown always fires."""
        history = _FakeHistory({("x", "run_s"): [1.0, 1.02, 0.98]})
        deltas = compare_entries([{"label": "x", "run_s": 2.0}], history)
        assert [d.verdict for d in deltas] == ["regression"]

    def test_noise_within_spread_is_ok(self):
        # 30% historical spread earns a 45% margin: a 1.3x excursion
        # inside the historical range must NOT fire.
        history = _FakeHistory({("x", "run_s"): [1.0, 1.3, 1.1]})
        deltas = compare_entries([{"label": "x", "run_s": 1.35}], history)
        assert [d.verdict for d in deltas] == ["ok"]

    def test_higher_better_regression_direction(self):
        history = _FakeHistory({("x", "ops_per_s"): [100.0, 102.0]})
        slow = compare_entries([{"label": "x", "ops_per_s": 40.0}], history)
        fast = compare_entries([{"label": "x", "ops_per_s": 200.0}], history)
        assert [d.verdict for d in slow] == ["regression"]
        assert [d.verdict for d in fast] == ["improved"]

    def test_improvement_never_fails(self):
        history = _FakeHistory({("x", "run_s"): [1.0, 1.01]})
        deltas = compare_entries([{"label": "x", "run_s": 0.2}], history)
        assert [d.verdict for d in deltas] == ["improved"]
        assert regressions(deltas) == []

    def test_ungated_and_non_numeric_fields_skipped(self):
        deltas = compare_entries(
            [{"label": "x", "n_rows": 5, "verified_s": True, "note": "hi",
              "run_s": 1.0}],
            _FakeHistory({}),
        )
        assert [d.field for d in deltas] == ["run_s"]

    def test_render_mentions_counts_and_regressions(self):
        history = _FakeHistory({("x", "run_s"): [1.0, 1.02]})
        deltas = compare_entries(
            [{"label": "x", "run_s": 5.0}, {"label": "y", "run_s": 1.0}],
            history,
        )
        text = render_deltas(deltas)
        assert "1 regression(s)" in text
        assert "1 seeded" in text
        assert "x" in text and "5" in text
