"""Schema v2: run metadata, v1 upgrade, and the merge-by-label fix.

The clobbering bug this locks down: the old teardown wrote *only* the
current session's entries, so ``pytest benchmarks/bench_store.py``
replaced the whole artifact with the store suite's three rows and every
other table's trajectory evaporated.  Merge-by-label + suite-scoped
eviction is the fix; these tests are the regression proof.
"""

import json

from repro.bench.schema import (
    SCHEMA_VERSION,
    load_artifact,
    merge_artifact,
    run_metadata,
    write_artifact,
)


def _entry(label, suite, **fields):
    return {"label": label, "suite": suite, **fields}


class TestRunMetadata:
    def test_core_fields_present(self):
        assert SCHEMA_VERSION == 2
        meta = run_metadata(suites=["store"], labels=["store.get"])
        assert meta["suites"] == ["store"]
        assert meta["labels_recorded"] == ["store.get"]
        assert meta["escalation_rounds"] == 0
        assert meta["empty"] is False
        assert "timestamp" in meta and "machine" in meta
        assert meta["machine"]["python"]

    def test_git_sha_of_this_repo(self):
        meta = run_metadata(suites=[], labels=[])
        # The repo is git-initialised, so the sha must resolve here.
        assert meta["git_sha"] is None or len(meta["git_sha"]) == 40

    def test_suites_deduplicated_and_sorted(self):
        meta = run_metadata(suites=["b", "a", "b"], labels=["y", "x", "y"])
        assert meta["suites"] == ["a", "b"]
        assert meta["labels_recorded"] == ["x", "y"]

    def test_empty_run_flagged(self):
        meta = run_metadata(suites=[], labels=[], empty=True)
        assert meta["empty"] is True


class TestLoadArtifact:
    def test_missing_file_is_none(self, tmp_path):
        assert load_artifact(tmp_path / "nope.json") is None

    def test_garbage_is_none(self, tmp_path):
        p = tmp_path / "bench_artifact.json"
        p.write_text("not json {")
        assert load_artifact(p) is None

    def test_v1_artifact_upgraded(self, tmp_path):
        p = tmp_path / "bench_artifact.json"
        p.write_text(json.dumps({
            "schema_version": 1,
            "entries": [{"label": "store.get", "get_s": 0.5}],
        }))
        art = load_artifact(p)
        assert art["schema_version"] == 2
        assert art["run"]["upgraded_from"] == 1
        assert art["entries"] == [
            {"label": "store.get", "suite": None, "get_s": 0.5}
        ]

    def test_v2_roundtrip(self, tmp_path):
        p = tmp_path / "bench_artifact.json"
        meta = run_metadata(suites=["s"], labels=["s.x"])
        merged = merge_artifact(None, [_entry("s.x", "s", x_s=1.0)], meta)
        write_artifact(p, merged)
        assert load_artifact(p) == merged


class TestMergeByLabel:
    def test_subset_run_preserves_other_suites(self):
        """The headline regression test for the clobbering bug."""
        full = merge_artifact(
            None,
            [
                _entry("store.get", "store", get_s=0.5),
                _entry("grid.cold", "planner", cold_s=2.0),
                _entry("model.batch", "model", speedup=4.0),
            ],
            run_metadata(
                suites=["store", "planner", "model"],
                labels=["store.get", "grid.cold", "model.batch"],
            ),
        )
        # A subset session: only the store suite ran, with a new number.
        subset = merge_artifact(
            full,
            [_entry("store.get", "store", get_s=0.4)],
            run_metadata(suites=["store"], labels=["store.get"]),
        )
        by_label = {e["label"]: e for e in subset["entries"]}
        assert by_label["store.get"]["get_s"] == 0.4          # updated
        assert by_label["grid.cold"]["cold_s"] == 2.0         # preserved
        assert by_label["model.batch"]["speedup"] == 4.0      # preserved
        assert len(subset["entries"]) == 3

    def test_stale_label_of_rerun_suite_evicted(self):
        # A label the suite used to record but no longer does must not
        # survive forever -- re-running its suite retires it.
        full = merge_artifact(
            None,
            [
                _entry("store.get", "store", get_s=0.5),
                _entry("store.old_metric", "store", old_s=9.9),
            ],
            run_metadata(
                suites=["store"], labels=["store.get", "store.old_metric"]
            ),
        )
        merged = merge_artifact(
            full,
            [_entry("store.get", "store", get_s=0.4)],
            run_metadata(suites=["store"], labels=["store.get"]),
        )
        labels = [e["label"] for e in merged["entries"]]
        assert labels == ["store.get"]

    def test_empty_session_keeps_entries_but_marks_run(self):
        full = merge_artifact(
            None,
            [_entry("store.get", "store", get_s=0.5)],
            run_metadata(suites=["store"], labels=["store.get"]),
        )
        empty = merge_artifact(
            full, [], run_metadata(suites=[], labels=[], empty=True)
        )
        assert empty["run"]["empty"] is True
        assert empty["entries"] == full["entries"]

    def test_entries_sorted_by_label(self):
        merged = merge_artifact(
            None,
            [_entry("z.z", "z", v_s=1.0), _entry("a.a", "a", v_s=1.0)],
            run_metadata(suites=["a", "z"], labels=["a.a", "z.z"]),
        )
        assert [e["label"] for e in merged["entries"]] == ["a.a", "z.z"]
