"""The append-only history store: codec, accumulation, corruption."""

import json

import pytest

from repro.bench.history import (
    BenchHistory,
    HistoryError,
    decode_record,
    encode_record,
    trajectory_summary,
)


def _record(seq, **fields):
    return {
        "run": {
            "git_sha": "deadbeef" + "0" * 32,
            "timestamp": f"2026-08-0{seq}T00:00:00Z",
            "suites": ["store"],
            "empty": False,
        },
        "entries": [{"label": "store.get", "suite": "store", "get_s": 0.5, **fields}],
    }


class TestCodec:
    def test_roundtrip_byte_identical(self):
        # repr-float payloads must survive encode -> decode -> encode
        # with not a single byte changed: the gate treats re-read
        # baselines as the measured numbers.
        record = {
            "run": {"git_sha": None, "empty": False},
            "entries": [
                {"label": "x", "suite": "s", "v_s": 0.1 + 0.2, "r_per_s": 1e-7},
                {"label": "y", "suite": "s", "v_s": 3.141592653589793},
            ],
        }
        text = encode_record(record)
        assert decode_record(text) == record
        assert encode_record(decode_record(text)) == text

    def test_version_mismatch_rejected(self):
        text = encode_record(_record(1))
        wrapper = json.loads(text)
        wrapper["version"] = 99
        with pytest.raises(HistoryError, match="version"):
            decode_record(json.dumps(wrapper))

    def test_sha_mismatch_rejected(self):
        text = encode_record(_record(1))
        wrapper = json.loads(text)
        wrapper["payload"] = wrapper["payload"].replace("0.5", "0.4")
        with pytest.raises(HistoryError, match="sha256"):
            decode_record(json.dumps(wrapper))

    def test_garbage_rejected(self):
        with pytest.raises(HistoryError):
            decode_record("not json {")


class TestBenchHistory:
    def test_two_appends_two_records(self, tmp_path):
        """Acceptance: consecutive runs accumulate, nothing overwritten."""
        history = BenchHistory(tmp_path / "history")
        history.append(_record(1, get_s=0.5))
        history.append(_record(2, get_s=0.6))
        assert len(history) == 2
        records = history.records()
        assert len(records) == 2
        assert records[0]["entries"][0]["get_s"] == 0.5
        assert records[1]["entries"][0]["get_s"] == 0.6

    def test_filenames_sequence_and_sha(self, tmp_path):
        history = BenchHistory(tmp_path)
        p1 = history.append(_record(1))
        p2 = history.append(_record(2))
        assert p1.name == "run-000001-deadbee.json"
        assert p2.name == "run-000002-deadbee.json"

    def test_nogit_run_still_named(self, tmp_path):
        history = BenchHistory(tmp_path)
        path = history.append({"run": {"git_sha": None}, "entries": []})
        assert "nogit" in path.name

    def test_empty_dir(self, tmp_path):
        history = BenchHistory(tmp_path / "missing")
        assert len(history) == 0
        assert history.records() == []
        assert history.latest() is None

    def test_corrupt_record_skipped_not_deleted(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_record(1, get_s=0.5))
        bad = history.append(_record(2, get_s=0.6))
        bad.write_text(bad.read_text()[:40])  # torn write
        records = history.records()
        assert len(records) == 1
        assert records[0]["entries"][0]["get_s"] == 0.5
        assert bad.exists()  # append-only: evidence stays

    def test_series_reads_label_field_trajectory(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_record(1, get_s=0.5))
        history.append(_record(2, get_s=0.6))
        history.append({"run": {"git_sha": None}, "entries": []})  # no label
        assert history.series("store.get", "get_s") == [0.5, 0.6]
        assert history.series("store.get", "missing") == []
        assert history.series("nope", "get_s") == []

    def test_series_skips_non_numeric_and_bool(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append({
            "run": {"git_sha": None},
            "entries": [{"label": "x", "flag_s": True, "note_s": "fast"}],
        })
        assert history.series("x", "flag_s") == []
        assert history.series("x", "note_s") == []


class TestTrajectorySummary:
    def test_none_without_history(self, tmp_path):
        assert trajectory_summary(tmp_path / "none") is None

    def test_summarises_latest_run(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_record(1))
        history.append(_record(2))
        summary = trajectory_summary(tmp_path)
        assert summary["runs"] == 2
        assert summary["labels"] == 1
        assert summary["latest"]["suites"] == ["store"]
        assert summary["latest"]["entries"] == 1
        assert summary["latest"]["empty"] is False
        assert summary["latest"]["timestamp"] == "2026-08-02T00:00:00Z"
