"""Run the doctests embedded in the public API docstrings."""

import doctest

import pytest

import repro.core.metrics
import repro.npb.signatures
import repro.npb.suite

MODULES = [repro.core.metrics, repro.npb.signatures, repro.npb.suite]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0
