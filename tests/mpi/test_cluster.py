"""Multi-socket cluster projection."""

import pytest

from repro.mpi.cluster import cluster_sweep, predict_cluster
from repro.mpi.netmodel import ETHERNET_100G, PCIE5_FABRIC


class TestProjection:
    def test_single_socket_matches_model(self):
        p = predict_cluster("sg2044", "ep", 1)
        assert p.mops == pytest.approx(p.single_socket.mops, rel=1e-9)
        assert p.comm_time_s == 0.0

    def test_ep_scales_almost_perfectly(self):
        sweep = cluster_sweep("sg2044", "ep", (1, 2, 4, 8))
        assert sweep[-1].scaling_efficiency > 0.99

    def test_ft_pays_for_transposes(self):
        sweep = cluster_sweep("sg2044", "ft", (1, 8))
        assert 0.5 < sweep[-1].scaling_efficiency < 1.0
        assert sweep[-1].comm_fraction > 0.02

    def test_efficiency_never_exceeds_one(self):
        for kernel in ("is", "mg", "ep", "cg", "ft"):
            for pred in cluster_sweep("sg2044", kernel, (2, 4)):
                assert pred.scaling_efficiency <= 1.0 + 1e-9

    def test_slower_fabric_hurts_ft_more_than_ep(self):
        ft_fast = predict_cluster("sg2044", "ft", 8, link=PCIE5_FABRIC)
        ft_slow = predict_cluster("sg2044", "ft", 8, link=ETHERNET_100G)
        ep_fast = predict_cluster("sg2044", "ep", 8, link=PCIE5_FABRIC)
        ep_slow = predict_cluster("sg2044", "ep", 8, link=ETHERNET_100G)
        ft_loss = ft_fast.mops / ft_slow.mops
        ep_loss = ep_fast.mops / ep_slow.mops
        assert ft_loss > ep_loss

    def test_sg2044_cluster_vs_epyc_cluster(self):
        # The whole-chip relationships survive scale-out.
        sg = predict_cluster("sg2044", "mg", 4)
        epyc = predict_cluster("epyc7742", "mg", 4)
        assert 0.4 < sg.mops / epyc.mops < 1.2

    def test_bad_socket_count(self):
        with pytest.raises(ValueError):
            predict_cluster("sg2044", "ep", 0)
