"""The functional simulated communicator."""

import numpy as np
import pytest

from repro.mpi.netmodel import INFINIBAND_HDR
from repro.mpi.simcomm import SimComm


@pytest.fixture
def comm():
    return SimComm(4, INFINIBAND_HDR)


class TestAllreduce:
    def test_sum(self, comm):
        data = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce(data)
        for buf in out:
            assert np.allclose(buf, 0 + 1 + 2 + 3)

    def test_max_and_min(self, comm):
        data = [np.array([float(r)]) for r in range(4)]
        assert comm.allreduce(data, "max")[0][0] == 3.0
        assert comm.allreduce(data, "min")[0][0] == 0.0

    def test_clock_advances_uniformly(self, comm):
        comm.allreduce([np.zeros(10)] * 4)
        assert np.all(comm.clock == comm.clock[0])
        assert comm.clock[0] > 0

    def test_unknown_op_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(1)] * 4, "xor")


class TestAlltoall:
    def test_block_transpose_semantics(self, comm):
        # Rank r sends block j to rank j; rank j receives [block_j of r=0..3].
        data = [np.arange(8) + 100 * r for r in range(4)]
        out = comm.alltoall(data)
        assert np.array_equal(out[0], np.array([0, 1, 100, 101, 200, 201, 300, 301]))
        assert np.array_equal(out[3], np.array([6, 7, 106, 107, 206, 207, 306, 307]))

    def test_round_trip_identity(self, comm):
        rng = np.random.default_rng(3)
        data = [rng.normal(size=(8, 5)) for _ in range(4)]
        back = comm.alltoall(comm.alltoall(data))
        for a, b in zip(data, back):
            assert np.allclose(a, b)

    def test_indivisible_rejected(self, comm):
        with pytest.raises(ValueError):
            comm.alltoall([np.zeros(7)] * 4)


class TestOtherCollectives:
    def test_bcast(self, comm):
        data = [np.arange(4.0), None, None, None]
        out = comm.bcast(data, root=0)
        for buf in out:
            assert np.array_equal(buf, np.arange(4.0))

    def test_allgather(self, comm):
        data = [np.array([float(r)]) for r in range(4)]
        out = comm.allgather(data)
        assert np.array_equal(out[2], np.array([0.0, 1.0, 2.0, 3.0]))

    def test_sendrecv_permutation(self, comm):
        data = [np.array([r]) for r in range(4)]
        out = comm.sendrecv(data, lambda r: (r + 1) % 4)
        assert [int(b[0]) for b in out] == [3, 0, 1, 2]

    def test_sendrecv_requires_permutation(self, comm):
        with pytest.raises(ValueError):
            comm.sendrecv([np.zeros(1)] * 4, lambda r: 0)

    def test_counters(self, comm):
        comm.allreduce([np.zeros(1)] * 4)
        comm.alltoall([np.zeros(4)] * 4)
        assert comm.counters["allreduce"] == 1
        assert comm.counters["alltoall"] == 1

    def test_rank_count_checked(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([np.zeros(1)] * 3)
