"""Distributed NPB kernels vs their sequential counterparts."""

import numpy as np
import pytest

from repro.mpi.netmodel import INFINIBAND_HDR
from repro.mpi.npb_dist import distributed_dot, distributed_ep, distributed_fft3d
from repro.mpi.simcomm import SimComm
from repro.npb.ep import ep_kernel


class TestDistributedEP:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    def test_bit_exact_vs_sequential(self, ranks):
        comm = SimComm(ranks, INFINIBAND_HDR)
        sx, sy, counts = distributed_ep(comm, 2**16)
        ref_sx, ref_sy, ref_counts = ep_kernel(2**16)
        assert sx == pytest.approx(ref_sx, rel=1e-12)
        assert sy == pytest.approx(ref_sy, rel=1e-12)
        assert np.array_equal(counts, ref_counts)

    def test_one_allreduce_total(self):
        comm = SimComm(4, INFINIBAND_HDR)
        distributed_ep(comm, 2**14)
        assert comm.counters["allreduce"] == 1

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValueError):
            distributed_ep(SimComm(8, INFINIBAND_HDR), 4)


class TestDistributedFFT:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_matches_numpy_fftn(self, ranks):
        rng = np.random.default_rng(17)
        field = rng.normal(size=(8, 8, 8)) + 1j * rng.normal(size=(8, 8, 8))
        comm = SimComm(ranks, INFINIBAND_HDR)
        out = distributed_fft3d(comm, field)
        assert np.allclose(out, np.fft.fftn(field), atol=1e-10)

    def test_uses_one_alltoall(self):
        comm = SimComm(4, INFINIBAND_HDR)
        distributed_fft3d(comm, np.zeros((8, 8, 8), dtype=complex))
        assert comm.counters["alltoall"] == 1

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ValueError):
            distributed_fft3d(SimComm(3, INFINIBAND_HDR), np.zeros((8, 8, 8)))


class TestDistributedDot:
    def test_matches_sequential_dot(self):
        rng = np.random.default_rng(21)
        x = rng.normal(size=120)
        y = rng.normal(size=120)
        comm = SimComm(4, INFINIBAND_HDR)
        got = distributed_dot(
            comm, list(np.split(x, 4)), list(np.split(y, 4))
        )
        assert got == pytest.approx(float(x @ y))

    def test_block_count_checked(self):
        with pytest.raises(ValueError):
            distributed_dot(SimComm(4, INFINIBAND_HDR), [np.zeros(2)] * 3, [np.zeros(2)] * 3)
