"""Alpha-beta link model and collective costs."""

import pytest

from repro.mpi.netmodel import ETHERNET_100G, INFINIBAND_HDR, PCIE5_FABRIC, LinkModel


class TestPointToPoint:
    def test_latency_floor(self):
        assert INFINIBAND_HDR.ptp_time(0) == INFINIBAND_HDR.alpha_s

    def test_bandwidth_term(self):
        t = INFINIBAND_HDR.ptp_time(23_000_000_000)
        assert t == pytest.approx(1.0 + INFINIBAND_HDR.alpha_s)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            INFINIBAND_HDR.ptp_time(-1)


class TestCollectives:
    def test_single_rank_is_free(self):
        for fn in ("allreduce_time", "bcast_time", "allgather_time", "alltoall_time"):
            assert getattr(INFINIBAND_HDR, fn)(1024, 1) == 0.0

    def test_allreduce_log_rounds(self):
        t2 = INFINIBAND_HDR.allreduce_time(1024, 2)
        t8 = INFINIBAND_HDR.allreduce_time(1024, 8)
        assert t8 == pytest.approx(3 * t2)

    def test_alltoall_linear_in_ranks(self):
        t2 = INFINIBAND_HDR.alltoall_time(1024, 2)
        t5 = INFINIBAND_HDR.alltoall_time(1024, 5)
        assert t5 == pytest.approx(4 * t2)

    def test_halo_counts_neighbours(self):
        assert INFINIBAND_HDR.halo_time(4096, 6) == pytest.approx(
            3 * INFINIBAND_HDR.halo_time(4096, 2)
        )

    def test_faster_fabrics_cost_less(self):
        msg = 1 << 20
        assert PCIE5_FABRIC.ptp_time(msg) < INFINIBAND_HDR.ptp_time(msg) < ETHERNET_100G.ptp_time(msg)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel("bad", alpha_s=-1.0, beta_bps=1e9)
        with pytest.raises(ValueError):
            INFINIBAND_HDR.allreduce_time(8, 0)
