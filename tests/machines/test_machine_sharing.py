"""Machine cache-sharing accounting."""

import pytest

from repro.machines.catalog import get_machine
from repro.machines.cpu import CacheSharing


class TestCoresSharing:
    def test_private_cache_one_sharer(self):
        m = get_machine("skylake8170")
        l2 = m.cache(2)
        assert l2.sharing is CacheSharing.PRIVATE
        assert m.cores_sharing(l2) == 1

    def test_cluster_cache_four_sharers(self):
        m = get_machine("sg2044")
        assert m.cores_sharing(m.cache(2)) == 4

    def test_chip_cache_all_cores(self):
        m = get_machine("sg2044")
        assert m.cores_sharing(m.cache(3)) == 64

    def test_partial_occupancy_reduces_sharing(self):
        m = get_machine("sg2044")
        assert m.cores_sharing(m.cache(3), active_threads=8) == 8

    def test_missing_level_returns_none(self):
        assert get_machine("visionfive2").cache(3) is None

    def test_last_level_cache_is_highest(self):
        assert get_machine("sg2044").last_level_cache.level == 3
        assert get_machine("visionfive2").last_level_cache.level == 2

    def test_effective_cache_validates_thread_count(self):
        with pytest.raises(ValueError):
            get_machine("sg2044").effective_cache_bytes_per_thread(65)
