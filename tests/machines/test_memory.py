"""Memory-subsystem model: saturation curves and their invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.machines.ddr import ddr4, ddr5
from repro.machines.memory import MemorySubsystem, smoothmin

GiB = 2**30


def _mem(**kw):
    defaults = dict(
        ddr=ddr4(3200),
        controllers=4,
        channels=4,
        capacity_bytes=128 * GiB,
        per_core_stream_bw_gbs=5.0,
    )
    defaults.update(kw)
    return MemorySubsystem(**defaults)


class TestSmoothmin:
    @given(
        demand=st.floats(0.0, 1e12),
        cap=st.floats(1e-3, 1e12),
        sharpness=st.floats(1.0, 16.0),
    )
    def test_never_exceeds_either_bound(self, demand, cap, sharpness):
        out = smoothmin(demand, cap, sharpness)
        assert out <= demand + 1e-9
        assert out <= cap * 1.0001

    @given(cap=st.floats(1.0, 1e9))
    def test_small_demand_passes_through(self, cap):
        demand = cap / 1000.0
        assert smoothmin(demand, cap) == pytest.approx(demand, rel=1e-3)

    @given(cap=st.floats(1.0, 1e9))
    def test_huge_demand_saturates_to_cap(self, cap):
        assert smoothmin(cap * 1000, cap) == pytest.approx(cap, rel=1e-2)

    def test_monotone_in_demand(self):
        values = [smoothmin(d, 100.0) for d in range(0, 1000, 10)]
        assert values == sorted(values)

    def test_sharper_knee_closer_to_hard_min(self):
        soft = smoothmin(100.0, 100.0, sharpness=2.0)
        hard = smoothmin(100.0, 100.0, sharpness=16.0)
        assert soft < hard <= 100.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            smoothmin(-1.0, 10.0)
        with pytest.raises(ValueError):
            smoothmin(1.0, 0.0)
        with pytest.raises(ValueError):
            smoothmin(1.0, 1.0, sharpness=0.5)


class TestStreamBandwidth:
    def test_single_core_is_core_limited(self):
        mem = _mem()
        assert mem.stream_bw_gbs(1) == pytest.approx(5.0, rel=0.01)

    def test_monotone_in_cores(self):
        mem = _mem()
        bws = [mem.stream_bw_gbs(n) for n in range(1, 65)]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(bws, bws[1:]))

    def test_saturates_at_sustained_ceiling(self):
        mem = _mem(sustained_bw_override_gbs=40.0)
        assert mem.stream_bw_gbs(64) <= 40.0
        assert mem.stream_bw_gbs(64) > 35.0

    def test_override_respected(self):
        assert _mem(sustained_bw_override_gbs=44.0).sustained_bw_gbs == 44.0

    def test_default_ceiling_from_jedec(self):
        mem = _mem()
        assert mem.sustained_bw_gbs == pytest.approx(
            4 * ddr4(3200).channel_sustained_bw_gbs
        )

    def test_utilisation_in_unit_range(self):
        mem = _mem(sustained_bw_override_gbs=40.0)
        for n in (1, 8, 64):
            assert 0.0 < mem.bandwidth_utilisation(n) <= 1.0


class TestRandomAccess:
    def test_rate_monotone_and_capped(self):
        mem = _mem()
        rates = [mem.random_access_rate(n) for n in (1, 2, 4, 8, 16, 32, 64)]
        assert all(r2 >= r1 for r1, r2 in zip(rates, rates[1:]))
        assert rates[-1] <= mem.random_rate_cap() * 1.0001

    def test_idle_latency_includes_fabric(self):
        mem = _mem(extra_latency_ns=30.0)
        assert mem.idle_latency_ns == pytest.approx(
            ddr4(3200).random_access_latency_ns + 30.0
        )

    def test_loaded_latency_inflates_under_load(self):
        mem = _mem(sustained_bw_override_gbs=40.0)
        assert mem.loaded_latency_ns(64) > mem.loaded_latency_ns(1)


class TestCapacity:
    def test_fits_with_headroom(self):
        mem = _mem(capacity_bytes=1 * GiB)
        assert mem.fits(int(0.8 * GiB))
        assert not mem.fits(int(0.9 * GiB))  # beyond the 85% headroom

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            _mem().fits(-1)


class TestValidation:
    def test_channel_controller_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _mem(controllers=3, channels=4)

    def test_llc_boost_below_one_rejected(self):
        with pytest.raises(ValueError):
            _mem(llc_random_boost=0.5)

    def test_describe_mentions_ddr_and_channels(self):
        desc = _mem().describe()
        assert "DDR4-3200" in desc
        assert "4 MC / 4 ch" in desc
