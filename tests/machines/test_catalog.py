"""The machine catalog: every paper CPU with its Table 5 parameters."""

import pytest

from repro.machines import (
    PAPER_HPC_MACHINES,
    PAPER_RISCV_BOARDS,
    VectorStandard,
    all_machines,
    get_machine,
    machine_names,
)
from repro.machines.cpu import CacheSharing


class TestCatalogIntegrity:
    def test_eleven_machines(self):
        assert len(all_machines()) == 11

    def test_lookup_by_name(self):
        assert get_machine("sg2044").label == "Sophon SG2044"

    def test_unknown_machine_lists_known(self):
        with pytest.raises(KeyError, match="sg2044"):
            get_machine("sg9999")

    def test_paper_sets_are_in_catalog(self):
        names = set(machine_names())
        assert set(PAPER_HPC_MACHINES) <= names
        assert set(PAPER_RISCV_BOARDS) <= names


class TestTable5Parameters:
    """Every row of the paper's Table 5, checked against the catalog."""

    @pytest.mark.parametrize(
        "name,clock_ghz,cores,vector",
        [
            ("epyc7742", 2.25, 64, VectorStandard.AVX2),
            ("skylake8170", 2.1, 26, VectorStandard.AVX512),
            ("thunderx2", 2.0, 32, VectorStandard.NEON),
            ("sg2042", 2.0, 64, VectorStandard.RVV_0_7_1),
            ("sg2044", 2.6, 64, VectorStandard.RVV_1_0),
        ],
    )
    def test_table5_row(self, name, clock_ghz, cores, vector):
        m = get_machine(name)
        assert m.clock_ghz == pytest.approx(clock_ghz)
        assert m.n_cores == cores
        assert m.core.vector.standard is vector


class TestSophonUpgrades:
    """The SG2042 -> SG2044 upgrade list from Section 2.1."""

    def test_memory_controllers_32_vs_4(self):
        assert get_machine("sg2044").memory.controllers == 32
        assert get_machine("sg2042").memory.controllers == 4

    def test_ddr5_vs_ddr4(self):
        assert get_machine("sg2044").memory.ddr.name == "DDR5-4266"
        assert get_machine("sg2042").memory.ddr.name == "DDR4-3200"

    def test_cluster_l2_doubled(self):
        l2_44 = get_machine("sg2044").cache(2)
        l2_42 = get_machine("sg2042").cache(2)
        assert l2_44.size_bytes == 2 * l2_42.size_bytes == 2 * 2**20

    def test_shared_64mb_l3_on_both(self):
        for name in ("sg2042", "sg2044"):
            l3 = get_machine(name).cache(3)
            assert l3.size_bytes == 64 * 2**20
            assert l3.sharing is CacheSharing.CHIP

    def test_both_are_4_core_clusters(self):
        for name in ("sg2042", "sg2044"):
            assert get_machine(name).topology.cores_per_cluster == 4

    def test_single_numa_region_on_sg2044(self):
        assert get_machine("sg2044").topology.numa_regions == 1

    def test_l1_is_64kb(self):
        assert get_machine("sg2044").cache(1).size_bytes == 64 * 1024


class TestOtherArchitectures:
    def test_epyc_has_four_numa_regions(self):
        assert get_machine("epyc7742").topology.numa_regions == 4

    def test_epyc_memory_channels(self):
        assert get_machine("epyc7742").memory.channels == 8

    def test_skylake_channels_and_controllers(self):
        m = get_machine("skylake8170")
        assert m.memory.controllers == 2
        assert m.memory.channels == 6

    def test_thunderx2_channels(self):
        m = get_machine("thunderx2")
        assert m.memory.controllers == 2
        assert m.memory.channels == 8

    def test_allwinner_d1_has_1gb(self):
        assert get_machine("allwinner-d1").memory.capacity_bytes == 2**30

    def test_spacemit_boards_rvv10_256bit(self):
        for name in ("bananapi-f3", "milkv-jupiter"):
            v = get_machine(name).core.vector
            assert v.standard is VectorStandard.RVV_1_0
            assert v.width_bits == 256

    def test_jupiter_clocks_higher_than_bpi(self):
        assert (
            get_machine("milkv-jupiter").clock_hz
            > get_machine("bananapi-f3").clock_hz
        )


class TestMachineBehaviour:
    def test_barrier_cost_grows_with_threads(self):
        m = get_machine("sg2044")
        assert m.barrier_cost_s(1) == 0.0
        assert m.barrier_cost_s(64) > m.barrier_cost_s(2) > 0.0

    def test_parallel_efficiency_decreasing(self):
        m = get_machine("sg2042")
        assert m.parallel_efficiency(1) == 1.0
        assert m.parallel_efficiency(64) < m.parallel_efficiency(8) < 1.0

    def test_sg2042_noisier_than_sg2044(self):
        # The SG2042 loses ~17% of EP's scaling at 64 cores (Table 4).
        assert (
            get_machine("sg2042").parallel_efficiency(64)
            < get_machine("sg2044").parallel_efficiency(64)
        )

    def test_epyc_numa_penalty_beyond_16_threads(self):
        m = get_machine("epyc7742")
        assert m.parallel_efficiency(17) < m.parallel_efficiency(16) * 0.95

    def test_thread_validation(self):
        with pytest.raises(ValueError):
            get_machine("skylake8170").validate_thread_count(27)

    def test_effective_cache_decreases_per_thread(self):
        m = get_machine("sg2044")
        assert m.effective_cache_bytes_per_thread(64) < m.effective_cache_bytes_per_thread(1)

    def test_describe_has_table5_fields(self):
        d = get_machine("sg2044").describe()
        assert d["ISA"] == "RV64GCV"
        assert d["Vector"] == "RVV v1.0.0"
        assert "2.60 GHz" in d["Base clock"]
