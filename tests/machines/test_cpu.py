"""Core / cache / vector-unit descriptors."""

import pytest

from repro.machines.cpu import (
    ISA,
    CacheLevel,
    CacheSharing,
    CoreModel,
    VectorStandard,
    VectorUnit,
)


class TestVectorStandard:
    def test_rvv_071_has_no_mainline_support(self):
        assert not VectorStandard.RVV_0_7_1.mainline_compiler_support

    def test_rvv_10_has_mainline_support(self):
        assert VectorStandard.RVV_1_0.mainline_compiler_support

    @pytest.mark.parametrize(
        "std", [VectorStandard.AVX2, VectorStandard.AVX512, VectorStandard.NEON]
    )
    def test_x86_arm_simd_mainline(self, std):
        assert std.mainline_compiler_support


class TestVectorUnit:
    def test_doubles_per_cycle_128bit(self):
        assert VectorUnit(VectorStandard.RVV_1_0, 128).doubles_per_cycle == 2.0

    def test_doubles_per_cycle_avx512_dual_issue(self):
        unit = VectorUnit(VectorStandard.AVX512, 512, 2)
        assert unit.doubles_per_cycle == 16.0

    def test_scalar_speedup_by_element_width(self):
        unit = VectorUnit(VectorStandard.AVX2, 256, 1)
        assert unit.speedup_over_scalar(64) == 4.0
        assert unit.speedup_over_scalar(32) == 8.0

    def test_no_vector_unit(self):
        unit = VectorUnit(VectorStandard.NONE, 0)
        assert unit.doubles_per_cycle == 0.0
        assert unit.speedup_over_scalar() == 1.0

    def test_none_with_width_rejected(self):
        with pytest.raises(ValueError):
            VectorUnit(VectorStandard.NONE, 128)

    def test_weird_width_rejected(self):
        with pytest.raises(ValueError):
            VectorUnit(VectorStandard.RVV_1_0, 96)


class TestCacheLevel:
    def test_set_count(self):
        c = CacheLevel(1, 32 * 1024, CacheSharing.PRIVATE, 4, associativity=8)
        assert c.n_sets == 64

    def test_capacity_per_core(self):
        c = CacheLevel(2, 2 * 2**20, CacheSharing.CLUSTER, 24)
        assert c.capacity_per_core(4) == pytest.approx(512 * 1024)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheLevel(1, 1000, CacheSharing.PRIVATE, 4)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            CacheLevel(4, 2**20, CacheSharing.CHIP, 10)

    def test_skylake_11_way_llc_is_valid(self):
        # 35.75 MB, 11-way: the odd geometry from the paper's platform.
        c = CacheLevel(3, 35 * 2**20 + 768 * 2**10, CacheSharing.CHIP, 60, associativity=11)
        assert c.n_sets == 53248


class TestCoreModel:
    def _core(self, **kw):
        defaults = dict(
            name="test",
            isa=ISA.RV64GCV,
            decode_width=3,
            issue_width=8,
            load_store_units=2,
            fpu_count=2,
            vector=VectorUnit(VectorStandard.RVV_1_0, 128),
            sustained_ipc=1.4,
        )
        defaults.update(kw)
        return CoreModel(**defaults)

    def test_has_vector(self):
        assert self._core().has_vector
        assert not self._core(vector=VectorUnit(VectorStandard.NONE, 0)).has_vector

    def test_ipc_cannot_exceed_issue_width(self):
        with pytest.raises(ValueError):
            self._core(sustained_ipc=9.0)

    def test_scalar_flops_positive(self):
        assert self._core().scalar_flops_per_cycle() > 0

    def test_peak_vector_flops(self):
        assert self._core().peak_vector_flops_per_cycle() == 2.0

    def test_riscv_isa_flag(self):
        assert ISA.RV64GCV.is_riscv
        assert not ISA.X86_64.is_riscv
