"""DDR generation math: bandwidth, latency, names, validation."""

import pytest

from repro.machines.ddr import DDRGeneration, DDRSpec, ddr4, ddr5, lpddr4


class TestDDRSpec:
    def test_marketing_name(self):
        assert ddr4(3200).name == "DDR4-3200"
        assert ddr5(4266).name == "DDR5-4266"
        assert lpddr4(2800).name == "LPDDR4-2800"

    def test_ddr4_channel_peak_bandwidth(self):
        # 64-bit bus at 3200 MT/s = 25.6 GB/s.
        assert ddr4(3200).channel_peak_bw_gbs == pytest.approx(25.6)

    def test_ddr5_subchannel_peak_bandwidth(self):
        # DDR5 channels are modelled as 32-bit sub-channels.
        assert ddr5(4266).channel_peak_bw_gbs == pytest.approx(17.064)

    def test_sustained_below_peak(self):
        for spec in (ddr4(3200), ddr5(4266), lpddr4(2666)):
            assert spec.channel_sustained_bw_gbs < spec.channel_peak_bw_gbs

    def test_ddr5_more_efficient_than_lpddr4(self):
        assert (
            DDRGeneration.DDR5.typical_efficiency
            > DDRGeneration.LPDDR4.typical_efficiency
        )

    def test_default_cas_latency_filled_in(self):
        assert ddr4(3200).cas_latency_ns == pytest.approx(13.75)
        assert ddr5(4266).cas_latency_ns == pytest.approx(16.0)

    def test_explicit_cas_latency_respected(self):
        assert ddr4(3200, cas_latency_ns=16.0).cas_latency_ns == 16.0

    def test_random_latency_exceeds_cas(self):
        spec = ddr4(3200)
        assert spec.random_access_latency_ns > spec.cas_latency_ns

    def test_random_throughput_positive_and_finite(self):
        rate = ddr5(4266).random_requests_per_second()
        assert 1e6 < rate < 1e9

    def test_faster_transfer_means_more_bandwidth(self):
        assert ddr4(3200).channel_peak_bw_gbs > ddr4(2666).channel_peak_bw_gbs

    @pytest.mark.parametrize("mts", [0, -100])
    def test_rejects_nonpositive_rate(self, mts):
        with pytest.raises(ValueError):
            ddr4(mts)

    def test_rejects_negative_cas(self):
        with pytest.raises(ValueError):
            DDRSpec(DDRGeneration.DDR4, 3200, cas_latency_ns=-1.0)
