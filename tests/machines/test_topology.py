"""Topology: cluster/NUMA coordinates and placements."""

import pytest

from repro.machines.topology import Topology


class TestTopology:
    def test_sophon_layout(self):
        t = Topology(total_cores=64, cores_per_cluster=4)
        assert t.n_clusters == 16
        assert t.location(0).cluster_id == 0
        assert t.location(5).cluster_id == 1
        assert t.location(63).cluster_id == 15

    def test_numa_assignment(self):
        t = Topology(total_cores=64, cores_per_cluster=4, numa_regions=4)
        assert t.cores_per_numa == 16
        assert t.location(0).numa_id == 0
        assert t.location(17).numa_id == 1
        assert t.location(63).numa_id == 3

    def test_iter_cores_covers_everything(self):
        t = Topology(total_cores=8, cores_per_cluster=4)
        assert [c.core_id for c in t.iter_cores()] == list(range(8))

    def test_compact_placement(self):
        t = Topology(total_cores=16, cores_per_cluster=4)
        assert t.compact_placement(6) == [0, 1, 2, 3, 4, 5]

    def test_spread_placement_covers_clusters_first(self):
        t = Topology(total_cores=16, cores_per_cluster=4)
        placement = t.spread_placement(4)
        assert sorted(t.location(c).cluster_id for c in placement) == [0, 1, 2, 3]

    def test_spread_minimises_cluster_occupancy(self):
        t = Topology(total_cores=64, cores_per_cluster=4)
        assert t.max_cluster_occupancy(t.spread_placement(16)) == 1
        assert t.max_cluster_occupancy(t.compact_placement(16)) == 4

    def test_numa_spread_counts(self):
        t = Topology(total_cores=8, cores_per_cluster=2, numa_regions=2)
        assert t.numa_spread([0, 1, 4, 5]) == [2, 2]

    def test_cluster_straddling_numa_rejected(self):
        with pytest.raises(ValueError):
            Topology(total_cores=12, cores_per_cluster=4, numa_regions=2)

    def test_indivisible_clusters_rejected(self):
        with pytest.raises(ValueError):
            Topology(total_cores=10, cores_per_cluster=4)

    def test_out_of_range_core_rejected(self):
        with pytest.raises(ValueError):
            Topology(total_cores=4).location(4)

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ValueError):
            Topology(total_cores=4).compact_placement(5)
