"""Shared fixtures: noise-free runners and small cached model objects."""

import pytest

from repro.core.experiment import ExperimentRunner
from repro.core.perfmodel import PerformanceModel


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden telemetry snapshots under tests/obs/golden/",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should rewrite golden snapshots instead of diffing."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def model() -> PerformanceModel:
    """One calibrated model reused across the whole test session."""
    return PerformanceModel()


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Noise-free runner so assertions are exact and fast."""
    return ExperimentRunner(noise_cv=0.0)


@pytest.fixture(scope="session")
def noisy_runner() -> ExperimentRunner:
    """Default runner with the paper's five-run noisy protocol."""
    return ExperimentRunner()
