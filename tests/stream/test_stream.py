"""STREAM: host kernels and the modelled Figure 1 curves."""

import pytest

from repro.machines import get_machine
from repro.stream import STREAM_KERNELS, modelled_bandwidth, run_stream_host


class TestHostStream:
    @pytest.fixture(scope="class")
    def results(self):
        return run_stream_host(n_elements=200_000, trials=3)

    def test_all_four_kernels(self, results):
        assert [r.kernel for r in results] == list(STREAM_KERNELS)

    def test_all_verified(self, results):
        assert all(r.verified for r in results)

    def test_positive_bandwidth(self, results):
        for r in results:
            assert r.bandwidth_gbs > 0.01

    def test_traffic_accounting(self, results):
        by_kernel = {r.kernel: r for r in results}
        # add/triad move 3 arrays, copy/scale 2: same array size.
        assert by_kernel["add"].array_bytes == by_kernel["copy"].array_bytes

    def test_tiny_array_rejected(self):
        with pytest.raises(ValueError):
            run_stream_host(n_elements=10)


class TestModelledBandwidth:
    def test_monotone_in_cores(self):
        m = get_machine("sg2044")
        bws = [modelled_bandwidth(m, n) for n in (1, 2, 4, 8, 16, 32, 64)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_triad_slightly_below_copy(self):
        m = get_machine("sg2044")
        assert modelled_bandwidth(m, 64, "triad") < modelled_bandwidth(m, 64, "copy")

    def test_figure1_plateau_and_ratio(self):
        m42, m44 = get_machine("sg2042"), get_machine("sg2044")
        # Similar up to 8 cores...
        assert modelled_bandwidth(m42, 8) == pytest.approx(
            modelled_bandwidth(m44, 8), rel=0.15
        )
        # ... >3x apart at 64.
        ratio = modelled_bandwidth(m44, 64) / modelled_bandwidth(m42, 64)
        assert ratio > 2.7

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            modelled_bandwidth(get_machine("sg2044"), 1, "quadruple")

    def test_core_count_validated(self):
        with pytest.raises(ValueError):
            modelled_bandwidth(get_machine("skylake8170"), 64)
