"""The megagrid planner: bit-identity with the per-family path.

The planner's whole contract is *exactness*: results, DNR entries,
telemetry counters and the span tree must all be indistinguishable from
the per-family execution it replaces -- across random subgrids
(property-based), under process sharding, and for the subgrid-containment
fast path in the single-flight table.
"""

import random
import threading
import time

import pytest

from repro import obs
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.plan import PlanNotApplicable, plan_groups
from repro.core.sweep import SweepEngine, _fork_available, expand_grid
from repro.faults import SweepJournal
from repro.machines.catalog import get_machine

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test extra
    HAVE_HYPOTHESIS = False

_MACHINES = ("sg2044", "sg2042", "epyc7742", "skylake8170", "thunderx2", "allwinner-d1")
_KERNELS = ("is", "mg", "ep", "cg", "ft", "bt", "lu", "sp")
_THREADS = (1, 2, 4, 8, 16, 26, 32, 64)
_SEEDS = (0, 1, 7, 42, 1234, 65535)


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Tests install their own recorders; never leak one across tests."""
    yield
    obs.disable()


def _random_grid(rng: random.Random) -> list[ExperimentConfig]:
    """A random subgrid: 1-4 families, threads capped per machine."""
    configs: list[ExperimentConfig] = []
    for _ in range(rng.randint(1, 4)):
        machine = rng.choice(_MACHINES)
        n_cores = get_machine(machine).n_cores
        threads = [t for t in _THREADS if t <= n_cores]
        picked = rng.sample(threads, rng.randint(1, len(threads)))
        kernel = rng.choice(_KERNELS)
        for n in sorted(picked):
            configs.append(
                ExperimentConfig(
                    machine=machine,
                    kernel=kernel,
                    npb_class=rng.choice("ABC"),
                    n_threads=n,
                    vectorise=rng.choice((True, False)),
                )
            )
    return configs


def _run_recorded(engine: SweepEngine, grid):
    """Run a grid under a fresh recorder; return (results, counters, spans)."""
    rec = obs.install()
    try:
        results = engine.run_many(grid, on_dnr="none")
    finally:
        obs.disable()
    assert rec.quiescent()
    return results, rec.counters_snapshot(), rec.span_tree()


def _assert_differential(grid):
    """Planner engine vs per-family engine: everything bit-identical."""
    planned = SweepEngine(runner=ExperimentRunner(), jobs=1, planner=True)
    family = SweepEngine(runner=ExperimentRunner(), jobs=1, planner=False)
    p_results, p_counters, p_spans = _run_recorded(planned, grid)
    f_results, f_counters, f_spans = _run_recorded(family, grid)
    assert p_results == f_results
    assert p_counters == f_counters
    assert p_spans == f_spans


class TestPlannerDifferential:
    if HAVE_HYPOTHESIS:

        @settings(max_examples=6, deadline=None, derandomize=True)
        @given(seed=st.integers(min_value=0, max_value=2**16))
        def test_random_subgrid_bit_identical(self, seed):
            self._check(seed)

    else:  # pragma: no cover - hypothesis always present in CI

        @pytest.mark.parametrize("seed", _SEEDS)
        def test_random_subgrid_bit_identical(self, seed):
            self._check(seed)

    def _check(self, seed):
        _assert_differential(_random_grid(random.Random(seed)))

    def test_dnr_family_bit_identical(self):
        """The D1's FT DNR must flow through the planner unchanged."""
        grid = [
            ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B"),
            ExperimentConfig(machine="sg2044", kernel="ft", npb_class="B"),
        ]
        planned = SweepEngine(runner=ExperimentRunner(), jobs=1, planner=True)
        family = SweepEngine(runner=ExperimentRunner(), jobs=1, planner=False)
        p, _, _ = _run_recorded(planned, grid)
        f, _, _ = _run_recorded(family, grid)
        assert p == f
        assert p[0] is None and p[1] is not None
        # And the DNR message itself is the per-family one, verbatim.
        with pytest.raises(Exception) as a:
            planned.run(grid[0])
        with pytest.raises(Exception) as b:
            family.run(grid[0])
        assert str(a.value) == str(b.value)

    def test_subclassed_runner_rejected(self):
        class Custom(ExperimentRunner):
            pass

        grid = expand_grid(("sg2044",), ("is",), classes="C", thread_counts=(1, 2))
        groups = [grid]
        with pytest.raises(PlanNotApplicable):
            plan_groups(Custom(), groups)

    def test_planner_matches_engine_error_on_invalid_threads(self):
        bad = ExperimentConfig(machine="sg2042", kernel="is", n_threads=128)
        with pytest.raises(ValueError) as planned_err:
            SweepEngine(runner=ExperimentRunner(), jobs=1, planner=True).run_many([bad])
        with pytest.raises(ValueError) as family_err:
            SweepEngine(runner=ExperimentRunner(), jobs=1, planner=False).run_many([bad])
        assert str(planned_err.value) == str(family_err.value)


@pytest.mark.skipif(not _fork_available(), reason="needs the fork start method")
class TestProcessSharding:
    def test_sharded_bit_identical_and_sidecars_merged(self, tmp_path):
        grid = expand_grid(
            ("sg2044", "sg2042"),
            ("is", "mg", "ep", "cg", "ft"),
            classes="C",
            thread_counts=(1, 8, 64),
        )
        journal_path = tmp_path / "sweep.journal"
        sharded = SweepEngine(runner=ExperimentRunner(), jobs=1, procs=2)
        sharded.attach_journal(SweepJournal(journal_path))
        family = SweepEngine(runner=ExperimentRunner(), jobs=1, planner=False)
        s_results, s_counters, s_spans = _run_recorded(sharded, grid)
        f_results, f_counters, f_spans = _run_recorded(family, grid)
        assert s_results == f_results
        assert s_counters == f_counters
        assert s_spans == f_spans
        # Per-shard sidecar journals are folded into the main journal and
        # removed; a fresh engine resuming from it serves pure cache hits.
        assert list(tmp_path.glob("sweep.journal.shard*")) == []
        resumed = SweepEngine(runner=ExperimentRunner(), jobs=1)
        resumed.attach_journal(SweepJournal(journal_path))
        r_results = resumed.run_many(grid, on_dnr="none")
        assert r_results == s_results
        assert resumed.misses == 0
        assert resumed.hits == len(grid)


class GatedRunner(ExperimentRunner):
    """Blocks every family execution on a gate and logs the batches."""

    def __init__(self, gate, **kw):
        super().__init__(**kw)
        self.gate = gate
        self.calls = []
        self.calls_lock = threading.Lock()

    def run_many(self, configs):
        with self.calls_lock:
            self.calls.append(list(configs))
        assert self.gate.wait(timeout=30)
        return super().run_many(configs)


class TestSubgridContainment:
    def test_contained_requests_never_double_execute(self):
        """8 threads riding one in-flight super-sweep: zero re-execution."""
        gate = threading.Event()
        runner = GatedRunner(gate)  # subclass: forces the per-family path
        engine = SweepEngine(runner=runner, jobs=1, planner=True)
        grid = expand_grid(
            ("sg2044",), ("is", "mg"), classes="C", thread_counts=(1, 2, 4, 8)
        )
        rec = obs.install()
        try:
            super_results: list = []
            super_thread = threading.Thread(
                target=lambda: super_results.extend(engine.run_many(grid))
            )
            super_thread.start()
            # Wait until the super-sweep has claimed its keys and is
            # blocked inside its first family.
            deadline = time.monotonic() + 30
            while not runner.calls and time.monotonic() < deadline:
                time.sleep(0.001)
            assert runner.calls, "super-sweep never started executing"

            subgrids = [grid[i % len(grid) :] for i in range(8)]
            sub_results: dict[int, list] = {}

            def rider(i):
                sub_results[i] = engine.run_many(subgrids[i])

            riders = [
                threading.Thread(target=rider, args=(i,)) for i in range(8)
            ]
            for t in riders:
                t.start()
            # Every rider's key-set is contained in the super-sweep, so all
            # 8 must take the containment path before anything executes.
            while (
                rec.counters_snapshot().get("sweep.containment_waits", 0) < 8
                and time.monotonic() < deadline
            ):
                time.sleep(0.001)
        finally:
            gate.set()
        super_thread.join(timeout=30)
        for t in riders:
            t.join(timeout=30)
        assert not super_thread.is_alive()
        assert rec.counters_snapshot().get("sweep.containment_waits", 0) == 8
        # Each family ran exactly once: the riders recomputed nothing.
        assert len(runner.calls) == 2
        assert sorted(len(c) for c in runner.calls) == [4, 4]
        for i, sub in enumerate(subgrids):
            assert sub_results[i] == super_results[len(grid) - len(sub) :]
        # The single-flight tables drained completely.
        assert engine._inflight == {}
        assert engine._inflight_sweeps == {}
        obs.disable()
