"""Derived-metric helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    crossover_threads,
    parallel_efficiency,
    percent_of,
    speedup_curve,
    times_faster,
)


class TestTimesFaster:
    def test_paper_headline_value(self):
        assert times_faster(3038.14, 618.50) == pytest.approx(4.91, abs=0.005)

    @given(a=st.floats(0.01, 1e9), b=st.floats(0.01, 1e9))
    def test_antisymmetry(self, a, b):
        assert times_faster(a, b) * times_faster(b, a) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            times_faster(0.0, 1.0)


class TestPercentOf:
    def test_table2_style(self):
        # Milk-V Jupyter EP: 20.4 of the SG2044's 40.75 -> 50%.
        assert percent_of(20.4, 40.75) == pytest.approx(50.06, abs=0.01)

    def test_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            percent_of(1.0, 0.0)


class TestSpeedupCurves:
    CURVE = [(1, 100.0), (2, 190.0), (4, 360.0)]

    def test_speedup(self):
        assert speedup_curve(self.CURVE) == [(1, 1.0), (2, 1.9), (4, 3.6)]

    def test_efficiency(self):
        eff = dict(parallel_efficiency(self.CURVE))
        assert eff[1] == 1.0
        assert eff[4] == pytest.approx(0.9)

    def test_requires_single_thread_point(self):
        with pytest.raises(ValueError):
            speedup_curve([(2, 100.0)])


class TestCrossover:
    def test_finds_first_overtake(self):
        a = [(1, 10.0), (2, 30.0), (4, 80.0)]
        b = [(1, 20.0), (2, 25.0), (4, 50.0)]
        assert crossover_threads(a, b) == 2

    def test_none_when_never_overtakes(self):
        a = [(1, 10.0), (2, 20.0)]
        b = [(1, 20.0), (2, 40.0)]
        assert crossover_threads(a, b) is None

    def test_only_common_points_compared(self):
        a = [(1, 10.0), (64, 1000.0)]
        b = [(1, 20.0), (32, 500.0)]
        assert crossover_threads(a, b) is None
