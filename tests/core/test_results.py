"""Result-record aggregation."""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.core.results import ExperimentResult, RunSample
from repro.compilers.gcc import get_compiler
from repro.machines.catalog import get_machine
from repro.npb.signatures import signature_for


def _result(samples):
    pred = PerformanceModel().predict(
        get_machine("sg2044"), signature_for("ep", "C"), get_compiler("gcc-15.2"), 1
    )
    return ExperimentResult(
        machine="sg2044",
        kernel="ep",
        npb_class="C",
        n_threads=1,
        compiler="gcc-15.2",
        vectorised=True,
        samples=tuple(samples),
        prediction=pred,
    )


class TestExperimentResult:
    def test_means(self):
        r = _result([RunSample(0, 1.0, 100.0), RunSample(1, 2.0, 200.0)])
        assert r.mean_mops == 150.0
        assert r.mean_time_s == 1.5

    def test_dispersion(self):
        r = _result([RunSample(0, 1.0, 100.0), RunSample(1, 1.0, 102.0)])
        assert r.stdev_mops == pytest.approx(1.4142, abs=1e-3)
        assert 0 < r.cv_percent < 2

    def test_single_sample_zero_stdev(self):
        r = _result([RunSample(0, 1.0, 100.0)])
        assert r.stdev_mops == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            _result([])
