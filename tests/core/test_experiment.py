"""The experiment runner: protocol, noise, determinism."""

import pytest

from repro.core.experiment import DEFAULT_RUNS, ExperimentConfig, ExperimentRunner
from repro.core.perfmodel import DNRError


class TestConfig:
    def test_defaults_match_paper_protocol(self):
        cfg = ExperimentConfig(machine="sg2044", kernel="ep")
        assert cfg.runs == DEFAULT_RUNS == 5
        assert cfg.npb_class == "C"

    def test_with_threads_clones(self):
        cfg = ExperimentConfig(machine="sg2044", kernel="ep")
        assert cfg.with_threads(64).n_threads == 64
        assert cfg.n_threads == 1

    def test_resolved_compiler_uses_paper_default(self):
        assert ExperimentConfig(machine="sg2042", kernel="ep").resolved_compiler() == "xuantie-gcc-8.4"
        assert (
            ExperimentConfig(machine="sg2042", kernel="ep", compiler="gcc-15.2").resolved_compiler()
            == "gcc-15.2"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(machine="x", kernel="ep", n_threads=0)
        with pytest.raises(ValueError):
            ExperimentConfig(machine="x", kernel="ep", runs=0)


class TestRunner:
    def test_five_samples(self, noisy_runner):
        res = noisy_runner.run(ExperimentConfig(machine="sg2044", kernel="ep"))
        assert len(res.samples) == 5

    def test_deterministic_across_runner_instances(self):
        cfg = ExperimentConfig(machine="sg2044", kernel="mg", n_threads=16)
        a = ExperimentRunner().run(cfg)
        b = ExperimentRunner().run(cfg)
        assert a.mean_mops == b.mean_mops
        assert [s.mops for s in a.samples] == [s.mops for s in b.samples]

    def test_different_seeds_differ(self):
        cfg = ExperimentConfig(machine="sg2044", kernel="mg", n_threads=16)
        a = ExperimentRunner(seed=1).run(cfg)
        b = ExperimentRunner(seed=2).run(cfg)
        assert a.mean_mops != b.mean_mops

    def test_noise_dispersion_reasonable(self, noisy_runner):
        res = noisy_runner.run(
            ExperimentConfig(machine="sg2044", kernel="mg", n_threads=64, runs=5)
        )
        assert 0.0 < res.cv_percent < 15.0

    def test_zero_noise_means_identical_samples(self, runner):
        res = runner.run(ExperimentConfig(machine="sg2044", kernel="ep"))
        assert res.stdev_mops == 0.0

    def test_sweep_threads(self, runner):
        cfg = ExperimentConfig(machine="sg2044", kernel="ep")
        sweep = runner.sweep_threads(cfg, [1, 2, 4])
        assert [r.n_threads for r in sweep] == [1, 2, 4]
        assert sweep[2].mean_mops > sweep[0].mean_mops

    def test_dnr_propagates(self, runner):
        with pytest.raises(DNRError):
            runner.run(
                ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
            )

    def test_summary_mentions_config(self, runner):
        res = runner.run(ExperimentConfig(machine="sg2044", kernel="ep"))
        assert "EP.C" in res.summary()
        assert "sg2044" in res.summary()

    def test_bad_noise_cv_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(noise_cv=0.5)


class TestBatchedNoiseSampling:
    def test_matches_per_run_scalar_draws(self, noisy_runner):
        """The vectorised lognormal draw reproduces the seed loop exactly."""
        import hashlib

        import numpy as np

        config = ExperimentConfig(machine="sg2044", kernel="is", n_threads=64)
        result = noisy_runner.run(config)

        # Reference: the original per-run scalar-draw loop.
        key = (
            f"{noisy_runner.seed}|{config.machine}|{config.kernel}"
            f"|{config.npb_class}|{config.n_threads}"
            f"|{config.resolved_compiler()}|{config.vectorise}"
        )
        digest = hashlib.sha256(key.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        cv = noisy_runner.noise_cv * (1.0 + 0.3 * np.log2(config.n_threads + 1))
        expected = [
            result.prediction.time_s * float(rng.lognormal(mean=0.0, sigma=cv))
            for _ in range(config.runs)
        ]
        assert [s.time_s for s in result.samples] == expected


class TestRunMany:
    def test_groups_share_one_batched_prediction(self, runner):
        configs = [
            ExperimentConfig(machine=m, kernel=k, n_threads=n)
            for m in ("sg2044", "sg2042")
            for k in ("ep", "mg")
            for n in (1, 8, 64)
        ]
        batched = runner.run_many(configs)
        assert batched == [runner.run(c) for c in configs]

    def test_empty(self, runner):
        assert runner.run_many([]) == []
