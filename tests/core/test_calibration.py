"""Calibration anchors: provenance and reproduction of single-core points."""

import pytest

from repro.core.calibration import ANCHORS, Anchor, anchor_for, calibration_factors
from repro.core.perfmodel import PerformanceModel
from repro.machines.catalog import get_machine, machine_names
from repro.npb.params import ALL_BENCHMARKS


class TestAnchorTable:
    def test_anchor_lookup(self):
        a = anchor_for("sg2044", "ep")
        assert a is not None
        assert a.mops == pytest.approx(40.76)
        assert a.npb_class == "C"

    def test_missing_anchor_is_none(self):
        assert anchor_for("allwinner-d1", "bt") is None

    def test_sg2044_cg_anchor_is_novec(self):
        # The paper measures CG unvectorised (Section 6).
        assert anchor_for("sg2044", "cg").vectorise is False

    def test_all_anchor_machines_exist(self):
        names = set(machine_names())
        for machine, kernel in ANCHORS:
            assert machine in names
            assert kernel in ALL_BENCHMARKS

    def test_hpc_anchor_derivation_flagged(self):
        # The x86/Arm single-core values are derived from prose, not tables.
        assert anchor_for("epyc7742", "is").derived
        assert not anchor_for("sg2044", "is").derived

    def test_riscv_board_anchors_are_class_b(self):
        for board in ("visionfive2", "bananapi-f3", "milkv-jupiter"):
            assert anchor_for(board, "ep").npb_class == "B"

    def test_positive_mops_enforced(self):
        with pytest.raises(ValueError):
            Anchor("C", 0.0)


class TestFactors:
    def test_unanchored_pair_is_identity(self):
        model = PerformanceModel()
        alpha, kappa = calibration_factors(
            get_machine("allwinner-d1"), "bt", model
        )
        assert (alpha, kappa) == (1.0, 1.0)

    def test_compute_attribution_for_ep(self):
        model = PerformanceModel()
        alpha, kappa = calibration_factors(get_machine("sg2044"), "ep", model)
        assert kappa == 1.0
        assert alpha > 0

    def test_time_attribution_for_is(self):
        model = PerformanceModel()
        alpha, kappa = calibration_factors(get_machine("sg2044"), "is", model)
        assert alpha == 1.0
        assert kappa > 0


class TestAnchorReproduction:
    """The calibrated model must land every anchored single-core point."""

    @pytest.mark.parametrize(
        "machine,kernel",
        [(m, k) for (m, k) in sorted(ANCHORS)],
    )
    def test_anchor_reproduced(self, machine, kernel, model):
        from repro.compilers.gcc import default_compiler_for, get_compiler
        from repro.npb.signatures import signature_for

        anchor = ANCHORS[(machine, kernel)]
        m = get_machine(machine)
        sig = signature_for(kernel, anchor.npb_class)
        compiler = get_compiler(default_compiler_for(machine))
        pred = model.predict(m, sig, compiler, 1, anchor.vectorise)
        assert pred.mops == pytest.approx(anchor.mops, rel=1e-6)
