"""Cross-cutting model invariants, property-tested over the catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compilers.gcc import default_compiler_for, get_compiler
from repro.core.perfmodel import DNRError, PerformanceModel
from repro.machines.catalog import PAPER_HPC_MACHINES, get_machine, machine_names
from repro.npb.params import ALL_BENCHMARKS
from repro.npb.signatures import signature_for

MODEL = PerformanceModel()


def predict(machine_name, kernel, n, npb_class="C", vectorise=None):
    machine = get_machine(machine_name)
    if vectorise is None:
        vectorise = kernel != "cg"
    return MODEL.predict(
        machine,
        signature_for(kernel, npb_class),
        get_compiler(default_compiler_for(machine_name)),
        n,
        vectorise,
    )


class TestMonotonicity:
    @pytest.mark.parametrize("machine", PAPER_HPC_MACHINES)
    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
    def test_time_essentially_never_increases_with_threads(self, machine, kernel):
        # Halo-exchange volume grows ~n^(2/3), so a saturated machine may
        # dip a couple of percent at full occupancy (the paper's own
        # SG2042 curves flatten the same way); anything beyond 2% per
        # step would be a model bug.
        cores = get_machine(machine).n_cores
        counts = [n for n in (1, 2, 4, 8, 16, 32, 64) if n <= cores]
        times = [predict(machine, kernel, n).time_s for n in counts]
        running_min = times[0]
        for t in times[1:]:
            assert t <= running_min * 1.05
            running_min = min(running_min, t)

    @pytest.mark.parametrize("machine", PAPER_HPC_MACHINES)
    @pytest.mark.parametrize("kernel", ["is", "mg", "ep", "cg", "ft"])
    def test_speedup_never_superlinear(self, machine, kernel):
        cores = get_machine(machine).n_cores
        t1 = predict(machine, kernel, 1).time_s
        tn = predict(machine, kernel, cores).time_s
        assert t1 / tn <= cores * 1.001

    @pytest.mark.parametrize("kernel", ["is", "mg", "cg", "ft"])
    def test_larger_class_takes_longer(self, kernel):
        for machine in ("sg2044", "sg2042"):
            tb = predict(machine, kernel, 1, npb_class="B").time_s
            tc = predict(machine, kernel, 1, npb_class="C").time_s
            assert tc > tb


class TestEveryConfigurationIsFinite:
    @pytest.mark.parametrize("machine", sorted(machine_names()))
    @pytest.mark.parametrize("kernel", ALL_BENCHMARKS)
    def test_class_s_everywhere(self, machine, kernel):
        # Class S fits every machine in the catalog, including the D1.
        pred = predict(machine, kernel, 1, npb_class="S")
        assert pred.time_s > 0
        assert pred.mops > 0

    @given(
        n=st.integers(1, 64),
        kernel=st.sampled_from(ALL_BENCHMARKS),
        vec=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_breakdown_always_consistent(self, n, kernel, vec):
        pred = MODEL.predict(
            get_machine("sg2044"),
            signature_for(kernel, "C"),
            get_compiler("gcc-15.2"),
            n,
            vec,
        )
        assert pred.time_s == pytest.approx(
            max(pred.t_compute, pred.t_stream) + pred.t_latency + pred.t_sync,
            rel=1e-9,
        )
        assert pred.t_compute >= 0 and pred.t_latency >= 0


class TestVectorisationNeverChangesMemoryTerms:
    @pytest.mark.parametrize("kernel", ["is", "mg", "ep", "ft"])
    def test_stream_term_vec_invariant(self, kernel):
        vec = predict("sg2044", kernel, 8, vectorise=True)
        novec = predict("sg2044", kernel, 8, vectorise=False)
        assert vec.t_stream == pytest.approx(novec.t_stream, rel=1e-9)
