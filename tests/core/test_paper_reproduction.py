"""End-to-end reproduction assertions: model vs the paper's findings.

These are the headline tests of the repository: every quantitative claim
in the paper's evaluation, checked against the model with documented
tolerances (tight where the point is anchored, loose-but-directional where
it is emergent).
"""

import pytest

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import speedup_curve
from repro.harness import paper
from repro.machines.catalog import get_machine

RUNNER = ExperimentRunner(noise_cv=0.0)


def mops(machine, kernel, n_threads, npb_class="C", **kw):
    kw.setdefault("vectorise", kernel != "cg")
    return RUNNER.run(
        ExperimentConfig(
            machine=machine,
            kernel=kernel,
            npb_class=npb_class,
            n_threads=n_threads,
            **kw,
        )
    ).mean_mops


class TestTable3SingleCore:
    """Anchored: single-core SG2044/SG2042 must match the paper closely."""

    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_sg2044(self, kernel):
        assert mops("sg2044", kernel, 1) == pytest.approx(
            paper.TABLE3[kernel][0], rel=0.02
        )

    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_sg2042(self, kernel):
        assert mops("sg2042", kernel, 1) == pytest.approx(
            paper.TABLE3[kernel][1], rel=0.02
        )


class TestTable4MultiCore:
    """Emergent: the 64-core ratios come from the saturation physics."""

    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_sg2044_absolute_within_tolerance(self, kernel):
        assert mops("sg2044", kernel, 64) == pytest.approx(
            paper.TABLE4[kernel][0], rel=0.30
        )

    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_sg2042_absolute_within_tolerance(self, kernel):
        assert mops("sg2042", kernel, 64) == pytest.approx(
            paper.TABLE4[kernel][1], rel=0.30
        )

    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_times_faster_ratio(self, kernel):
        ratio = mops("sg2044", kernel, 64) / mops("sg2042", kernel, 64)
        pa, pb = paper.TABLE4[kernel]
        assert ratio == pytest.approx(pa / pb, rel=0.30)

    def test_is_benefits_most_ep_least(self):
        # The paper's Section 4 conclusion about Table 4.
        ratios = {
            k: mops("sg2044", k, 64) / mops("sg2042", k, 64)
            for k in paper.KERNELS
        }
        assert max(ratios, key=ratios.get) == "is"
        assert min(ratios, key=ratios.get) == "ep"

    def test_headline_range(self):
        ratios = [
            mops("sg2044", k, 64) / mops("sg2042", k, 64) for k in paper.KERNELS
        ]
        assert 1.3 < min(ratios) < 1.8  # paper: 1.52
        assert 4.0 < max(ratios) < 6.0  # paper: 4.91


class TestTable2Boards:
    """Anchored: the small-board class B points."""

    @pytest.mark.parametrize(
        "machine",
        ["visionfive2", "visionfive1", "hifive-u740", "bananapi-f3", "milkv-jupiter"],
    )
    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_board_anchor(self, machine, kernel):
        expected = paper.TABLE2[kernel][machine]
        assert mops(machine, kernel, 1, npb_class="B") == pytest.approx(
            expected, rel=0.02
        )

    def test_d1_ft_is_dnr(self):
        from repro.core.perfmodel import DNRError

        with pytest.raises(DNRError):
            mops("allwinner-d1", "ft", 1, npb_class="B")

    def test_no_board_reaches_half_the_sg2044_except_ep(self):
        # Section 3: the SpacemiT boards only once reach half the C920v2.
        for kernel in ("is", "mg", "cg", "ft"):
            ref = mops("sg2044", kernel, 1, npb_class="B")
            for board in ("bananapi-f3", "milkv-jupiter"):
                assert mops(board, kernel, 1, npb_class="B") < 0.5 * ref

    def test_jupiter_beats_bananapi_everywhere(self):
        for kernel in paper.KERNELS:
            assert mops("milkv-jupiter", kernel, 1, npb_class="B") > mops(
                "bananapi-f3", kernel, 1, npb_class="B"
            )


class TestTable6PseudoApps:
    """Emergent at > 1 core; checked at the paper's 16-core column."""

    @pytest.mark.parametrize("app", paper.PSEUDO_APPS)
    @pytest.mark.parametrize(
        "machine", ["sg2042", "epyc7742", "skylake8170", "thunderx2"]
    )
    def test_ratio_at_16_cores(self, app, machine):
        expected = paper.TABLE6[app][16][machine]
        base = mops("sg2044", app, 16)
        ratio = mops(machine, app, 16) / base
        assert ratio == pytest.approx(expected, rel=0.20)

    @pytest.mark.parametrize("app", paper.PSEUDO_APPS)
    def test_sg2042_gap_widens_with_cores(self, app):
        # "as the number of cores increases the performance gap with the
        # SG2042 widens"
        r16 = mops("sg2042", app, 16) / mops("sg2044", app, 16)
        r64 = mops("sg2042", app, 64) / mops("sg2044", app, 64)
        assert r64 < r16

    @pytest.mark.parametrize("app", paper.PSEUDO_APPS)
    def test_epyc_gap_narrows_with_cores(self, app):
        # "as the number of cores increases the SG2044 closes the
        # performance gap with the other architectures"
        r16 = mops("epyc7742", app, 16) / mops("sg2044", app, 16)
        r64 = mops("epyc7742", app, 64) / mops("sg2044", app, 64)
        assert r64 < r16


class TestTables7And8Compilers:
    @pytest.mark.parametrize("kernel", paper.KERNELS)
    def test_single_core_all_columns(self, kernel):
        old, vec, novec = paper.TABLE7[kernel]
        assert mops(
            "sg2044", kernel, 1, compiler="gcc-12.3.1", vectorise=True
        ) == pytest.approx(old, rel=0.05)
        # The vectorised CG cell is the full-strength pathology; the
        # model lands at ~2.2x slowdown vs the paper's 2.7x, so it gets a
        # wider band (see EXPERIMENTS.md).
        vec_tol = 0.20 if kernel == "cg" else 0.08
        assert mops(
            "sg2044", kernel, 1, compiler="gcc-15.2", vectorise=True
        ) == pytest.approx(vec, rel=vec_tol)
        assert mops(
            "sg2044", kernel, 1, compiler="gcc-15.2", vectorise=False
        ) == pytest.approx(novec, rel=0.05)

    def test_cg_vectorised_three_times_slower_single_core(self):
        vec = mops("sg2044", "cg", 1, compiler="gcc-15.2", vectorise=True)
        novec = mops("sg2044", "cg", 1, compiler="gcc-15.2", vectorise=False)
        assert 1.8 < novec / vec < 3.2  # paper: ~2.7

    def test_cg_vectorised_penalty_smaller_at_64_cores(self):
        vec = mops("sg2044", "cg", 64, compiler="gcc-15.2", vectorise=True)
        novec = mops("sg2044", "cg", 64, compiler="gcc-15.2", vectorise=False)
        assert 1.4 < novec / vec < 2.2  # paper: 1.73

    def test_is_gcc12_penalty_appears_only_at_scale(self):
        # Table 7 vs Table 8: parity at one core, ~26% at 64.
        r1 = mops("sg2044", "is", 1, compiler="gcc-12.3.1") / mops(
            "sg2044", "is", 1, compiler="gcc-15.2"
        )
        r64 = mops("sg2044", "is", 64, compiler="gcc-12.3.1") / mops(
            "sg2044", "is", 64, compiler="gcc-15.2"
        )
        assert r1 > 0.95
        assert r64 < 0.85

    @pytest.mark.parametrize("kernel", ["is", "mg", "ep", "ft"])
    def test_gcc15_never_slower_at_64_cores(self, kernel):
        new = mops("sg2044", kernel, 64, compiler="gcc-15.2", vectorise=True)
        old = mops("sg2044", kernel, 64, compiler="gcc-12.3.1", vectorise=True)
        assert new >= old * 0.999


class TestFigureShapes:
    """The qualitative claims attached to Figures 1-6."""

    def test_fig1_stream_similar_up_to_8_cores(self):
        from repro.stream import modelled_bandwidth

        for n in (1, 2, 4, 8):
            bw44 = modelled_bandwidth(get_machine("sg2044"), n)
            bw42 = modelled_bandwidth(get_machine("sg2042"), n)
            assert bw44 == pytest.approx(bw42, rel=0.15)

    def test_fig1_sg2042_plateaus_sg2044_scales(self):
        from repro.stream import modelled_bandwidth

        m42, m44 = get_machine("sg2042"), get_machine("sg2044")
        assert modelled_bandwidth(m42, 64) < 1.15 * modelled_bandwidth(m42, 16)
        assert modelled_bandwidth(m44, 64) > 2.0 * modelled_bandwidth(m44, 8)

    def test_fig1_over_three_times_at_64(self):
        from repro.stream import modelled_bandwidth

        ratio = modelled_bandwidth(get_machine("sg2044"), 64) / modelled_bandwidth(
            get_machine("sg2042"), 64
        )
        assert 2.7 < ratio < 3.6  # paper: "over three times"

    def test_fig2_is_sg2042_plateaus_at_16(self):
        assert mops("sg2042", "is", 64) < 1.25 * mops("sg2042", "is", 16)

    def test_fig2_is_sg2044_keeps_scaling(self):
        assert mops("sg2044", "is", 64) > 2.5 * mops("sg2044", "is", 16)

    def test_fig2_epyc_and_skylake_lead_single_core(self):
        # "the AMD EPYC delivers around twice the performance of the
        # SG2044 and the Intel Skylake around three times"
        base = mops("sg2044", "is", 1)
        assert mops("epyc7742", "is", 1) == pytest.approx(2.0 * base, rel=0.15)
        assert mops("skylake8170", "is", 1) == pytest.approx(3.0 * base, rel=0.15)

    def test_fig3_mg_whole_chip_competitive(self):
        # 64-core SG2044 comparable to 26-core Skylake / 32-core TX2.
        sg = mops("sg2044", "mg", 64)
        assert sg > 0.8 * mops("skylake8170", "mg", 26)
        assert sg > 0.8 * mops("thunderx2", "mg", 32)
        # ... whereas the SG2042 falls behind considerably.
        assert mops("sg2042", "mg", 64) < 0.6 * sg

    def test_fig4_ep_sg2044_tracks_skylake_core_for_core(self):
        for n in (1, 4, 16):
            assert mops("sg2044", "ep", n) == pytest.approx(
                mops("skylake8170", "ep", n), rel=0.15
            )

    def test_fig4_ep_two_groupings(self):
        # TX2 groups with the SG2042, EPYC with the Skylake.
        assert mops("thunderx2", "ep", 16) == pytest.approx(
            mops("sg2042", "ep", 16), rel=0.25
        )
        assert mops("epyc7742", "ep", 16) == pytest.approx(
            mops("skylake8170", "ep", 16), rel=0.25
        )

    def test_fig5_cg_tx2_wins_core_for_core_loses_whole_chip(self):
        assert mops("thunderx2", "cg", 1) > mops("sg2044", "cg", 1)
        assert mops("thunderx2", "cg", 16) > mops("sg2044", "cg", 16)
        assert mops("sg2044", "cg", 64) > mops("thunderx2", "cg", 32)

    def test_fig5_cg_gap_to_sg2042_builds_from_32_threads(self):
        r8 = mops("sg2044", "cg", 8) / mops("sg2042", "cg", 8)
        r64 = mops("sg2044", "cg", 64) / mops("sg2042", "cg", 64)
        assert r8 < 1.5
        assert r64 > 1.8

    def test_fig6_ft_parallel_trajectories(self):
        s42 = dict(
            speedup_curve([(n, mops("sg2042", "ft", n)) for n in (1, 8, 64)])
        )
        s44 = dict(
            speedup_curve([(n, mops("sg2044", "ft", n)) for n in (1, 8, 64)])
        )
        # Similar speedup shape (within 2.5x at 64), offset in absolute rate.
        assert s44[64] / s42[64] < 2.5
        assert mops("sg2044", "ft", 64) > mops("sg2042", "ft", 64)


class TestNUMAEffects:
    def test_epyc_keeps_ep_lead_at_full_chip(self):
        # Figure 4: the SG2044 follows the EPYC's trajectory "albeit at
        # slightly lower performance in absolute terms" -- EP has no DRAM
        # traffic, so the EPYC's NUMA penalty must not apply to it.
        assert mops("epyc7742", "ep", 64) > mops("sg2044", "ep", 64)

    def test_epyc_numa_penalty_does_apply_to_memory_kernels(self):
        m = get_machine("epyc7742")
        assert m.parallel_efficiency(64, numa_sensitive=True) < m.parallel_efficiency(
            64, numa_sensitive=False
        )
