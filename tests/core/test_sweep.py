"""Sweep engine: batched prediction equivalence, memoisation, parallelism."""

import pytest

from repro.compilers.gcc import get_compiler
from repro.core.experiment import DEFAULT_RUNS, ExperimentConfig, ExperimentRunner
from repro.core.perfmodel import DNRError, PerformanceModel
from repro.core.sweep import SweepEngine, clear_caches, expand_grid, paper_vectorise
from repro.machines.catalog import get_machine
from repro.npb.signatures import signature_for

THREADS = (1, 2, 4, 8, 16, 26, 32, 64)
MACHINES = ("sg2044", "sg2042", "epyc7742")
KERNELS = ("is", "mg", "ep", "cg", "ft")


class TestPredictBatch:
    def test_matches_predict_elementwise(self, model):
        compiler = get_compiler("gcc-15.2")
        for machine_name in MACHINES:
            machine = get_machine(machine_name)
            sigs = [signature_for(k, "C") for k in KERNELS]
            batch = model.predict_batch(machine, sigs, compiler, THREADS)
            loop = [
                model.predict(machine, sig, compiler, n)
                for sig in sigs
                for n in THREADS
            ]
            # Full dataclass equality: every float field bit-identical.
            assert batch == loop

    def test_single_signature_accepted(self, model):
        compiler = get_compiler("gcc-15.2")
        machine = get_machine("sg2044")
        sig = signature_for("mg", "C")
        batch = model.predict_batch(machine, sig, compiler, (1, 64))
        assert [p.n_threads for p in batch] == [1, 64]
        assert batch[0] == model.predict(machine, sig, compiler, 1)

    def test_empty_grid(self, model):
        compiler = get_compiler("gcc-15.2")
        machine = get_machine("sg2044")
        assert model.predict_batch(machine, [], compiler, (1,)) == []
        sig = signature_for("mg", "C")
        assert model.predict_batch(machine, sig, compiler, ()) == []

    def test_invalid_thread_count_raises(self, model):
        compiler = get_compiler("gcc-15.2")
        machine = get_machine("sg2044")
        sig = signature_for("mg", "C")
        with pytest.raises(ValueError, match="cores"):
            model.predict_batch(machine, sig, compiler, (1, 65))

    def test_dnr_raises(self, model):
        compiler = get_compiler("gcc-15.2")
        machine = get_machine("allwinner-d1")
        sig = signature_for("ft", "B")
        with pytest.raises(DNRError):
            model.predict_batch(machine, sig, compiler, (1,))

    def test_uncalibrated_matches_too(self):
        model = PerformanceModel(calibrate=False)
        compiler = get_compiler("gcc-12.3.1")
        machine = get_machine("sg2042")
        sig = signature_for("cg", "C")
        batch = model.predict_batch(machine, sig, compiler, THREADS, vectorise=False)
        loop = [
            model.predict(machine, sig, compiler, n, vectorise=False)
            for n in THREADS
        ]
        assert batch == loop


class TestExpandGrid:
    def test_cross_product_and_order(self):
        grid = expand_grid(("sg2044", "sg2042"), ("is", "cg"), thread_counts=(1, 64))
        assert len(grid) == 8
        assert grid[0].machine == "sg2044" and grid[-1].machine == "sg2042"
        # machines outermost, threads innermost
        assert [c.n_threads for c in grid[:2]] == [1, 64]

    def test_cg_vectorise_default(self):
        grid = expand_grid("sg2044", ("is", "cg"))
        by_kernel = {c.kernel: c for c in grid}
        assert by_kernel["is"].vectorise is True
        assert by_kernel["cg"].vectorise is False
        assert paper_vectorise("cg") is False

    def test_explicit_vectorise_overrides(self):
        grid = expand_grid("sg2044", "cg", vectorise=(True, False))
        assert [c.vectorise for c in grid] == [True, False]

    def test_dedup_preserves_first_occurrence(self):
        grid = expand_grid("sg2044", "mg", thread_counts=(1, 64, 1))
        assert [c.n_threads for c in grid] == [1, 64]

    def test_scalar_axes(self):
        grid = expand_grid("sg2044", "mg")
        assert len(grid) == 1
        assert grid[0].runs == DEFAULT_RUNS


class TestSweepEngine:
    def test_matches_serial_runner_exactly(self):
        """The ISSUE's headline: engine == serial loop for the Table 2 grid."""
        from repro.harness import paper
        from repro.machines.catalog import PAPER_RISCV_BOARDS

        grid = expand_grid(
            PAPER_RISCV_BOARDS, paper.KERNELS, classes="B", thread_counts=1
        )
        engine = SweepEngine(jobs=4)
        batched = engine.run_many(grid, on_dnr="none")

        serial_runner = ExperimentRunner()
        serial = []
        for config in grid:
            try:
                serial.append(serial_runner.run(config))
            except DNRError:
                serial.append(None)
        assert batched == serial

    def test_parallel_equals_serial(self):
        grid = expand_grid(("sg2044", "sg2042"), KERNELS, thread_counts=THREADS)
        parallel = SweepEngine(jobs=4).run_many(grid)
        serial = SweepEngine(jobs=1).run_many(grid)
        assert parallel == serial
        assert [r.n_threads for r in parallel] == [c.n_threads for c in grid]

    def test_cache_hit_returns_same_object(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="sg2044", kernel="mg")
        first = engine.run(config)
        second = engine.run(config)
        assert first is second
        assert engine.hits == 1 and engine.misses == 1

    def test_duplicate_configs_in_one_batch(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="sg2044", kernel="ep")
        a, b = engine.run_many([config, config])
        assert a is b
        assert engine.misses == 1 and engine.hits == 1

    def test_clear_cache_evicts(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="sg2044", kernel="mg")
        first = engine.run(config)
        engine.clear_cache()
        second = engine.run(config)
        assert first is not second
        assert first == second  # same seed, same samples

    def test_sweep_threads_matches_runner(self, runner):
        config = ExperimentConfig(machine="sg2044", kernel="cg", vectorise=False)
        engine = SweepEngine(runner)
        via_engine = engine.sweep_threads(config, [1, 4, 16, 64])
        assert via_engine == runner.sweep_threads(config, [1, 4, 16, 64])

    def test_dnr_cached_and_reraised(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        assert engine.try_run(config) is None
        with pytest.raises(DNRError):
            engine.run(config)
        # Second miss never happened: the DNR verdict itself is cached.
        assert engine.misses == 1

    def test_on_dnr_validation(self):
        engine = SweepEngine()
        with pytest.raises(ValueError, match="on_dnr"):
            engine.run_many([], on_dnr="ignore")

    def test_dnr_configs_counter_on_none_path(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        assert engine.dnr_configs == 0
        assert engine.try_run(config) is None
        assert engine.dnr_configs == 1

    def test_dnr_configs_counter_on_raise_path(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        with pytest.raises(DNRError):
            engine.run(config)
        # The counter ticks before the raise: the DNR was still returned
        # to (and observed by) this caller.
        assert engine.dnr_configs == 1

    def test_dnr_configs_counts_cached_replays(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        ok = ExperimentConfig(machine="sg2044", kernel="mg")
        assert engine.run_many([config, ok, config], on_dnr="none") == [
            None,
            engine.run(ok),
            None,
        ]
        assert engine.dnr_configs == 2  # both slots, one cached family
        assert engine.try_run(config) is None  # warm replay still counts
        assert engine.dnr_configs == 3

    def test_clear_cache_resets_dnr_configs(self):
        engine = SweepEngine()
        config = ExperimentConfig(machine="allwinner-d1", kernel="ft", npb_class="B")
        engine.try_run(config)
        assert engine.dnr_configs == 1
        engine.clear_cache()
        assert engine.dnr_configs == 0

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepEngine(jobs=0)

    def test_jobs_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SweepEngine().jobs == 3

    def test_noise_level_in_cache_key(self):
        quiet = SweepEngine(ExperimentRunner(noise_cv=0.0))
        noisy = SweepEngine(ExperimentRunner(noise_cv=0.05))
        config = ExperimentConfig(machine="sg2044", kernel="is")
        assert quiet.cache_key(config) != noisy.cache_key(config)


class TestRunMany:
    def test_matches_run_per_config(self, runner):
        grid = expand_grid("sg2044", KERNELS, thread_counts=(1, 64))
        assert runner.run_many(grid) == [runner.run(c) for c in grid]


class TestClearCaches:
    def test_evicts_process_wide_caches(self):
        from repro.cachesim.trace import build_trace
        from repro.core.sweep import default_engine
        from repro.npb.cg import make_matrix
        from repro.npb.common import NPBClass
        from repro.npb.params import cg_params

        engine = default_engine()
        config = ExperimentConfig(machine="sg2044", kernel="mg")
        first = engine.run(config)
        a1, _ = make_matrix(cg_params(NPBClass.S))
        t1 = build_trace("is", n_accesses=2000, seed=7)[0]

        clear_caches()

        a2, _ = make_matrix(cg_params(NPBClass.S))
        t2 = build_trace("is", n_accesses=2000, seed=7)[0]
        assert a1 is not a2 and (a1 != a2).nnz == 0
        assert t1 is not t2 and (t1 == t2).all()
        second = engine.run(config)
        assert first is not second and first == second
