"""The analytic performance model: invariants and composition."""

import numpy as np
import pytest

from repro.compilers.gcc import get_compiler
from repro.core.perfmodel import DNRError, PerformanceModel
from repro.machines.catalog import get_machine
from repro.npb.signatures import signature_for

GCC15 = get_compiler("gcc-15.2")


@pytest.fixture(scope="module")
def pm():
    return PerformanceModel()


@pytest.fixture(scope="module")
def raw_pm():
    return PerformanceModel(calibrate=False)


class TestBasicPredictions:
    def test_positive_time_and_rate(self, pm):
        p = pm.predict(get_machine("sg2044"), signature_for("ep", "C"), GCC15, 1)
        assert p.time_s > 0
        assert p.mops > 0

    def test_breakdown_composition(self, pm):
        p = pm.predict(get_machine("sg2044"), signature_for("mg", "C"), GCC15, 8)
        assert p.time_s == pytest.approx(
            max(p.t_compute, p.t_stream) + p.t_latency + p.t_sync, rel=1e-9
        )

    def test_more_threads_never_slower(self, pm):
        sig = signature_for("ep", "C")
        m = get_machine("sg2044")
        times = [pm.predict(m, sig, GCC15, n).time_s for n in (1, 2, 4, 8, 16, 32, 64)]
        assert all(t2 <= t1 for t1, t2 in zip(times, times[1:]))

    def test_dominant_term_labels(self, pm):
        ep = pm.predict(get_machine("sg2044"), signature_for("ep", "C"), GCC15, 1)
        assert ep.dominant_term == "compute"
        mg64 = pm.predict(get_machine("sg2044"), signature_for("mg", "C"), GCC15, 64)
        assert mg64.dominant_term == "stream"

    def test_thread_count_validated(self, pm):
        with pytest.raises(ValueError):
            pm.predict(get_machine("skylake8170"), signature_for("ep", "C"), GCC15, 64)


class TestDNR:
    def test_ft_class_b_dnr_on_allwinner_d1(self, pm):
        # The paper's Table 2 "DNR": 1 GB of DRAM cannot hold FT class B.
        with pytest.raises(DNRError, match="GiB"):
            pm.predict(
                get_machine("allwinner-d1"), signature_for("ft", "B"), GCC15, 1
            )

    def test_small_classes_fit_everywhere(self, pm):
        p = pm.predict(get_machine("allwinner-d1"), signature_for("ft", "S"), GCC15, 1)
        assert p.mops > 0


class TestSpillFraction:
    def test_fits_means_trickle(self):
        assert PerformanceModel._spill_fraction(1e6, 2e6) == pytest.approx(0.02)

    def test_overflow_means_full_spill(self):
        assert PerformanceModel._spill_fraction(1e9, 1e6) == 1.0

    def test_sharp_lru_knee(self):
        # 70% coverage of a sweeping working set barely helps.
        at_half = PerformanceModel._spill_fraction(1e6, 0.5e6)
        at_99 = PerformanceModel._spill_fraction(1e6, 0.99e6)
        assert at_half == 1.0
        assert at_99 < 0.1

    def test_monotone_in_cache_size(self):
        spills = [
            PerformanceModel._spill_fraction(1e6, c)
            for c in (1e5, 5e5, 7e5, 9e5, 1e6, 2e6)
        ]
        assert all(s2 <= s1 for s1, s2 in zip(spills, spills[1:]))


class TestVectorisationInModel:
    def test_cg_vec_slower_on_sg2044(self, pm):
        m = get_machine("sg2044")
        sig = signature_for("cg", "C")
        vec = pm.predict(m, sig, GCC15, 1, vectorise=True)
        novec = pm.predict(m, sig, GCC15, 1, vectorise=False)
        assert vec.time_s > 1.8 * novec.time_s  # Section 6 pathology

    def test_mg_vec_faster_on_sg2044(self, pm):
        m = get_machine("sg2044")
        sig = signature_for("mg", "C")
        vec = pm.predict(m, sig, GCC15, 1, vectorise=True)
        novec = pm.predict(m, sig, GCC15, 1, vectorise=False)
        assert vec.time_s < novec.time_s

    def test_gcc12_emits_scalar_with_note(self, pm):
        p = pm.predict(
            get_machine("sg2044"),
            signature_for("mg", "C"),
            get_compiler("gcc-12.3.1"),
            1,
            vectorise=True,
        )
        assert not p.vectorised
        assert any("cannot target" in n for n in p.notes)


class TestCalibration:
    def test_uncalibrated_model_differs(self, pm, raw_pm):
        m = get_machine("sg2044")
        sig = signature_for("cg", "C")
        cal = pm.predict(m, sig, GCC15, 1, vectorise=False)
        raw = raw_pm.predict(m, sig, GCC15, 1, vectorise=False)
        assert cal.calibration_factor != 1.0
        assert raw.calibration_factor == 1.0
        assert cal.time_s != raw.time_s

    def test_factors_cached(self, pm):
        m = get_machine("sg2044")
        sig = signature_for("ep", "C")
        pm.predict(m, sig, GCC15, 1)
        assert ("sg2044", "ep") in pm._kappa_cache


class TestScalarGridTwins:
    """Every scalar cost-term view matches its `_grid` twin bit for bit."""

    NS = (1, 2, 4, 8, 16, 32, 64)

    def test_effective_threads_parity(self):
        sig = signature_for("mg", "C")
        m = get_machine("sg2044")
        grid = PerformanceModel._effective_threads_grid(
            sig, m, np.asarray(self.NS, dtype=np.int64)
        )
        for i, n in enumerate(self.NS):
            assert PerformanceModel._effective_threads(sig, m, n) == grid[i]

    def test_communication_bytes_parity(self):
        sig = signature_for("ft", "C")
        m = get_machine("sg2042")
        grid = PerformanceModel._communication_bytes_grid(
            sig, m, np.asarray(self.NS, dtype=np.int64)
        )
        for i, n in enumerate(self.NS):
            assert PerformanceModel._communication_bytes(sig, m, n) == grid[i]

    def test_latency_time_parity(self):
        sig = signature_for("cg", "C")
        m = get_machine("sg2044")
        spill = 0.5
        grid = PerformanceModel._latency_time_grid(
            m,
            sig,
            np.asarray(self.NS, dtype=np.int64),
            np.full(len(self.NS), spill),
        )
        for i, n in enumerate(self.NS):
            assert PerformanceModel._latency_time(m, sig, n, spill) == grid[i]

    def test_single_thread_baselines(self):
        sig = signature_for("mg", "C")
        m = get_machine("sg2044")
        assert PerformanceModel._effective_threads(sig, m, 1) == 1.0
        assert PerformanceModel._communication_bytes(sig, m, 1) == 0.0
