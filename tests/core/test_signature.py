"""KernelSignature: validation, derived totals, memory character."""

import pytest
from hypothesis import given, strategies as st

from repro.core.signature import CommPattern, KernelSignature


def sig(**kw):
    defaults = dict(
        name="k",
        display="K",
        npb_class="C",
        total_mops=1000.0,
        work_per_op=2.0,
        dram_bytes_per_op=1.0,
        random_access_per_op=0.0,
        working_set_bytes=1e9,
    )
    defaults.update(kw)
    return KernelSignature(**defaults)


class TestDerivedTotals:
    def test_total_ops(self):
        assert sig().total_ops == 1e9

    def test_total_instructions(self):
        assert sig(work_per_op=3.0).total_instructions == 3e9

    def test_total_dram_bytes(self):
        assert sig(dram_bytes_per_op=2.5).total_dram_bytes == 2.5e9

    def test_total_random_accesses_with_default_target(self):
        s = sig(random_access_per_op=0.5)
        assert s.total_random_accesses == 5e8
        assert s.effective_random_target_bytes == s.working_set_bytes

    def test_explicit_random_target(self):
        s = sig(random_access_per_op=1.0, random_target_bytes=1e6)
        assert s.effective_random_target_bytes == 1e6


class TestMemoryCharacter:
    """The Table 1 taxonomy, as the signature classifier sees it."""

    def test_compute_bound(self):
        assert sig(dram_bytes_per_op=0.0).memory_character() == "compute-bound"

    def test_latency_bound(self):
        s = sig(random_access_per_op=1.0, dram_bytes_per_op=10.0)
        assert s.memory_character() == "latency-bound"

    def test_bandwidth_bound(self):
        assert sig(dram_bytes_per_op=9.0).memory_character() == "bandwidth-bound"

    def test_mixed(self):
        assert sig(dram_bytes_per_op=3.0).memory_character() == "mixed"


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("total_mops", 0.0),
            ("work_per_op", -1.0),
            ("dram_bytes_per_op", -0.1),
            ("random_access_per_op", -0.1),
            ("working_set_bytes", 0.0),
            ("vec_fraction", 1.5),
            ("gather_pathology", -0.5),
            ("serial_fraction", 1.0),
            ("imbalance_coeff", -1.0),
            ("latency_hidden_fraction", 1.0),
            ("random_target_bytes", 0.0),
            ("gather_mlp_factor", 0.0),
            ("npb_class", "Z"),
            ("residual_attribution", "magic"),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            sig(**{field: value})

    @given(
        vec=st.floats(0.0, 1.0),
        hidden=st.floats(0.0, 0.99),
        serial=st.floats(0.0, 0.99),
    )
    def test_valid_ranges_accepted(self, vec, hidden, serial):
        s = sig(
            vec_fraction=vec,
            latency_hidden_fraction=hidden,
            serial_fraction=serial,
        )
        assert s.vec_fraction == vec


class TestCommPattern:
    def test_defaults_are_zero(self):
        c = CommPattern()
        assert c.neighbour_bytes == c.alltoall_bytes == c.barriers_per_mop == 0.0

    def test_negative_volumes_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(neighbour_bytes=-1.0)
        with pytest.raises(ValueError):
            CommPattern(barriers_per_mop=-1.0)
