#!/usr/bin/env python
"""RISC-V board shootout -- the paper's Section 3 scenario.

Compares a single core of every commodity RISC-V board in the catalog on
the five NPB kernels at class B, printing the Mop/s and the percentage of
the SG2044's C920v2 that each board reaches (the paper's Table 2 layout),
including the AllWinner D1's FT "DNR" (its 1 GB of DRAM cannot hold the
problem).

Run:  python examples/riscv_board_shootout.py
"""

from repro import DNRError, ExperimentConfig, ExperimentRunner
from repro.core.metrics import percent_of
from repro.machines import PAPER_RISCV_BOARDS, get_machine


def main() -> None:
    runner = ExperimentRunner()
    kernels = ("is", "mg", "ep", "cg", "ft")

    print(f"{'kernel':<8}" + "".join(f"{get_machine(m).label:>18}" for m in PAPER_RISCV_BOARDS))
    for kernel in kernels:
        ref = runner.run(
            ExperimentConfig(
                machine="sg2044",
                kernel=kernel,
                npb_class="B",
                n_threads=1,
                vectorise=kernel != "cg",
            )
        ).mean_mops
        cells = []
        for machine in PAPER_RISCV_BOARDS:
            try:
                mops = runner.run(
                    ExperimentConfig(
                        machine=machine,
                        kernel=kernel,
                        npb_class="B",
                        n_threads=1,
                        vectorise=kernel != "cg",
                    )
                ).mean_mops
            except DNRError:
                cells.append(f"{'DNR':>18}")
                continue
            pct = percent_of(mops, ref)
            cells.append(f"{mops:10.2f} ({pct:3.0f}%)")
        print(f"{kernel.upper():<8}" + "".join(cells))

    print(
        "\nOnly the SpacemiT X60 boards (Banana Pi / Milk-V Jupiter) also "
        "implement RVV 1.0,\nyet none reaches half the C920v2's rate -- "
        "the paper's Section 3 conclusion."
    )


if __name__ == "__main__":
    main()
