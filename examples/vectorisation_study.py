#!/usr/bin/env python
"""Compiler and vectorisation study -- the paper's Section 6 scenario.

Reproduces the compiler comparison (GCC 12.3.1 vs 15.2, vectorisation on
and off) on the SG2044, then drills into the CG anomaly with the simulated
``perf`` counters: the vectorised sparse matvec doubles branch misses and
runs ~2.7x slower, and even the 8x-unrolled variant stays behind scalar.

Run:  python examples/vectorisation_study.py
"""

from repro import ExperimentConfig, ExperimentRunner
from repro.perf import cg_vectorisation_study


def main() -> None:
    runner = ExperimentRunner()
    configs = [
        ("GCC 12.3.1 (distro)", "gcc-12.3.1", True),
        ("GCC 15.2 + vector", "gcc-15.2", True),
        ("GCC 15.2 no vector", "gcc-15.2", False),
    ]

    for n_threads in (1, 64):
        print(f"SG2044, class C, {n_threads} thread(s) -- Mop/s:")
        print(f"  {'kernel':<8}" + "".join(f"{label:>22}" for label, _, _ in configs))
        for kernel in ("is", "mg", "ep", "cg", "ft"):
            cells = []
            for _, compiler, vec in configs:
                res = runner.run(
                    ExperimentConfig(
                        machine="sg2044",
                        kernel=kernel,
                        n_threads=n_threads,
                        compiler=compiler,
                        vectorise=vec,
                    )
                )
                cells.append(f"{res.mean_mops:22,.1f}")
            print(f"  {kernel.upper():<8}" + "".join(cells))
        print()

    print("CG anomaly drill-down (simulated perf, 1 core):")
    for machine in ("sg2044", "milkv-jupiter"):
        row = cg_vectorisation_study(machine, "C" if machine == "sg2044" else "B")
        print(
            f"  {machine:<14} vec slowdown {row.slowdown:4.2f}x, "
            f"branch misses {row.branch_miss_ratio:.1f}x, "
            f"IPC {row.ipc_scalar:.2f} -> {row.ipc_vectorised:.2f}"
        )
        for v in row.unroll_variants:
            verdict = "beats scalar!" if v.beats_scalar else "still slower than scalar"
            print(f"      unroll x{v.unroll}: {v.relative_to_default_vec:.2f}x ({verdict})")
    print(
        "\nNote the width effect: the 256-bit SpacemiT X60 sees only a "
        "marginal penalty,\nexactly as the paper reports."
    )


if __name__ == "__main__":
    main()
