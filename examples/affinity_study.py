#!/usr/bin/env python
"""Thread-placement study -- the paper's Section 5.2 surprise.

The authors expected pinning MG's threads across the SG2044's clusters to
help the 32 memory controllers share load, but measured that *unbound*
threads (``OMP_PROC_BIND`` unset or ``false``) were consistently fastest.
This example replays the experiment on the simulated OpenMP runtime and
prints the placement-efficiency ranking.

Run:  python examples/affinity_study.py
"""

from repro.machines import get_machine
from repro.openmp import OpenMPRuntime, ScheduleKind


def main() -> None:
    machine = get_machine("sg2044")
    policies = [
        ("unset / false", None, None),
        ("close", "close", "cores"),
        ("spread", "spread", "cores"),
        ("master", "master", "cores"),
        ("spread over {0:4} places", "spread", "{0:4},{16:4},{32:4},{48:4}"),
    ]

    print("MG on the SG2044, 64 threads -- placement efficiency:")
    results = []
    for label, bind, places in policies:
        rt = OpenMPRuntime(machine, proc_bind=bind, places=places)
        eff = rt.placement_efficiency(64)
        results.append((eff, label))
        print(f"  OMP_PROC_BIND={label:<28} efficiency {eff:.3f}")

    best = max(results)
    print(f"\nbest policy: {best[1]} -- the OS 'did a better job at runtime'")

    # The runtime also accounts barrier/scheduling costs:
    rt = OpenMPRuntime(machine)
    with rt.parallel(64) as region:
        rt.parallel_for(region, n_iterations=512**2, kind=ScheduleKind.STATIC)
        rt.reduction(region)
    stats = rt.regions[-1]
    print(
        f"one MG-like region: {stats.barriers} barriers, "
        f"{stats.reductions} reduction, sync cost "
        f"{stats.sync_seconds * 1e6:.1f} us, "
        f"load imbalance {stats.load_imbalance:.4f}"
    )


if __name__ == "__main__":
    main()
