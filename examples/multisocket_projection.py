#!/usr/bin/env python
"""Multi-socket projection -- beyond the paper, toward its companion [2].

The paper evaluates one socket; reference [2] asks how high-core-count
RISC-V behaves across sockets.  This example uses the simulated MPI layer
to (a) *verify* the distributed algorithms against their sequential
counterparts -- the rank-partitioned EP is bit-exact thanks to `randlc`
jump-ahead, the slab FFT matches `numpy.fft.fftn` -- and then (b) project
NPB strong scaling over 1-8 SG2044 or EPYC sockets on three fabrics.

Run:  python examples/multisocket_projection.py
"""

import numpy as np

from repro.mpi import (
    ETHERNET_100G,
    INFINIBAND_HDR,
    PCIE5_FABRIC,
    SimComm,
    cluster_sweep,
    distributed_ep,
    distributed_fft3d,
)
from repro.npb.ep import ep_kernel


def main() -> None:
    # --- functional verification of the distributed kernels ------------
    comm = SimComm(4, INFINIBAND_HDR)
    sx, sy, counts = distributed_ep(comm, 2**18)
    ref = ep_kernel(2**18)
    exact = (
        abs(sx - ref[0]) < 1e-9
        and abs(sy - ref[1]) < 1e-9
        and np.array_equal(counts, ref[2])
    )
    print(f"distributed EP over 4 ranks: {'bit-exact' if exact else 'MISMATCH'}")

    rng = np.random.default_rng(9)
    field = rng.normal(size=(16, 16, 16)) + 1j * rng.normal(size=(16, 16, 16))
    comm = SimComm(4, INFINIBAND_HDR)
    ok = np.allclose(distributed_fft3d(comm, field), np.fft.fftn(field))
    print(f"distributed 3-D FFT (slab + alltoall): {'matches fftn' if ok else 'MISMATCH'}")

    # --- projection -----------------------------------------------------
    print("\nstrong scaling, class C, InfiniBand HDR between sockets:")
    for machine in ("sg2044", "epyc7742"):
        print(f"  {machine}:")
        for kernel in ("ep", "ft", "cg", "mg"):
            sweep = cluster_sweep(machine, kernel, (1, 2, 4, 8))
            pts = "  ".join(
                f"{p.n_sockets}s {p.mops:>10,.0f}" for p in sweep
            )
            eff = sweep[-1].scaling_efficiency
            print(f"    {kernel.upper():3} {pts}   (8-socket eff {eff:.2f})")

    print("\nfabric sensitivity (FT, 8 sockets of SG2044):")
    for link in (PCIE5_FABRIC, INFINIBAND_HDR, ETHERNET_100G):
        sweep = cluster_sweep("sg2044", "ft", (8,), link=link)
        p = sweep[0]
        print(
            f"  {link.name:<22} {p.mops:>12,.0f} Mop/s "
            f"(comm {100 * p.comm_fraction:.0f}% of runtime)"
        )
    print(
        "\nEP clusters perfectly; FT's transposes make the fabric choice "
        "matter -- the same\nbandwidth story as on-chip, one level up."
    )


if __name__ == "__main__":
    main()
