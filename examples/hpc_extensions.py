#!/usr/bin/env python
"""HPL and HPCG extensions -- the paper's Section 7 future work.

Runs the functional HPL (blocked LU with the official residual check) and
HPCG (preconditioned CG on the 27-point problem with the symmetry check)
on the host, then models both on the paper's server CPUs.  The expected
shape: HPL (compute-bound) still favours the wide-vector x86 parts, while
HPCG (memory-bound) is where the SG2044's 32-channel memory subsystem
closes most of the gap.

Run:  python examples/hpc_extensions.py
"""

from repro.compilers import default_compiler_for, get_compiler
from repro.core import PerformanceModel
from repro.extensions import (
    hpcg_signature,
    hpl_signature,
    run_hpcg_host,
    run_hpl_host,
)
from repro.machines import get_machine


def main() -> None:
    print("functional HPL (n=384, blocked LU, official residual check):")
    hpl = run_hpl_host(n=384)
    print(
        f"  {'PASSED' if hpl.verified else 'FAILED'}: "
        f"{hpl.gflops:.2f} Gflop/s host, scaled residual {hpl.residual:.2e}"
    )

    print("functional HPCG (16^3 grid, SymGS-preconditioned CG):")
    hpcg = run_hpcg_host(grid=16, iterations=25)
    print(
        f"  {'PASSED' if hpcg.verified else 'FAILED'}: "
        f"rel. residual {hpcg.final_relative_residual:.2e}, "
        f"symmetry error {hpcg.symmetry_error:.2e}"
    )

    model = PerformanceModel()
    machines = ("sg2044", "sg2042", "epyc7742", "skylake8170", "thunderx2")
    print("\nmodelled full-chip rates (Gflop/s):")
    print(f"  {'machine':<14}{'HPL':>10}{'HPCG':>10}{'HPCG/HPL':>10}")
    for name in machines:
        m = get_machine(name)
        compiler = get_compiler(default_compiler_for(name))
        hpl_pred = model.predict(m, hpl_signature(20_000), compiler, m.n_cores)
        hpcg_pred = model.predict(m, hpcg_signature(192, 50), compiler, m.n_cores)
        print(
            f"  {name:<14}{hpl_pred.mops / 1000:>10.0f}"
            f"{hpcg_pred.mops / 1000:>10.1f}"
            f"{hpcg_pred.mops / hpl_pred.mops:>10.3f}"
        )
    print(
        "\nHPCG/HPL is the 'real application' efficiency ratio: the SG2044's"
        "\nmemory-subsystem upgrade shows up as a markedly better ratio than"
        "\nits compute-only comparison would suggest."
    )


if __name__ == "__main__":
    main()
