#!/usr/bin/env python
"""Upgrade attribution -- what, exactly, did SOPHGO's changes buy?

The paper lists the SG2044's upgrades over the SG2042 (Section 2.1) and
measures their combined effect (Tables 3/4).  The model can do what the
hardware cannot: apply them one at a time.  This example prints, for each
kernel, the cumulative upgrade ladder and the marginal value of each step
added last -- quantifying the paper's conclusions that the memory
subsystem is the multi-core story and RVV 1.0's real gift is mainline
compilers.

Run:  python examples/upgrade_attribution.py
"""

from repro.explore.whatif import UPGRADES, ablate_upgrade, upgrade_ladder


def main() -> None:
    print("Cumulative ladder, 64 threads, class C (gain over previous step):")
    for kernel in ("is", "mg", "ep", "cg", "ft"):
        ladder = upgrade_ladder(kernel, 64)
        steps = "  ".join(f"{step}:x{gain:.2f}" for step, _, gain in ladder[1:])
        total = ladder[-1][1] / ladder[0][1]
        print(f"  {kernel.upper():3} {steps}   total x{total:.2f}")

    print("\nMarginal value of each upgrade (added last), 64 threads:")
    header = "".join(f"{u.key:>9}" for u in UPGRADES)
    print(f"  {'':3}{header}")
    for kernel in ("is", "mg", "ep", "cg", "ft"):
        cells = "".join(
            f"{ablate_upgrade(kernel, u.key, 64):>9.2f}" for u in UPGRADES
        )
        print(f"  {kernel.upper():3}{cells}")

    print("\nSame, at a single core (where Table 3 lives):")
    for kernel in ("is", "ep"):
        cells = "".join(
            f"{ablate_upgrade(kernel, u.key, 1):>9.2f}" for u in UPGRADES
        )
        print(f"  {kernel.upper():3}{cells}")

    print(
        "\nReading: IS's 4.9x is nearly all memory subsystem; EP's 1.5x is"
        "\nclock plus mainline-compiler RVV; and at one core the memory"
        "\nupgrade barely registers -- the paper's Section 4 observation."
    )


if __name__ == "__main__":
    main()
