#!/usr/bin/env python
"""Quickstart: the two halves of the library in ~40 lines.

1. Run a real NAS Parallel Benchmark functionally (NumPy, verified).
2. Ask the performance model what the same benchmark does on the paper's
   machines -- single-core and full-chip -- reproducing the headline
   SG2044-vs-SG2042 comparison.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, ExperimentRunner
from repro.npb.suite import run_benchmark


def main() -> None:
    # --- functional: actually compute CG (class S verifies against the
    # official NPB zeta constant 8.5971775078648).
    result = run_benchmark("cg", "S")
    print("functional run:")
    print(f"  {result.summary()}")
    print(f"  zeta = {result.details['zeta']:.13f}")
    print(f"  official = {result.details['zeta_ref']:.13f}")

    # --- modelled: the same kernel on the paper's hardware.
    runner = ExperimentRunner()
    print("\nmodelled on the paper's machines (class C, Mop/s):")
    for machine in ("sg2044", "sg2042", "epyc7742", "skylake8170", "thunderx2"):
        single = runner.run(
            ExperimentConfig(machine=machine, kernel="cg", n_threads=1, vectorise=False)
        )
        full = runner.run(
            ExperimentConfig(
                machine=machine,
                kernel="cg",
                n_threads=_cores(machine),
                vectorise=False,
            )
        )
        print(
            f"  {machine:<12} 1 core: {single.mean_mops:8.1f}   "
            f"all {_cores(machine):2d} cores: {full.mean_mops:10.1f}"
        )

    print(
        "\nthe SG2044's 64-core CG is ~2.2x the SG2042's -- the paper's "
        "Table 4 story."
    )


def _cores(machine: str) -> int:
    from repro.machines import get_machine

    return get_machine(machine).n_cores


if __name__ == "__main__":
    main()
