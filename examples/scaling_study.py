#!/usr/bin/env python
"""Multi-core scaling study -- the paper's Section 5 scenario.

Sweeps threads for every kernel across the five server CPUs, prints the
Mop/s curves, and derives the paper's qualitative findings automatically:
where the SG2042 plateaus, where the SG2044 overtakes the 32-core
ThunderX2 on CG, and the STREAM bandwidth curves behind it all (Figure 1).

Run:  python examples/scaling_study.py
"""

from repro import ExperimentConfig, ExperimentRunner
from repro.core.metrics import crossover_threads, speedup_curve
from repro.machines import PAPER_HPC_MACHINES, get_machine
from repro.stream import modelled_bandwidth


def sweep(runner: ExperimentRunner, machine: str, kernel: str) -> list[tuple[int, float]]:
    counts = [n for n in (1, 2, 4, 8, 16, 26, 32, 64) if n <= get_machine(machine).n_cores]
    out = []
    for n in counts:
        res = runner.run(
            ExperimentConfig(
                machine=machine,
                kernel=kernel,
                n_threads=n,
                vectorise=kernel != "cg",
            )
        )
        out.append((n, res.mean_mops))
    return out


def main() -> None:
    runner = ExperimentRunner()

    print("STREAM copy bandwidth (GB/s), the Figure 1 mechanism:")
    for machine in ("sg2042", "sg2044"):
        m = get_machine(machine)
        pts = "  ".join(
            f"{n}:{modelled_bandwidth(m, n):.0f}" for n in (1, 4, 8, 16, 32, 64)
        )
        print(f"  {m.label:<16} {pts}")

    for kernel in ("is", "mg", "ep", "cg", "ft"):
        print(f"\n{kernel.upper()} class C scaling (Mop/s):")
        curves = {}
        for machine in PAPER_HPC_MACHINES:
            curve = sweep(runner, machine, kernel)
            curves[machine] = curve
            pts = "  ".join(f"{n}:{v:,.0f}" for n, v in curve)
            print(f"  {get_machine(machine).label:<18} {pts}")

        # Paper finding 1: the SG2042 plateaus, the SG2044 keeps scaling.
        s42 = dict(speedup_curve(curves["sg2042"]))
        s44 = dict(speedup_curve(curves["sg2044"]))
        print(
            f"  -> speedup at 64 threads: SG2044 {s44[64]:.1f}x, "
            f"SG2042 {s42[64]:.1f}x"
        )

    # Paper finding 2 (Section 5.4): whole-chip SG2044 beats whole-chip TX2
    # on CG even though TX2 wins core-for-core.
    runner2 = ExperimentRunner()
    cg44 = sweep(runner2, "sg2044", "cg")
    cgtx = sweep(runner2, "thunderx2", "cg")
    per_core = crossover_threads(cg44, cgtx)
    full44 = cg44[-1][1]
    fulltx = cgtx[-1][1]
    print(
        f"\nCG: core-for-core crossover at "
        f"{per_core if per_core is not None else '>32'} threads; "
        f"whole-chip: SG2044 {full44:,.0f} vs ThunderX2 {fulltx:,.0f} Mop/s "
        f"({full44 / fulltx:.2f}x)"
    )


if __name__ == "__main__":
    main()
