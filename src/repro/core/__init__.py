"""The reproduction's core: workload signatures, the analytic performance
model, calibration anchors, and the experiment-runner protocol."""

from .calibration import ANCHORS, Anchor, anchor_for, calibration_factors
from .experiment import DEFAULT_RUNS, ExperimentConfig, ExperimentRunner
from .metrics import (
    crossover_threads,
    parallel_efficiency,
    percent_of,
    speedup_curve,
    times_faster,
)
from .perfmodel import DNRError, PerformanceModel, Prediction
from .results import ExperimentResult, RunSample
from .signature import CommPattern, KernelSignature
from .sweep import (
    SweepEngine,
    clear_caches,
    default_engine,
    expand_grid,
    paper_vectorise,
    set_default_jobs,
)

__all__ = [
    "ANCHORS",
    "Anchor",
    "CommPattern",
    "DEFAULT_RUNS",
    "DNRError",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "KernelSignature",
    "PerformanceModel",
    "Prediction",
    "RunSample",
    "SweepEngine",
    "anchor_for",
    "calibration_factors",
    "clear_caches",
    "crossover_threads",
    "default_engine",
    "expand_grid",
    "paper_vectorise",
    "parallel_efficiency",
    "percent_of",
    "set_default_jobs",
    "speedup_curve",
    "times_faster",
]
