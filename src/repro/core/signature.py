"""Workload signatures: the resource footprint of one benchmark.

The paper's whole analysis is organised around each NPB kernel's resource
signature (its Table 1): IS is memory-latency bound with random access, MG
is bandwidth bound, EP is compute bound, CG mixes irregular access with
nearest-neighbour communication, FT adds all-to-all transposes, and the
pseudo-apps BT/LU/SP blend all of it.  A :class:`KernelSignature` captures
exactly those axes, per problem class, in machine-independent units; the
performance model in :mod:`repro.core.perfmodel` combines it with a
:class:`~repro.machines.Machine` to predict execution time.

Units convention: everything is normalised *per counted operation* (the
"op" in NPB's Mop/s), so predicted Mop/s is ``1e-6 / time_per_op``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelSignature", "CommPattern"]


@dataclass(frozen=True)
class CommPattern:
    """Inter-thread communication per counted op.

    ``neighbour_bytes``: bytes exchanged with adjacent threads (CG's
    nearest-neighbour reductions, MG's halo exchanges).
    ``alltoall_bytes``: bytes crossing the chip in all-to-all transposes
    (FT's parallel data transposition).
    ``barriers_per_mop``: OpenMP barrier/reduction events per million ops
    (parallel-region fan-in/fan-out; dominates at high thread counts for
    short iterations).
    """

    neighbour_bytes: float = 0.0
    alltoall_bytes: float = 0.0
    barriers_per_mop: float = 0.0

    def __post_init__(self) -> None:
        if self.neighbour_bytes < 0 or self.alltoall_bytes < 0:
            raise ValueError("communication volumes must be non-negative")
        if self.barriers_per_mop < 0:
            raise ValueError("barriers_per_mop must be non-negative")


@dataclass(frozen=True)
class KernelSignature:
    """Machine-independent resource footprint of one benchmark at one class.

    Parameters
    ----------
    name / display:
        Registry id ("cg") and paper spelling ("CG").
    npb_class:
        Problem class letter ("S", "W", "A", "B", "C").
    total_mops:
        Total counted operations, in millions (the Mop/s denominator is
        derived from this and predicted time).
    work_per_op:
        Dynamic scalar instructions retired per counted op with reference
        scalar code.  This is the compute-side unit cost; per-machine
        residuals are absorbed by :mod:`repro.core.calibration`.
    dram_bytes_per_op:
        Streaming DRAM traffic per op once the working set spills past the
        last-level cache (0 for cache-resident kernels like EP).
    random_access_per_op:
        Latency-bound cache-line misses per op that the prefetcher cannot
        hide (IS's indirect histogram updates, CG's gathers).
    working_set_bytes:
        Resident data footprint; compared against cache capacity and
        installed DRAM (the AllWinner D1 "DNR" case).
    vec_fraction:
        Fraction of compute inside auto-vectorisable loops.
    gather_pathology:
        Strength in [0, 1] of the Section 6 RVV indexed-gather pathology
        (only CG is materially afflicted).
    serial_fraction:
        Amdahl non-parallelisable fraction.
    imbalance_coeff:
        Load-imbalance growth with threads: efficiency loses
        ``imbalance_coeff * log2(n)`` (boundary threads, uneven buckets).
    comm:
        Inter-thread communication pattern.
    latency_hidden_fraction:
        Fraction of the random-access latency the core overlaps with
        useful work (out-of-order window + software pipelining).
    random_target_bytes:
        Size of the structure the random accesses land in (IS's rank
        histogram, CG's solution vector).  Defaults to the whole working
        set; when the target fits a cache level, random accesses are
        serviced there (CG's x-vector lives in the cluster L2 -- which is
        why the paper credits the SG2044's doubled L2 for CG gains).
    gather_mlp_factor:
        Fraction of the core's miss-level parallelism usable by these
        accesses.  Dependency-chained gathers (load col[k], then
        x[col[k]]) cannot fill the miss queue; independent histogram
        updates can.
    """

    name: str
    display: str
    npb_class: str
    total_mops: float
    work_per_op: float
    dram_bytes_per_op: float
    random_access_per_op: float
    working_set_bytes: float
    vec_fraction: float = 0.0
    gather_pathology: float = 0.0
    serial_fraction: float = 1e-4
    imbalance_coeff: float = 0.004
    comm: CommPattern = field(default_factory=CommPattern)
    latency_hidden_fraction: float = 0.0
    random_target_bytes: float | None = None
    gather_mlp_factor: float = 1.0
    #: Where the single-core calibration residual physically lives:
    #: "compute" -- core-side stalls, parallelise with threads (EP and the
    #: pseudo-apps, whose per-point work dwarfs their traffic);
    #: "time" -- distributed across all terms proportionally (the memory-
    #: centric kernels, whose residual is interleaved with the saturating
    #: memory behaviour itself).
    residual_attribution: str = "time"

    def __post_init__(self) -> None:
        if self.npb_class not in ("S", "W", "A", "B", "C", "D"):
            raise ValueError(f"unknown NPB class {self.npb_class!r}")
        if self.total_mops <= 0:
            raise ValueError("total_mops must be positive")
        if self.work_per_op <= 0:
            raise ValueError("work_per_op must be positive")
        if self.dram_bytes_per_op < 0 or self.random_access_per_op < 0:
            raise ValueError("traffic terms must be non-negative")
        if self.working_set_bytes <= 0:
            raise ValueError("working_set_bytes must be positive")
        if not 0.0 <= self.vec_fraction <= 1.0:
            raise ValueError("vec_fraction must be in [0, 1]")
        if not 0.0 <= self.gather_pathology <= 1.0:
            raise ValueError("gather_pathology must be in [0, 1]")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if self.imbalance_coeff < 0:
            raise ValueError("imbalance_coeff must be non-negative")
        if not 0.0 <= self.latency_hidden_fraction < 1.0:
            raise ValueError("latency_hidden_fraction must be in [0, 1)")
        if self.random_target_bytes is not None and self.random_target_bytes <= 0:
            raise ValueError("random_target_bytes must be positive when set")
        if not 0.0 < self.gather_mlp_factor <= 1.0:
            raise ValueError("gather_mlp_factor must be in (0, 1]")
        if self.residual_attribution not in ("compute", "time"):
            raise ValueError("residual_attribution must be 'compute' or 'time'")

    @property
    def total_ops(self) -> float:
        return self.total_mops * 1e6

    @property
    def total_instructions(self) -> float:
        """Dynamic scalar instruction count for the whole run."""
        return self.total_ops * self.work_per_op

    @property
    def total_dram_bytes(self) -> float:
        return self.total_ops * self.dram_bytes_per_op

    @property
    def total_random_accesses(self) -> float:
        return self.total_ops * self.random_access_per_op

    @property
    def effective_random_target_bytes(self) -> float:
        if self.random_target_bytes is not None:
            return self.random_target_bytes
        return self.working_set_bytes

    def memory_character(self) -> str:
        """Coarse classification echoing the paper's Table 1 narrative."""
        lat = self.random_access_per_op
        bw = self.dram_bytes_per_op
        if lat < 1e-3 and bw < 1.0:
            return "compute-bound"
        if lat >= 0.05 and lat * 64 > bw:
            return "latency-bound"
        if bw >= 8.0:
            return "bandwidth-bound"
        return "mixed"
