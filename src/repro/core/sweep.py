"""Batched sweep engine: grid expansion, memoisation, parallel execution.

The paper's methodology is one large cross-product sweep -- machines x
kernels x classes x thread counts x compilers x vectorisation -- and every
table and figure regenerator walks some slice of that grid.  This module
turns those walks into batch jobs:

* :func:`expand_grid` expands axis tuples into a deduplicated, ordered
  list of :class:`ExperimentConfig`.
* :class:`SweepEngine` executes config batches through
  :meth:`ExperimentRunner.run_many` (one vectorised model evaluation per
  thread-sweep family), optionally across a thread pool, and memoises
  every :class:`ExperimentResult` keyed by the exact seed/config tuple so
  repeated regenerators hit cache.

Determinism: the runner keys its noise stream per config (sha256 of seed
and config fields), so results are independent of execution order --
parallel, serial, cached and one-at-a-time runs are byte-identical.

Caching vs reproducibility: a cache hit returns the very object a cold
run would have computed, because everything that influences a result
(runner seed, noise level, calibration flag, config fields) is part of
the cache key.  :func:`clear_caches` evicts every process-wide cache if
isolation is ever needed.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro import faults, obs
from repro.faults import GroupTimeoutError, SweepJournal, TransientError

from .experiment import DEFAULT_RUNS, ExperimentConfig, ExperimentRunner
from .perfmodel import DNRError, PerformanceModel
from .plan import PlanNotApplicable, plan_groups
from .results import ExperimentResult

__all__ = [
    "SweepEngine",
    "expand_grid",
    "paper_vectorise",
    "compute_cache_key",
    "default_engine",
    "set_default_jobs",
    "set_default_retries",
    "set_default_procs",
    "set_default_store",
    "clear_caches",
    "DEFAULT_RETRIES",
]

#: Transient failures are retried this many times by default (override
#: per engine, with ``REPRO_RETRIES``, or with the ``--retries`` flag).
DEFAULT_RETRIES = 2


def paper_vectorise(kernel: str) -> bool:
    """The paper's per-kernel vectorisation default.

    CG's indexed gathers are a vectorisation pathology on every machine
    in the study, so the harness compiles it scalar; everything else is
    auto-vectorised at ``-O3``.
    """
    return kernel != "cg"


def _axis(value) -> tuple:
    if value is None or isinstance(value, (str, int, bool)):
        return (value,)
    return tuple(value)


def expand_grid(
    machines,
    kernels,
    classes="C",
    thread_counts=1,
    compilers=None,
    vectorise=None,
    runs: int = DEFAULT_RUNS,
) -> list[ExperimentConfig]:
    """Expand axis values into a deduplicated list of configs.

    Every axis accepts a single value or an iterable.  ``vectorise=None``
    (the default) selects the paper's per-kernel setting via
    :func:`paper_vectorise`; ``compilers=None`` keeps each machine's
    paper-default compiler.  Order is the natural nested-loop order
    (machines outermost, vectorise innermost) with later duplicates
    dropped.
    """
    out: list[ExperimentConfig] = []
    seen: set[ExperimentConfig] = set()
    for machine in _axis(machines):
        for kernel in _axis(kernels):
            for npb_class in _axis(classes):
                for n_threads in _axis(thread_counts):
                    for compiler in _axis(compilers):
                        for vec in _axis(vectorise):
                            config = ExperimentConfig(
                                machine=machine,
                                kernel=kernel,
                                npb_class=npb_class,
                                n_threads=n_threads,
                                compiler=compiler,
                                vectorise=(
                                    paper_vectorise(kernel) if vec is None else vec
                                ),
                                runs=runs,
                            )
                            if config not in seen:
                                seen.add(config)
                                out.append(config)
    return out


def compute_cache_key(
    seed: int, noise_cv: float, calibrate: bool, config: ExperimentConfig
) -> tuple:
    """The full memo key for one config under given runner settings.

    Module-level (not only an engine method) so process-shard workers,
    which reconstruct the runner from ``(seed, noise_cv, calibrate)``,
    derive byte-identical journal keys without an engine instance.
    """
    return (
        seed,
        noise_cv,
        calibrate,
        config.machine,
        config.kernel,
        config.npb_class,
        config.n_threads,
        config.resolved_compiler(),
        config.vectorise,
        config.runs,
    )


class SweepEngine:
    """Memoising, optionally parallel front-end over an ExperimentRunner.

    Parameters
    ----------
    runner:
        The runner to execute through (a default calibrated runner when
        omitted).
    jobs:
        Worker threads for batch execution.  ``None`` reads the
        ``REPRO_JOBS`` environment variable, falling back to
        ``min(8, cpu_count)``.  ``1`` forces serial execution.
    retries:
        Retry budget for *transient* group failures
        (:class:`repro.faults.TransientError`, including injected
        faults).  ``None`` reads ``REPRO_RETRIES``, falling back to
        :data:`DEFAULT_RETRIES`.  Retries back off exponentially from
        ``backoff_s``.
    group_timeout_s:
        Per-group deadline for pooled execution; a group exceeding it
        raises :class:`repro.faults.GroupTimeoutError` (fatal, never
        silently re-run).  ``None`` (default) disables the deadline;
        serial execution cannot be preempted and ignores it.
    journal:
        Optional :class:`repro.faults.SweepJournal`; completed families
        are persisted as they land and preloaded on attach, so an
        interrupted run resumes from completed families.
    procs:
        Worker *processes* for cold batches: when ``> 1`` (and the
        planner is applicable) pending families are sharded round-robin
        across forked workers, each journaling to a per-shard sidecar
        merged by cache key on completion.  ``None`` reads
        ``REPRO_PROCS``, falling back to ``1`` (no sharding).
    planner:
        Whether cold batches may be flattened into one megagrid pass
        (:func:`repro.core.plan.plan_groups`) instead of per-family
        ``predict_batch`` calls.  ``None`` reads ``REPRO_PLANNER``
        (default on; set ``0`` to disable).  The planner is bypassed
        automatically whenever it could not reproduce the per-family
        path bit-for-bit (fault injection enabled, per-group timeouts,
        subclassed runners/models).
    store:
        Optional :class:`repro.store.ResultStore` (or a path to one;
        ``None`` reads ``REPRO_STORE``).  The durable tier under the
        memo cache: pending keys are preloaded from the store *before*
        planning, every committed family is published to it, and its
        O_EXCL lease files extend single-flight across processes -- a
        key another process is executing is waited on (bounded), then
        taken over if the owner died.  Store-restored values are
        bit-identical to computed ones (shared ``repr``-float codec).

    Results are memoised per exact (seed, noise, calibration, config)
    tuple; "Did Not Run" configurations cache their :class:`DNRError`
    the same way, so a grid with DNR holes is still cheap to re-expand.

    Failure taxonomy (see :mod:`repro.faults.taxonomy`): transient
    errors are retried in place, DNR verdicts are cached as results, and
    everything else propagates to the caller exactly once -- a failing
    group never triggers re-execution of groups that already completed,
    and its claims are released so the next caller can re-claim the key.

    Concurrency: the engine is safe to hammer from many threads.  A
    single-flight table (``_inflight``) guarantees each cache key is
    executed at most once even when concurrent :meth:`run_many` calls
    race on the same cold keys -- late arrivals wait on the claimant's
    event instead of duplicating work.  Single-flight extends to
    **subgrid containment**: a batch whose cold keys are all contained
    in one in-flight super-sweep waits on that sweep's single completion
    event (counted by ``sweep.containment_waits``) instead of
    accumulating per-key events.

    Observability: cache hits/misses, executed configs/groups and DNR
    outcomes are mirrored into :mod:`repro.obs` counters, and every
    batch runs under a ``run_many`` span with one ``group[kernel/class]``
    child per thread-sweep family.  ``dnr_configs`` counts, on the return
    path, every requested config whose (possibly cached) result is a DNR.
    """

    def __init__(
        self,
        runner: ExperimentRunner | None = None,
        jobs: int | None = None,
        retries: int | None = None,
        backoff_s: float = 0.02,
        group_timeout_s: float | None = None,
        journal=None,
        procs: int | None = None,
        planner: bool | None = None,
        store=None,
    ) -> None:
        self.runner = runner or ExperimentRunner()
        self.jobs = self._resolve_jobs(jobs)
        self.procs = self._resolve_procs(procs)
        self.planner = self._resolve_planner(planner)
        self.retries = self._resolve_retries(retries)
        self.store = self._resolve_store(store)
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        self.backoff_s = backoff_s
        self.group_timeout_s = group_timeout_s
        self._sleep = time.sleep
        self._results: dict[tuple, ExperimentResult | DNRError] = {}
        self._inflight: dict[tuple, threading.Event] = {}
        self._inflight_sweeps: dict[int, tuple[frozenset, threading.Event]] = {}
        self._sweep_seq = 0
        self._held_leases: set[tuple] = set()
        self._lock = threading.Lock()
        self._journals: list[tuple[SweepJournal, frozenset | None]] = []
        self._family_hooks: list = []
        self.hits = 0
        self.misses = 0
        self.dnr_configs = 0
        if journal is not None:
            self.attach_journal(journal)

    @staticmethod
    def _resolve_jobs(jobs: int | None) -> int:
        """Resolve the worker-thread count for batch execution.

        Explicit requests -- the ``jobs`` argument or the ``REPRO_JOBS``
        environment variable -- are honoured verbatim, with no upper
        cap: an operator who asks for 32 threads gets 32.  Only the
        *implicit* default is capped at ``min(8, cpu_count)``, because
        model evaluation is GIL-bound numpy and threads beyond a handful
        add scheduling overhead without throughput.  The value an engine
        actually resolved is surfaced by ``repro stats`` through the
        ``sweep.jobs_resolved`` counter.
        """
        if jobs is None:
            env = os.environ.get("REPRO_JOBS")
            if env is not None:
                jobs = int(env)
            else:
                jobs = min(8, os.cpu_count() or 1)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        return jobs

    @staticmethod
    def _resolve_procs(procs: int | None) -> int:
        """Resolve the worker-process count (``REPRO_PROCS``, default 1).

        Unlike ``jobs`` there is no implicit multi-proc default: forking
        is a behaviour change an operator opts into via the argument,
        the ``--procs`` flag or the environment.  Surfaced by ``repro
        stats`` as ``sweep.procs_resolved``.
        """
        if procs is None:
            env = os.environ.get("REPRO_PROCS")
            procs = int(env) if env is not None else 1
        if procs < 1:
            raise ValueError("procs must be >= 1")
        return procs

    @staticmethod
    def _resolve_planner(planner: bool | None) -> bool:
        if planner is None:
            return os.environ.get("REPRO_PLANNER", "1") != "0"
        return bool(planner)

    @staticmethod
    def _resolve_retries(retries: int | None) -> int:
        if retries is None:
            env = os.environ.get("REPRO_RETRIES")
            retries = int(env) if env is not None else DEFAULT_RETRIES
        if retries < 0:
            raise ValueError("retries must be >= 0")
        return retries

    @staticmethod
    def _resolve_store(store):
        """Resolve the persistent result store (``REPRO_STORE``, default none).

        Accepts a ready :class:`repro.store.ResultStore`, a directory
        path, or ``None`` (consult the environment).  Like ``procs``,
        persistence is a behaviour an operator opts into explicitly.
        """
        if store is None:
            from repro.store import store_from_env

            return store_from_env()
        if isinstance(store, (str, os.PathLike)):
            from repro.store import ResultStore

            return ResultStore(store)
        return store

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def cache_key(self, config: ExperimentConfig) -> tuple:
        """Everything that can influence this config's result."""
        runner = self.runner
        return compute_cache_key(
            runner.seed, runner.noise_cv, runner.model.calibrate, config
        )

    def clear_cache(self) -> None:
        """Evict all memoised results (and reset the hit/miss/DNR counters).

        The attached journal (if any) is deliberately left intact: it is
        the durable record an interrupted run resumes from.
        """
        with self._lock:
            self._results.clear()
            self.hits = 0
            self.misses = 0
            self.dnr_configs = 0

    # ------------------------------------------------------------------
    # Journal (checkpoint/resume)
    # ------------------------------------------------------------------

    def attach_journal(self, journal, keys=None) -> None:
        """Attach a :class:`repro.faults.SweepJournal` and preload it.

        Journaled results enter the memo cache exactly as if this engine
        had executed them (they are bit-identical by construction).  The
        journal's keys embed the runner seed, noise level and calibration
        flag, so entries written under different settings never match a
        key this engine asks for -- a stale journal is inert, not wrong.

        Several journals may be attached at once (the service layer gives
        every job its own); each completed family is recorded to all of
        them.  ``keys`` (an iterable of cache keys) scopes an attachment:
        only families whose keys intersect it are recorded there, so a
        per-job journal captures exactly that job's sweep and stays
        oblivious to whatever else shares the engine.  Preloading is
        never filtered -- a journal entry is valid cached work wherever
        it came from.

        Leftover per-shard sidecars (``<journal>.shardN``, from a
        sharded run that died before its merge) are folded into the
        attached journal here and removed.
        """
        keyset = None if keys is None else frozenset(keys)
        with self._lock:
            self._journals.append((journal, keyset))
            for key, value in journal.results().items():
                self._results.setdefault(key, value)
        self._absorb_shard_sidecars(journal)

    def _absorb_shard_sidecars(self, journal) -> None:
        """Merge and remove ``<journal>.shardN`` sidecar files.

        Sidecar entries are keyed by the same full cache keys as the
        main journal, so they merge (then vanish) exactly like a resumed
        main journal; entries from mismatched settings stay inert.
        """
        pattern = journal.path.name + ".shard*"
        for sidecar_path in sorted(journal.path.parent.glob(pattern)):
            entries = SweepJournal(sidecar_path).results()
            if entries:
                journal.record(entries)
                with self._lock:
                    for key, value in entries.items():
                        self._results.setdefault(key, value)
            try:
                os.unlink(sidecar_path)
            except OSError:
                pass

    def detach_journal(self, journal=None) -> None:
        """Detach one journal (or, with no argument, every attached one).

        Already-loaded results stay cached either way.
        """
        with self._lock:
            if journal is None:
                self._journals.clear()
            else:
                self._journals = [
                    (j, keys) for j, keys in self._journals if j is not journal
                ]

    def _journal_record(self, store: dict) -> None:
        with self._lock:
            journals = list(self._journals)
        for journal, keys in journals:
            scoped = (
                store
                if keys is None
                else {k: v for k, v in store.items() if k in keys}
            )
            if scoped:
                journal.record(scoped)

    # ------------------------------------------------------------------
    # Job hooks (what the service layer's job manager builds on)
    # ------------------------------------------------------------------

    def completed_count(self, configs: Sequence[ExperimentConfig]) -> int:
        """How many of these configs already have a memoised outcome.

        A DNR verdict counts as completed -- the grid slot has an answer.
        The service layer polls this for job progress: ``completed /
        len(configs)`` moves monotonically from 0 to 1 as families land.
        """
        keys = [self.cache_key(c) for c in configs]
        with self._lock:
            return sum(1 for key in keys if key in self._results)

    def add_family_hook(self, hook) -> None:
        """Register ``hook(n_configs, dnr)``, called after each family lands.

        Hooks fire once per completed thread-sweep family -- planned,
        pooled, serial or process-sharded -- right after its results are
        stored and journaled, and always *outside* the engine lock, so a
        hook may freely call back into the engine.  ``dnr`` is True when
        the family's shared outcome was a DNR verdict.  Hook exceptions
        propagate like any fatal group failure: the engine never
        swallows them.
        """
        with self._lock:
            self._family_hooks.append(hook)

    def remove_family_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_family_hook` (idempotent)."""
        with self._lock:
            self._family_hooks = [h for h in self._family_hooks if h is not hook]

    def _notify_family(self, n_configs: int, dnr: bool) -> None:
        with self._lock:
            hooks = list(self._family_hooks)
        for hook in hooks:
            hook(n_configs, dnr)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_many(
        self,
        configs: Sequence[ExperimentConfig],
        on_dnr: str = "raise",
    ) -> list[ExperimentResult | None]:
        """Execute a batch, memoised and (for cold work) parallelised.

        Cold configs are grouped into thread-sweep families (identical in
        everything but ``n_threads``) so each family is one batched model
        evaluation; families execute on a thread pool when more than one
        is pending and ``jobs > 1``, with a silent serial fallback if the
        pool cannot start.  Output order always matches input order.

        ``on_dnr`` controls "Did Not Run" configs: ``"raise"`` propagates
        the :class:`DNRError`, ``"none"`` yields ``None`` in that slot
        (what the table renderers want for DNR cells).
        """
        if on_dnr not in ("raise", "none"):
            raise ValueError(f"on_dnr must be 'raise' or 'none', got {on_dnr!r}")
        configs = list(configs)
        keys = [self.cache_key(c) for c in configs]
        obs.incr("sweep.configs_requested", len(configs))

        with obs.span("run_many"):
            pending, waiting, events = self._claim(keys, configs)
            while pending or waiting:
                if pending:
                    self._execute_pending(pending)
                for event in events:
                    event.wait()
                if not waiting:
                    break
                # Keys we merely waited on may be orphans: the claimant died
                # before storing (its claim was released by the finally in
                # _execute_pending).  Take those over; our own pending keys
                # are guaranteed stored (or we would have raised).
                with self._lock:
                    missing = {
                        key: config
                        for key, config in waiting.items()
                        if key not in self._results
                    }
                if not missing:
                    break
                pending, waiting, events = self._reclaim(missing)

        with self._lock:
            values = [self._results[key] for key in keys]

        out: list[ExperimentResult | None] = []
        dnr_count = 0
        first_dnr: DNRError | None = None
        for value in values:
            if isinstance(value, DNRError):
                dnr_count += 1
                if first_dnr is None:
                    first_dnr = value
                out.append(None)
            else:
                out.append(value)
        if dnr_count:
            with self._lock:
                self.dnr_configs += dnr_count
        obs.incr("sweep.dnr_configs", dnr_count)
        if first_dnr is not None and on_dnr == "raise":
            raise first_dnr
        return out

    def _claim(
        self, keys: list[tuple], configs: list[ExperimentConfig]
    ) -> tuple[
        dict[tuple, ExperimentConfig],
        dict[tuple, ExperimentConfig],
        list[threading.Event],
    ]:
        """Classify a batch under the lock, claiming cold keys for this caller.

        A key already cached (or duplicated earlier in the batch, or being
        executed by a concurrent caller) counts as a hit; each unique cold
        key counts as one miss and is claimed in the single-flight table so
        no other caller executes it.  Returns the claimed configs, the
        configs being executed by concurrent callers (``waiting``), and the
        events signalling those concurrent executions.

        Subgrid containment: when the batch claims nothing and every key
        it is waiting on belongs to a single in-flight super-sweep, the
        per-key events collapse to that sweep's one completion event --
        the contained request simply rides the super-sweep.
        """
        pending: dict[tuple, ExperimentConfig] = {}
        waiting: dict[tuple, ExperimentConfig] = {}
        events: list[threading.Event] = []
        hits = misses = 0
        contained = False
        with self._lock:
            for key, config in zip(keys, configs):
                if key in self._results or key in pending:
                    hits += 1
                elif key in self._inflight:
                    hits += 1
                    if key not in waiting:
                        waiting[key] = config
                        events.append(self._inflight[key])
                else:
                    misses += 1
                    pending[key] = config
                    self._inflight[key] = threading.Event()
            self.hits += hits
            self.misses += misses
            if waiting and not pending:
                for keyset, sweep_event in self._inflight_sweeps.values():
                    if keyset.issuperset(waiting):
                        events = [sweep_event]
                        contained = True
                        break
        obs.incr("sweep.cache_hits", hits)
        obs.incr("sweep.cache_misses", misses)
        if contained:
            obs.incr("sweep.containment_waits")
        return pending, waiting, events

    def _reclaim(
        self, missing: dict[tuple, ExperimentConfig]
    ) -> tuple[
        dict[tuple, ExperimentConfig],
        dict[tuple, ExperimentConfig],
        list[threading.Event],
    ]:
        """Re-claim keys whose original claimant failed (no hit/miss counts)."""
        pending: dict[tuple, ExperimentConfig] = {}
        waiting: dict[tuple, ExperimentConfig] = {}
        events: list[threading.Event] = []
        with self._lock:
            for key, config in missing.items():
                if key in self._results:
                    continue
                if key in self._inflight:
                    waiting[key] = config
                    events.append(self._inflight[key])
                else:
                    pending[key] = config
                    self._inflight[key] = threading.Event()
        return pending, waiting, events

    def _execute_pending(self, pending: dict[tuple, ExperimentConfig]) -> None:
        """Execute claimed configs grouped into families, then release claims.

        The whole claimed key-set is also registered as one in-flight
        *sweep* with a single completion event, so later batches whose
        keys it contains can wait on it wholesale (see :meth:`_claim`).

        With a store attached, three things happen around execution, all
        outside the engine lock (the lock guards tables, never I/O):
        claimed keys are preloaded from the store before any planning,
        the remainder is partitioned by lease ownership (keys another
        process is executing are waited on in :meth:`_resolve_foreign`
        instead of executed), and held leases are released in the
        ``finally`` so a failure never wedges other processes.
        """
        if self.store is not None:
            pending = self._store_preload(pending)
            if not pending:
                return
        foreign: dict[tuple, ExperimentConfig] = {}
        if self.store is not None:
            pending, foreign = self._store_partition(pending)
        claimed = dict(pending)
        claimed.update(foreign)
        with self._lock:
            sweep_id = self._sweep_seq
            self._sweep_seq += 1
            sweep_event = threading.Event()
            self._inflight_sweeps[sweep_id] = (frozenset(claimed), sweep_event)
        try:
            if pending:
                self._execute_families(pending)
            if foreign:
                self._resolve_foreign(foreign)
        finally:
            # Leases first (publish already released the successful ones;
            # this catches failures), then claims -- both so waiters and
            # other processes re-classify instead of blocking forever;
            # successful paths have stored results by the time the events
            # fire.
            self._release_leases(claimed)
            with self._lock:
                for key in claimed:
                    event = self._inflight.pop(key, None)
                    if event is not None:
                        event.set()
                self._inflight_sweeps.pop(sweep_id, None)
                sweep_event.set()

    def _execute_families(self, pending: dict[tuple, ExperimentConfig]) -> None:
        """Group claimed configs into thread-sweep families and execute."""
        families: dict[tuple, list[ExperimentConfig]] = {}
        for config in pending.values():
            families.setdefault(config.family_key(), []).append(config)
        self._execute_groups(list(families.values()))

    # ------------------------------------------------------------------
    # Persistent store (cross-run cache + cross-process single-flight)
    # ------------------------------------------------------------------

    def _store_preload(
        self, pending: dict[tuple, ExperimentConfig]
    ) -> dict[tuple, ExperimentConfig]:
        """Absorb store entries for claimed keys; returns what stays cold.

        Runs before planning, so a fully warm restart never touches the
        model at all.  Absorbed keys release their single-flight claims
        immediately (their results are in ``_results``).
        """
        with obs.span("store.preload"):
            found = self.store.get_many(list(pending))
        if not found:
            return pending
        with self._lock:
            self._results.update(found)
            for key in found:
                event = self._inflight.pop(key, None)
                if event is not None:
                    event.set()
        return {k: c for k, c in pending.items() if k not in found}

    def _store_partition(
        self, pending: dict[tuple, ExperimentConfig]
    ) -> tuple[dict[tuple, ExperimentConfig], dict[tuple, ExperimentConfig]]:
        """Split cold keys into locally-leased vs foreign-leased sets."""
        local: dict[tuple, ExperimentConfig] = {}
        foreign: dict[tuple, ExperimentConfig] = {}
        for key, config in pending.items():
            if self.store.try_lease(key):
                local[key] = config
            else:
                foreign[key] = config
        if local:
            with self._lock:
                self._held_leases.update(local)
        return local, foreign

    def _release_leases(self, keys) -> None:
        """Release whichever of ``keys`` this engine still holds leases for."""
        if self.store is None:
            return
        with self._lock:
            held = [key for key in keys if key in self._held_leases]
            self._held_leases.difference_update(held)
        for key in held:
            self.store.release_lease(key)

    def _publish_store(self, items: dict) -> None:
        """Publish one committed family and release its execution leases.

        Called beside every ``_journal_record`` site, after results are
        memoised, so the store is a strict subset of what this process
        would serve from memory -- never ahead of it.
        """
        if self.store is None or not items:
            return
        with obs.span("store.publish"):
            self.store.put_many(items)
        self._release_leases(items)

    def _absorb_published(self, remaining: dict[tuple, ExperimentConfig]) -> None:
        """Pull any now-published entries for ``remaining`` into the memo."""
        found = self.store.get_many(list(remaining))
        if not found:
            return
        with self._lock:
            self._results.update(found)
        for key in found:
            remaining.pop(key, None)

    def _resolve_foreign(self, foreign: dict[tuple, ExperimentConfig]) -> None:
        """Wait (bounded) for keys leased by another process, else take over.

        The owner publishes each family then releases its leases, so the
        normal outcome is absorbing its entries mid-poll.  A lease that
        vanished without an entry means the owner failed: take it over
        immediately.  A lease still present after the full timeout means
        the owner is wedged: break it, re-claim, and execute -- liveness
        over economy, and exactness either way (results are pure
        functions of the key).  The wait is attempt-counted through the
        engine's injectable ``_sleep``; no wall clock is read.
        """
        store = self.store
        remaining = dict(foreign)
        obs.incr("store.lease_waits", len(remaining))
        attempts = max(1, int(store.lease_timeout_s / store.poll_interval_s))
        for _ in range(attempts):
            self._absorb_published(remaining)
            if not remaining:
                return
            orphaned = {
                key: config
                for key, config in remaining.items()
                if not store.lease_active(key)
            }
            if orphaned:
                claimed = {
                    key: config
                    for key, config in orphaned.items()
                    if store.try_lease(key)
                }
                if claimed:
                    for key in claimed:
                        remaining.pop(key)
                    obs.incr("store.lease_takeovers", len(claimed))
                    with self._lock:
                        self._held_leases.update(claimed)
                    self._execute_families(claimed)
                if not remaining:
                    return
            self._sleep(store.poll_interval_s)
        self._absorb_published(remaining)
        if not remaining:
            return
        obs.incr("store.lease_timeouts", len(remaining))
        for key in remaining:
            store.break_lease(key)
        claimed = {
            key: config for key, config in remaining.items() if store.try_lease(key)
        }
        if claimed:
            obs.incr("store.lease_takeovers", len(claimed))
            with self._lock:
                self._held_leases.update(claimed)
        # Execute everything left -- re-leased or not -- so this batch
        # always completes even if another waiter re-claimed first.
        self._execute_families(remaining)

    def _planner_applicable(self) -> bool:
        """Whether cold batches may route through the flat megagrid pass.

        The planner cannot reproduce fault-injection probes (one
        ``faults.inject`` per family attempt) or per-group timeout
        preemption, so either forces the per-family path.  Subclassed
        runners/models are detected inside
        :func:`repro.core.plan.plan_groups` itself, which refuses with
        :class:`PlanNotApplicable` (for process sharding, where the
        worker never sees the parent's objects, :meth:`_runner_is_stock`
        re-checks up front).
        """
        return (
            self.planner
            and self.group_timeout_s is None
            and not faults.is_enabled()
        )

    def _runner_is_stock(self) -> bool:
        """Whether shard workers can reconstruct this runner exactly.

        Workers rebuild the runner from ``(seed, noise_cv, calibrate)``;
        that reconstruction is only faithful for the stock classes.
        """
        return (
            type(self.runner) is ExperimentRunner
            and type(self.runner.model) is PerformanceModel
        )

    def _execute_groups(self, groups: list[list[ExperimentConfig]]) -> None:
        # Process sharding runs before any span handles are opened: shard
        # workers record the group spans themselves and the parent grafts
        # them, so pre-opened handles would double-count.
        if (
            self.procs > 1
            and len(groups) > 1
            and self._planner_applicable()
            and _fork_available()
        ):
            if self._execute_groups_sharded(groups):
                return
        # Group spans are opened here, in the submitting thread, so the
        # span tree's shape is identical for serial and parallel runs.
        # Handles whose group never executes (pool startup failure, a
        # fatal sibling) are abandoned in the finally, so the tree stays
        # a pure function of the work actually performed.
        handles = [
            obs.open_span(f"group[{group[0].kernel}/{group[0].npb_class}]")
            for group in groups
        ]
        executed = [False] * len(groups)
        try:
            if self._planner_applicable():
                if self._execute_groups_planned(groups, handles, executed):
                    return
            if self.jobs > 1 and len(groups) > 1:
                if self._execute_groups_pooled(groups, handles, executed):
                    return
            # Serial path: fresh groups, plus any the pool could not take
            # because *startup* failed.  Groups that already ran (or are
            # running) on the pool are never re-executed here.
            for i, (group, handle) in enumerate(zip(groups, handles)):
                if not executed[i]:
                    executed[i] = True
                    self._execute_group(group, handle)
        finally:
            for done, handle in zip(executed, handles):
                if not done:
                    obs.abandon_span(handle)

    def _execute_groups_planned(
        self,
        groups: list[list[ExperimentConfig]],
        handles: list,
        executed: list[bool],
    ) -> bool:
        """One flat megagrid pass over every cold family; True on success.

        The planner computes outcomes side-effect free; each family is
        then committed under its pre-opened span with exactly the
        counters the per-family path would have emitted, so caches,
        journal entries and telemetry are indistinguishable.  A refusal
        (:class:`PlanNotApplicable`) happens before any work or side
        effect, and the caller falls back to the per-family path.
        """
        try:
            outcomes = plan_groups(self.runner, groups)
        except PlanNotApplicable:
            return False
        for i, (group, handle, outcome) in enumerate(zip(groups, handles, outcomes)):
            executed[i] = True
            self._commit_group(group, handle, outcome)
        return True

    def _commit_group(self, group, span_handle, outcome) -> None:
        """Store one planned family exactly as per-family execution would.

        ``outcome`` is the family's shared :class:`DNRError` verdict or
        its result list.  Counters and the activated span mirror
        :meth:`_execute_group` plus the ``model.batch_*`` counters the
        runner would have emitted inside ``run_many``.
        """
        with obs.activate(span_handle):
            obs.incr("model.batch_calls")
            obs.incr("model.batch_points", len(group))
            if isinstance(outcome, DNRError):
                obs.incr("sweep.dnr_raises")
                with self._lock:
                    store = {self.cache_key(c): outcome for c in group}
                    self._results.update(store)
                self._journal_record(store)
                self._publish_store(store)
                self._notify_family(len(group), dnr=True)
                return
            obs.incr("sweep.groups_executed")
            obs.incr("sweep.configs_executed", len(group))
            with self._lock:
                store = dict(zip((self.cache_key(c) for c in group), outcome))
                self._results.update(store)
            self._journal_record(store)
            self._publish_store(store)
            self._notify_family(len(group), dnr=False)

    def _execute_groups_sharded(self, groups: list[list[ExperimentConfig]]) -> bool:
        """Fan cold families out across forked worker processes.

        All-or-nothing: results, counters, span subtrees and main-journal
        entries are committed only after every shard returns, so a worker
        failure (or an environment that cannot fork) leaves no trace and
        the caller falls back to the in-process paths, which reproduce
        exact per-family semantics -- including re-raising whatever
        felled the worker.  Workers journal each completed family to a
        ``<journal>.shardN`` sidecar, so even the discarded partial work
        of a crashed run survives for :meth:`attach_journal` to absorb.
        """
        if not self._runner_is_stock():
            return False
        runner = self.runner
        # Sidecars are keyed off the first attached journal's path; with
        # none attached the shards run journal-free (results still merge
        # through the all-or-nothing commit below).
        with self._lock:
            journals = list(self._journals)
        base_path = str(journals[0][0].path) if journals else None
        procs = min(self.procs, len(groups))
        # Contiguous block shards (not round-robin): grafting the shard
        # span trees in shard order then reproduces the exact child
        # order the sequential path creates, keeping serialised span
        # trees byte-identical, not merely equivalent.
        shards: list[list[tuple[int, list[ExperimentConfig]]]] = []
        base, extra = divmod(len(groups), procs)
        start = 0
        for s in range(procs):
            size = base + (1 if s < extra else 0)
            shards.append([(i, groups[i]) for i in range(start, start + size)])
            start += size
        telemetry = obs.is_enabled()
        try:
            pool = ProcessPoolExecutor(
                max_workers=procs,
                mp_context=multiprocessing.get_context("fork"),
            )
        except (RuntimeError, OSError, ValueError):
            return False
        merged: list = [None] * len(groups)
        counter_merge: dict[str, int] = {}
        span_merge: list[list[dict]] = []
        sidecars: list[str] = []
        ok = False
        try:
            futures = []
            for s, shard in enumerate(shards):
                sidecar = f"{base_path}.shard{s}" if base_path is not None else None
                payload = (
                    [group for _, group in shard],
                    runner.seed,
                    runner.noise_cv,
                    runner.model.calibrate,
                    telemetry,
                    sidecar,
                )
                try:
                    futures.append((shard, pool.submit(_shard_worker, payload)))
                except (RuntimeError, OSError):
                    return False
                if sidecar is not None:
                    sidecars.append(sidecar)
            for shard, future in futures:
                try:
                    outcomes, counters, children = future.result()
                except Exception:  # repro: noqa[R007] -- worker failures fall back to the in-process path, which re-raises with exact per-family semantics
                    return False
                for (i, _group), outcome in zip(shard, outcomes):
                    merged[i] = outcome
                for name, value in counters.items():
                    counter_merge[name] = counter_merge.get(name, 0) + value
                span_merge.append(children)
            ok = True
        finally:
            pool.shutdown(wait=ok, cancel_futures=not ok)
        for name in sorted(counter_merge):
            obs.incr(name, counter_merge[name])
        for children in span_merge:
            obs.graft_children(children)
        for group, outcome in zip(groups, merged):
            if isinstance(outcome, DNRError):
                store = {self.cache_key(c): outcome for c in group}
            else:
                store = dict(zip((self.cache_key(c) for c in group), outcome))
            with self._lock:
                self._results.update(store)
            self._journal_record(store)
            self._publish_store(store)
            self._notify_family(len(group), dnr=isinstance(outcome, DNRError))
        for sidecar in sidecars:
            try:
                os.unlink(sidecar)
            except OSError:
                pass
        return True

    def _make_pool(self, workers: int) -> ThreadPoolExecutor:
        """Pool construction, separated so tests can starve it."""
        return ThreadPoolExecutor(max_workers=workers)

    def _execute_groups_pooled(
        self,
        groups: list[list[ExperimentConfig]],
        handles: list,
        executed: list[bool],
    ) -> bool:
        """Run groups on a thread pool; returns True when nothing is left.

        Only *pool startup* failures (the executor or its worker threads
        cannot be created -- thread-starved environments, interpreter
        shutdown) fall back: ``False`` is returned with ``executed``
        marking what the pool did take, and the caller runs the
        remainder serially.  A failure raised *inside* a group is a
        result, not a startup problem: it propagates (after sibling
        groups finish and store their results) and nothing is re-run.
        """
        try:
            pool = self._make_pool(min(self.jobs, len(groups)))
        except (RuntimeError, OSError):
            return False  # executor never existed; nothing was executed
        futures = {}
        all_submitted = True
        for i, (group, handle) in enumerate(zip(groups, handles)):
            try:
                futures[i] = pool.submit(self._execute_group, group, handle)
            except (RuntimeError, OSError):
                # Worker-thread startup failed.  Already-submitted groups
                # still run to completion below; the rest go serial.
                all_submitted = False
                break
            executed[i] = True
        try:
            for i, future in futures.items():
                try:
                    future.result(timeout=self.group_timeout_s)
                except FuturesTimeoutError:
                    # Cancel whatever has not started; groups already
                    # running cannot be preempted and are disowned.
                    for j, other in futures.items():
                        if other.cancel():
                            executed[j] = False
                    group = groups[i]
                    raise GroupTimeoutError(
                        f"group[{group[0].kernel}/{group[0].npb_class}] exceeded "
                        f"the {self.group_timeout_s}s group timeout"
                    ) from None
        except GroupTimeoutError:
            pool.shutdown(wait=False)
            raise
        except BaseException:
            # A group failed: let its siblings finish (their results are
            # stored and counted exactly once), then propagate.
            pool.shutdown(wait=True)
            raise
        pool.shutdown(wait=True)
        return all_submitted

    def _execute_group(self, group: list[ExperimentConfig], span_handle=None) -> None:
        """Run one thread-sweep family and store its results (or its DNR)."""
        with obs.activate(span_handle):
            try:
                results = self._run_group_resilient(group)
            except DNRError as exc:
                # DNR is a property of (machine, kernel, class), independent
                # of thread count -- the whole family shares the verdict.
                obs.incr("sweep.dnr_raises")
                with self._lock:
                    store = {self.cache_key(c): exc for c in group}
                    self._results.update(store)
                self._journal_record(store)
                self._publish_store(store)
                self._notify_family(len(group), dnr=True)
                return
            obs.incr("sweep.groups_executed")
            obs.incr("sweep.configs_executed", len(group))
            with self._lock:
                store = dict(zip((self.cache_key(c) for c in group), results))
                self._results.update(store)
            self._journal_record(store)
            self._publish_store(store)
            self._notify_family(len(group), dnr=False)

    def _run_group_resilient(self, group: list[ExperimentConfig]):
        """One family through the runner, retrying transient failures.

        The installed fault plan is probed once per attempt (keyed by the
        family, so schedules are execution-order independent).  Transient
        failures -- injected or raised by the runner itself -- back off
        exponentially from ``backoff_s`` and retry up to ``retries``
        times; every other exception propagates to the caller unchanged.
        """
        site_key = "/".join(str(part) for part in group[0].family_key())
        attempt = 0
        while True:
            try:
                faults.inject("sweep.group", site_key)
                return self.runner.run_many(group)
            except TransientError:
                if attempt >= self.retries:
                    raise
                attempt += 1
                obs.incr("sweep.retries")
                self._sleep(self.backoff_s * (2 ** (attempt - 1)))

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Memoised single-config execution (raises on DNR, like the runner)."""
        return self.run_many([config], on_dnr="raise")[0]

    def try_run(self, config: ExperimentConfig) -> ExperimentResult | None:
        """Like :meth:`run` but returns ``None`` for DNR configs."""
        return self.run_many([config], on_dnr="none")[0]

    def sweep_threads(
        self, config: ExperimentConfig, thread_counts: Iterable[int]
    ) -> list[ExperimentResult]:
        """Memoised thread-count sweep (one figure line in the paper)."""
        return self.run_many(
            [config.with_threads(n) for n in thread_counts]
        )


# ----------------------------------------------------------------------
# Process-shard workers (module-level for pickling across the fork)
# ----------------------------------------------------------------------


def _fork_available() -> bool:
    """Whether this platform can fork shard workers at all."""
    return "fork" in multiprocessing.get_all_start_methods()


def _reinit_forked_locks() -> None:
    """Give a forked shard worker fresh module-level locks.

    ``fork`` snapshots lock state: a lock some other parent thread
    happened to hold at fork time would be held forever in the child.
    Every process-wide lock in the package is rebound here, at worker
    startup, before anything in the child can take one.
    """
    import repro.cachesim.stats as _stats
    import repro.cachesim.trace as _trace
    import repro.faults.plan as _faults_plan
    import repro.npb.cg as _cg
    import repro.npb.ep as _ep
    import repro.obs as _obs

    from . import plan as _plan

    global _default_lock, _default_engine
    _obs._recorder_lock = threading.Lock()
    _faults_plan._plan_lock = threading.Lock()
    _stats._profile_lock = threading.Lock()
    _trace._trace_lock = threading.Lock()
    _cg._matrix_lock = threading.Lock()
    _ep._golden_lock = threading.Lock()
    _plan._fastpath_lock = threading.Lock()
    _default_lock = threading.Lock()  # repro: noqa[R002] -- freshly forked child is single-threaded; the stale lock being replaced is itself the hazard
    with _default_lock:
        # The inherited default engine carries the parent's (possibly
        # held) instance locks; drop it so any use in the child starts
        # from a clean engine.
        _default_engine = None


def _shard_worker(payload: tuple):
    """Evaluate one shard of thread-sweep families in a forked child.

    Reconstructs a stock runner from the parent's ``(seed, noise_cv,
    calibrate)`` triple (faithful by the parent's ``_runner_is_stock``
    gate), evaluates its families through the planner with a per-family
    fallback, and emits per-group telemetry into a private recorder
    whose counters and span children the parent merges deterministically.
    Completed families are journaled to the per-shard sidecar as they
    land, so a crash after partial progress still leaves resumable
    state.  Non-DNR errors propagate to the parent, which discards the
    whole sharded attempt and re-executes in process.
    """
    groups, seed, noise_cv, calibrate, telemetry, sidecar = payload
    _reinit_forked_locks()
    recorder = obs.install() if telemetry else None
    if recorder is None:
        obs.disable()
    runner = ExperimentRunner(
        model=PerformanceModel(calibrate=calibrate), noise_cv=noise_cv, seed=seed
    )
    journal = SweepJournal(sidecar) if sidecar is not None else None
    try:
        planned = plan_groups(runner, groups)
    except PlanNotApplicable:
        planned = None
    outcomes = []
    for idx, group in enumerate(groups):
        handle = obs.open_span(f"group[{group[0].kernel}/{group[0].npb_class}]")
        with obs.activate(handle):
            if planned is not None:
                outcome = planned[idx]
                obs.incr("model.batch_calls")
                obs.incr("model.batch_points", len(group))
            else:
                try:
                    outcome = runner.run_many(group)
                except DNRError as exc:
                    outcome = exc
            if isinstance(outcome, DNRError):
                obs.incr("sweep.dnr_raises")
                store = {
                    compute_cache_key(seed, noise_cv, calibrate, c): outcome
                    for c in group
                }
            else:
                obs.incr("sweep.groups_executed")
                obs.incr("sweep.configs_executed", len(group))
                store = dict(
                    zip(
                        (
                            compute_cache_key(seed, noise_cv, calibrate, c)
                            for c in group
                        ),
                        outcome,
                    )
                )
            if journal is not None:
                journal.record(store)
        outcomes.append(outcome)
    if recorder is not None:
        counters = recorder.counters_snapshot()
        children = recorder.span_tree()["children"]
    else:
        counters, children = {}, []
    return outcomes, counters, children


# ----------------------------------------------------------------------
# Process-wide default engine (what the harness and CLI share)
# ----------------------------------------------------------------------

_default_engine: SweepEngine | None = None
_default_lock = threading.Lock()


def default_engine() -> SweepEngine:
    """The shared engine the table/figure regenerators execute through.

    Sharing one engine means regenerating Table 3 warms the cache for
    Table 4's identical single-thread column, and the figures reuse both.
    """
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = SweepEngine()
        return _default_engine


def set_default_jobs(jobs: int | None) -> None:
    """Set worker-thread count on the shared engine (the ``--jobs`` flag)."""
    engine = default_engine()
    engine.jobs = SweepEngine._resolve_jobs(jobs)


def set_default_retries(retries: int | None) -> None:
    """Set the transient-retry budget on the shared engine (``--retries``)."""
    engine = default_engine()
    engine.retries = SweepEngine._resolve_retries(retries)


def set_default_procs(procs: int | None) -> None:
    """Set worker-process count on the shared engine (the ``--procs`` flag)."""
    engine = default_engine()
    engine.procs = SweepEngine._resolve_procs(procs)


def set_default_store(store) -> None:
    """Attach a persistent result store to the shared engine (``--store``).

    Accepts a :class:`repro.store.ResultStore`, a directory path, or
    ``None`` to detach (an explicit ``None`` detaches rather than
    re-reading the environment: the flag wins over ``REPRO_STORE``).
    """
    engine = default_engine()
    engine.store = None if store is None else SweepEngine._resolve_store(store)


def clear_caches() -> None:
    """Evict every process-wide cache this package maintains.

    Covers the default engine's memoised results, the performance model's
    calibration anchors, the CG system-matrix, cachesim trace and stall
    profile caches, and the memoised machine/compiler/signature getters.
    Mainly a test and long-lived-process escape hatch: caches never go
    stale in normal use because every key captures all inputs.
    """
    from repro.cachesim.stats import clear_profile_cache
    from repro.cachesim.trace import clear_trace_cache
    from repro.compilers.gcc import default_compiler_for, get_compiler
    from repro.machines.catalog import get_machine
    from repro.npb.cg import clear_matrix_cache
    from repro.npb.signatures import signature_for

    with _default_lock:
        engine = _default_engine
    if engine is not None:
        engine.clear_cache()
        engine.runner.model.clear_cache()
    clear_matrix_cache()
    clear_trace_cache()
    clear_profile_cache()
    signature_for.cache_clear()
    get_machine.cache_clear()
    get_compiler.cache_clear()
    default_compiler_for.cache_clear()
