"""Analytic execution-time model: (machine, kernel, compiler, threads) -> time.

The model composes four partially-overlapping cost terms::

    T = max(T_compute, T_stream) + T_latency + T_sync

* ``T_compute`` -- dynamic instructions over the aggregate sustained issue
  rate, after Amdahl/imbalance thread derating and the compiler's
  scalar-quality and vectorisation multipliers.
* ``T_stream``  -- DRAM streaming traffic (plus transpose/halo
  communication traffic, which in shared-memory OpenMP *is* memory
  traffic) over the machine's saturating bandwidth curve ``BW(n)``.
  Modern cores overlap streaming misses with compute, hence the ``max``.
* ``T_latency`` -- prefetch-defeating random accesses over the machine's
  saturating random-access service rate ``R(n)``.  This is what makes IS
  plateau on the SG2042 (Figure 2) and scale on the SG2044.
* ``T_sync``    -- OpenMP barrier/reduction costs.

Absolute single-core rates are anchored per (machine, kernel) by
:mod:`repro.core.calibration`; everything about *scaling* -- plateaus,
crossovers, the 1.52-4.91x SG2044/SG2042 spread of Table 4 -- emerges from
the saturation physics above.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.compilers.model import CompilerSpec, vectorisation_outcome
from repro.machines.machine import Machine
from repro.machines.memory import smoothmin_grid

from .signature import KernelSignature

__all__ = ["Prediction", "PerformanceModel", "DNRError"]


class DNRError(RuntimeError):
    """The configuration Did Not Run (e.g. working set exceeds DRAM).

    Mirrors the paper's "DNR" entry for FT on the 1 GB AllWinner D1.
    """


@dataclass(frozen=True)
class Prediction:
    """One model evaluation.

    ``time_s`` is the predicted wall-clock for the whole benchmark;
    ``mops`` the corresponding NPB-style Mop/s.  The breakdown fields are
    the un-overlapped cost terms (their sum exceeds ``time_s`` because
    compute and streaming overlap).
    """

    machine: str
    kernel: str
    npb_class: str
    n_threads: int
    time_s: float
    mops: float
    t_compute: float
    t_stream: float
    t_latency: float
    t_sync: float
    vectorised: bool
    calibration_factor: float = 1.0
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def dominant_term(self) -> str:
        terms = {
            "compute": self.t_compute,
            "stream": self.t_stream,
            "latency": self.t_latency,
            "sync": self.t_sync,
        }
        return max(terms, key=terms.__getitem__)


class PerformanceModel:
    """Evaluates the analytic model, optionally with calibration anchors.

    Parameters
    ----------
    calibrate:
        When true (default), per-(machine, kernel) single-core anchors
        from :mod:`repro.core.calibration` scale predicted times so that
        the anchored reference points land on the paper's measurements.
        Turn off to inspect the raw physics.
    """

    def __init__(self, calibrate: bool = True) -> None:
        self.calibrate = calibrate
        self._kappa_cache: dict[tuple[str, str], tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def predict(
        self,
        machine: Machine,
        signature: KernelSignature,
        compiler: CompilerSpec,
        n_threads: int,
        vectorise: bool = True,
    ) -> Prediction:
        """Predict execution of one benchmark configuration.

        Raises
        ------
        DNRError
            If the working set does not fit in the machine's DRAM.
        ValueError
            For thread counts the machine cannot supply.
        """
        return self.predict_batch(machine, signature, compiler, (n_threads,), vectorise)[0]

    def predict_batch(
        self,
        machine: Machine,
        signatures: KernelSignature | Sequence[KernelSignature],
        compiler: CompilerSpec,
        thread_counts: Sequence[int],
        vectorise: bool = True,
    ) -> list[Prediction]:
        """Predict a grid of configurations in one vectorised evaluation.

        All cost terms are computed with NumPy over the whole
        ``thread_counts`` axis at once, and the per-signature setup
        (vectorisation legality, compiler quality factors, calibration
        anchors) is resolved once per signature rather than once per
        config.  ``predict`` routes through this path with a single-point
        grid, so batch and scalar predictions are identical bit for bit.

        Returns predictions in signature-major order: all thread counts of
        the first signature, then the second, and so on.

        Raises like :meth:`predict`: :class:`DNRError` when a signature's
        working set does not fit the machine, ``ValueError`` for thread
        counts the machine cannot supply.
        """
        sigs = (
            [signatures]
            if isinstance(signatures, KernelSignature)
            else list(signatures)
        )
        ns = np.asarray(tuple(thread_counts), dtype=np.int64)
        if ns.size == 0 or not sigs:
            return []
        for n in dict.fromkeys(ns.tolist()):
            machine.validate_thread_count(n)

        out: list[Prediction] = []
        for sig in sigs:
            if not machine.memory.fits(int(sig.working_set_bytes)):
                raise DNRError(
                    f"{sig.display} class {sig.npb_class} needs "
                    f"{sig.working_set_bytes / 2**30:.2f} GiB but "
                    f"{machine.label} has only "
                    f"{machine.memory.capacity_bytes / 2**30:.0f} GiB DRAM"
                )
            raw = self._raw_time_grid(machine, sig, compiler, ns, vectorise)
            if self.calibrate:
                alpha, kappa = self._calibration_factors(machine, sig)
            else:
                alpha, kappa = 1.0, 1.0
            t_comp = raw["compute"] * alpha
            time_s = (
                np.maximum(t_comp, raw["stream"]) + raw["latency"] + raw["sync"]
            ) * kappa
            mops = sig.total_mops / time_s
            t_comp_k = t_comp * kappa
            t_stream_k = raw["stream"] * kappa
            t_latency_k = raw["latency"] * kappa
            t_sync_k = raw["sync"] * kappa
            notes = tuple(raw["notes"])
            for i, n in enumerate(ns.tolist()):
                out.append(
                    Prediction(
                        machine=machine.name,
                        kernel=sig.name,
                        npb_class=sig.npb_class,
                        n_threads=n,
                        time_s=float(time_s[i]),
                        mops=float(mops[i]),
                        t_compute=float(t_comp_k[i]),
                        t_stream=float(t_stream_k[i]),
                        t_latency=float(t_latency_k[i]),
                        t_sync=float(t_sync_k[i]),
                        vectorised=raw["vectorised"],
                        calibration_factor=alpha * kappa,
                        notes=notes,
                    )
                )
        return out

    def clear_cache(self) -> None:
        """Drop memoised calibration factors (rarely needed)."""
        self._kappa_cache.clear()

    # ------------------------------------------------------------------
    # Cost terms
    # ------------------------------------------------------------------

    def _raw_time(
        self,
        machine: Machine,
        sig: KernelSignature,
        compiler: CompilerSpec,
        n: int,
        vectorise: bool,
    ) -> dict:
        """Scalar view of :meth:`_raw_time_grid` (calibration's entry point)."""
        g = self._raw_time_grid(
            machine, sig, compiler, np.asarray([n], dtype=np.int64), vectorise
        )
        return {
            "total": float(g["total"][0]),
            "compute": float(g["compute"][0]),
            "stream": float(g["stream"][0]),
            "latency": float(g["latency"][0]),
            "sync": float(g["sync"][0]),
            "vectorised": g["vectorised"],
            "notes": g["notes"],
        }

    def _raw_time_grid(
        self,
        machine: Machine,
        sig: KernelSignature,
        compiler: CompilerSpec,
        ns: np.ndarray,
        vectorise: bool,
    ) -> dict:
        """Raw (uncalibrated) cost terms over a whole thread-count axis."""
        notes: list[str] = []
        nsf = ns.astype(np.float64)

        # --- cache fit: how much of the nominal traffic reaches DRAM ----
        cache_bytes = machine.effective_cache_bytes_per_thread_grid(ns) * nsf
        spill = self._spill_fraction_grid(sig.working_set_bytes, cache_bytes)

        # --- compute ----------------------------------------------------
        outcome = vectorisation_outcome(
            compiler,
            machine.core.vector,
            sig.name,
            sig.vec_fraction,
            vectorise,
            gather_pathology=sig.gather_pathology,
        )
        if vectorise and not outcome.legal and machine.core.has_vector:
            notes.append(
                f"{compiler.display} cannot target "
                f"{machine.core.vector.standard.value}; scalar code emitted"
            )

        rate_per_core = (
            machine.scalar_rate_per_core()
            * compiler.scalar_quality_for(sig.name)
            * outcome.compute_multiplier
        )
        n_eff = self._effective_threads_grid(sig, machine, ns)
        t_compute = sig.total_instructions / (n_eff * rate_per_core)

        # --- streaming bandwidth -----------------------------------------
        # The compiler's saturation quality scales the *ceilings*: poorly
        # scheduled memory code extracts less of the saturated subsystem
        # but is indistinguishable while a single core is the bottleneck.
        satq = compiler.saturation_quality_for(sig.name)
        comm_bytes = self._communication_bytes_grid(sig, machine, ns)
        stream_bytes = sig.total_dram_bytes * spill + comm_bytes
        bw_demand = nsf * machine.memory.per_core_stream_bw_gbs
        bw = (
            smoothmin_grid(
                bw_demand,
                machine.memory.sustained_bw_gbs * satq,
                machine.memory.saturation_sharpness,
            )
            * 1e9
        )
        t_stream = stream_bytes / bw

        # --- random-access latency ---------------------------------------
        t_latency = self._latency_time_grid(machine, sig, ns, spill, cap_scale=satq)
        t_latency = t_latency * outcome.latency_multiplier

        # --- synchronisation ----------------------------------------------
        n_barriers = sig.comm.barriers_per_mop * sig.total_mops
        t_sync = n_barriers * machine.barrier_cost_s_grid(ns)

        total = np.maximum(t_compute, t_stream) + t_latency + t_sync
        return {
            "total": total,
            "compute": t_compute,
            "stream": t_stream,
            "latency": t_latency,
            "sync": t_sync,
            "vectorised": outcome.applied,
            "notes": notes,
        }

    @staticmethod
    def _spill_fraction(working_set: float, cache_bytes: float) -> float:
        """Fraction of nominal DRAM traffic that actually reaches DRAM.

        NPB's big kernels sweep their working set with full-set reuse
        distance, so under (pseudo-)LRU the cache is nearly all-or-nothing:
        a set slightly larger than cache thrashes completely.  We model a
        sharp knee -- full spill below ~60% coverage, full residency (bar
        a 2% compulsory/coherence trickle) once it fits.
        """
        if working_set <= 0:
            raise ValueError("working_set must be positive")
        ratio = cache_bytes / working_set
        if ratio >= 1.0:
            return 0.02
        if ratio <= 0.6:
            return 1.0
        # Narrow transition band: partial tiling/blocking effects.
        return 1.0 - (1.0 - 0.02) * (ratio - 0.6) / 0.4

    @staticmethod
    def _spill_fraction_grid(
        working_set: float | np.ndarray, cache_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`_spill_fraction` over an array of capacities.

        ``working_set`` may itself be an array (one entry per grid row)
        when called from the megagrid planner; the arithmetic is
        elementwise either way.
        """
        if np.any(np.asarray(working_set) <= 0):
            raise ValueError("working_set must be positive")
        ratio = cache_bytes / working_set
        trans = 1.0 - (1.0 - 0.02) * (ratio - 0.6) / 0.4
        return np.where(ratio >= 1.0, 0.02, np.where(ratio <= 0.6, 1.0, trans))

    @staticmethod
    def _effective_threads(sig: KernelSignature, machine: Machine, n: int) -> float:
        """Scalar view of :meth:`_effective_threads_grid` for one count."""
        return float(
            PerformanceModel._effective_threads_grid(
                sig, machine, np.asarray([n], dtype=np.int64)
            )[0]
        )

    @staticmethod
    def _effective_threads_grid(
        sig: KernelSignature, machine: Machine, ns: np.ndarray
    ) -> np.ndarray:
        """Amdahl + load-imbalance + machine-side derating of thread counts."""
        nsf = ns.astype(np.float64)
        amdahl = nsf / (1.0 + sig.serial_fraction * (nsf - 1.0))
        imbalance = np.maximum(0.5, 1.0 - sig.imbalance_coeff * np.log2(nsf))
        # NUMA remote-touch penalties only bite kernels that touch DRAM.
        numa_sensitive = sig.dram_bytes_per_op > 0.3
        res = (
            amdahl
            * imbalance
            * machine.parallel_efficiency_grid(ns, numa_sensitive=numa_sensitive)
        )
        return np.where(ns == 1, 1.0, res)

    @staticmethod
    def _communication_bytes(sig: KernelSignature, machine: Machine, n: int) -> float:
        """Scalar view of :meth:`_communication_bytes_grid` for one count."""
        return float(
            PerformanceModel._communication_bytes_grid(
                sig, machine, np.asarray([n], dtype=np.int64)
            )[0]
        )

    @staticmethod
    def _communication_bytes_grid(
        sig: KernelSignature, machine: Machine, ns: np.ndarray
    ) -> np.ndarray:
        """Inter-thread traffic, which on a shared-memory chip is memory
        traffic.

        Halo (neighbour) volume grows with the number of partition
        surfaces, ~ n^(2/3) for 3D decompositions, normalised to the
        full-chip run the signature was characterised at.  All-to-all
        transpose volume is essentially constant in n (every element moves
        once) but pays a NUMA factor when threads span regions.
        """
        nsf = ns.astype(np.float64)
        ref = machine.n_cores
        neighbour = sig.comm.neighbour_bytes * sig.total_ops * (nsf / ref) ** (2.0 / 3.0)
        if machine.topology.numa_regions > 1:
            numa_factor = np.where(ns > machine.topology.cores_per_numa, 1.25, 1.0)
        else:
            numa_factor = 1.0
        alltoall = sig.comm.alltoall_bytes * sig.total_ops * numa_factor
        return np.where(ns == 1, 0.0, neighbour + alltoall)

    @staticmethod
    def _latency_time(
        machine: Machine,
        sig: KernelSignature,
        n: int,
        spill: float,
        cap_scale: float = 1.0,
    ) -> float:
        """Scalar view of :meth:`_latency_time_grid` for one thread count."""
        return float(
            PerformanceModel._latency_time_grid(
                machine,
                sig,
                np.asarray([n], dtype=np.int64),
                np.asarray([spill], dtype=np.float64),
                cap_scale,
            )[0]
        )

    @staticmethod
    def _latency_time_grid(
        machine: Machine,
        sig: KernelSignature,
        ns: np.ndarray,
        spill: np.ndarray,
        cap_scale: float = 1.0,
    ) -> np.ndarray:
        """Random-access (latency-bound) time, serviced hierarchically.

        The randomly-accessed structure (``sig.random_target_bytes``) is
        split by where it fits:

        * the mid-level cache instance (private or cluster L2) -- serviced
          at L2 latency, scaling with the number of occupied clusters
          (CG's x-vector; the SG2044's doubled 2 MB L2 helps exactly here);
        * the shared last-level cache -- serviced at LLC latency but
          capped chip-wide by the fabric (the SG2042's crossbar is why IS
          plateaus at 16 cores there);
        * DRAM -- capped by the controllers' random-row throughput.

        Contention appears *only* through the smooth-min ceilings;
        loaded-latency inflation on top would double-count saturation.
        """
        total = sig.total_random_accesses * (1.0 - sig.latency_hidden_fraction)
        if total <= 0.0:
            return np.zeros(ns.shape, dtype=np.float64)

        nsf = ns.astype(np.float64)
        target_bytes = sig.effective_random_target_bytes
        mlp = machine.memory.core_mlp * sig.gather_mlp_factor
        sharp = machine.memory.saturation_sharpness
        ghz = machine.clock_ghz

        mid = machine.cache(2) if machine.cache(3) is not None else None
        llc = machine.last_level_cache

        # Fit fractions (hot-end shares: a structure 2x the cache still
        # hits for the resident half).
        fit_mid = 0.0
        if mid is not None:
            fit_mid = 0.98 * min(1.0, mid.size_bytes / target_bytes)
        llc_agg = llc.size_bytes * (
            machine.n_cores // machine.cores_sharing(llc)
        )
        fit_llc = max(fit_mid, 0.98 * min(1.0, llc_agg / target_bytes))
        frac_dram = np.maximum(1.0 - fit_llc, 0.02 * spill + (1.0 - spill) * 0.0)
        frac_llc = np.maximum(0.0, 1.0 - fit_mid - frac_dram)
        frac_mid = np.maximum(0.0, 1.0 - frac_llc - frac_dram)

        # Zero fractions contribute exactly 0.0 to the sum, matching the
        # scalar model's if-gated accumulation term for term.
        time = np.zeros(ns.shape, dtype=np.float64)
        if mid is not None:
            lat_s = mid.latency_cycles / ghz * 1e-9
            demand = nsf * mlp / lat_s
            # One line every ~3 cycles per L2 instance.
            sharers = machine.cores_sharing(mid)
            instances = -(-ns // sharers)
            cap = instances * machine.clock_hz / 3.0
            time = time + frac_mid * total / smoothmin_grid(demand, cap, sharp)
        lat_s = llc.latency_cycles / ghz * 1e-9
        demand = nsf * mlp / lat_s
        cap = (
            machine.memory.random_rate_cap()
            * machine.memory.llc_random_boost
            * cap_scale
        )
        time = time + frac_llc * total / smoothmin_grid(demand, cap, sharp)
        lat_s = machine.memory.idle_latency_ns * 1e-9
        demand = nsf * mlp / lat_s
        cap = machine.memory.random_rate_cap() * cap_scale
        time = time + frac_dram * total / smoothmin_grid(demand, cap, sharp)
        return time

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _calibration_factors(
        self, machine: Machine, sig: KernelSignature
    ) -> tuple[float, float]:
        key = (machine.name, sig.name)
        if key in self._kappa_cache:
            return self._kappa_cache[key]
        # Imported here to avoid a cycle (calibration builds signatures).
        from . import calibration

        factors = calibration.calibration_factors(machine, sig.name, self)
        self._kappa_cache[key] = factors
        return factors
