"""Derived metrics: speedups, relative performance, paper-style ratios."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "times_faster",
    "percent_of",
    "speedup_curve",
    "parallel_efficiency",
    "crossover_threads",
]


def times_faster(mops_a: float, mops_b: float) -> float:
    """How many times faster A is than B (the paper's Tables 3/4/6 metric).

    >>> round(times_faster(3038.14, 618.50), 2)
    4.91
    """
    if mops_a <= 0 or mops_b <= 0:
        raise ValueError("rates must be positive")
    return mops_a / mops_b


def percent_of(mops: float, reference_mops: float) -> float:
    """Percentage of a reference rate (the red figures of Table 2)."""
    if reference_mops <= 0:
        raise ValueError("reference rate must be positive")
    if mops < 0:
        raise ValueError("rate must be non-negative")
    return 100.0 * mops / reference_mops


def speedup_curve(mops_by_threads: Sequence[tuple[int, float]]) -> list[tuple[int, float]]:
    """Speedup over the single-thread point for a scaling sweep.

    Input must contain the 1-thread measurement.
    """
    base_mops = None
    for n, mops in mops_by_threads:
        if n == 1:
            base_mops = mops
            break
    if base_mops is None:
        raise ValueError("speedup needs the 1-thread measurement")
    if base_mops <= 0:
        raise ValueError("1-thread rate must be positive")
    return [(n, mops / base_mops) for n, mops in mops_by_threads]


def parallel_efficiency(mops_by_threads: Sequence[tuple[int, float]]) -> list[tuple[int, float]]:
    """Parallel efficiency (speedup / threads) for a scaling sweep."""
    return [(n, s / n) for n, s in speedup_curve(mops_by_threads)]


def crossover_threads(
    curve_a: Sequence[tuple[int, float]],
    curve_b: Sequence[tuple[int, float]],
) -> int | None:
    """First thread count at which curve A overtakes curve B.

    Curves are (threads, Mop/s) sequences; only thread counts present in
    both are compared.  Returns ``None`` if A never overtakes B (the
    paper's "whole CPU" comparisons, e.g. 64-core SG2044 vs 32-core
    ThunderX2 on CG, are about exactly this kind of crossover).
    """
    b_by_n = dict(curve_b)
    for n, mops_a in sorted(curve_a):
        if n in b_by_n and mops_a > b_by_n[n]:
            return n
    return None
