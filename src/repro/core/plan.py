"""One-shot megakernel grid planner: whole-artifact flattened evaluation.

The sweep engine's per-family path evaluates one thread-sweep family per
:meth:`PerformanceModel.predict_batch` call -- a whole table regeneration
is dozens of small vectorised passes plus per-config ``default_rng``
construction.  This module flattens *all* cold families of a batch into
one structured-array **megagrid** (one row per config, per-family columns
broadcast across each family's row slice), evaluates the model's four
cost terms in a single pass per machine segment, and derives every
config's measurement-noise PCG64 stream in bulk.

Exactness contract: every number produced here is **bit-identical** to
the per-family path.  That falls out of three properties:

* every arithmetic step below mirrors ``_raw_time_grid`` (and the
  ``predict_batch`` assembly) operation for operation, preserving
  evaluation order and associativity -- IEEE-754 arithmetic is
  deterministic per operation, so elementwise-equal inputs through the
  same operation DAG give elementwise-equal outputs;
* calibration anchors are evaluated as extra single-thread rows of the
  same megagrid and converted through the shared
  :func:`repro.core.calibration.factors_from_raw`;
* the noise streams are seeded per config (sha256 of the config key via
  :func:`repro.core.experiment.measurement_seed`); the bulk PCG64 state
  derivation below is validated against ``np.random.default_rng`` at
  first use and falls back to per-config construction if NumPy's seeding
  ever changes.

The planner is deliberately side-effect free: no :mod:`repro.obs`
counters or spans, no journal writes, no engine-cache mutation.  The
caller (``SweepEngine._execute_groups_planned``) commits results and
telemetry per family so counters, span trees and journals are
indistinguishable from per-family execution.  When a batch uses any
feature the flat pass cannot reproduce (subclassed runner or model,
invalid thread counts that must raise from ``predict_batch``), the
planner refuses with :class:`PlanNotApplicable` and the engine falls
back to the per-family path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.compilers.gcc import default_compiler_for, get_compiler
from repro.compilers.model import vectorisation_outcome
from repro.machines.catalog import get_machine
from repro.machines.memory import smoothmin_grid

from .calibration import anchor_for, factors_from_raw
from .experiment import ExperimentConfig, ExperimentRunner, measurement_seed
from .perfmodel import DNRError, PerformanceModel, Prediction
from .results import ExperimentResult, RunSample

__all__ = [
    "PlanNotApplicable",
    "plan_groups",
    "GRID_DTYPE",
    "fastpath_available",
]


class PlanNotApplicable(Exception):
    """The flat megagrid pass cannot reproduce this batch bit-identically.

    Raised before any work happens; the engine falls back to the
    per-family path, which then raises (or computes) exactly what the
    sequential engine always did.
    """


#: One megagrid row per config: the thread count plus every per-family
#: quantity ``_raw_time_grid`` consumes, broadcast across the family's
#: row slice so machine segments evaluate in one vectorised pass.
GRID_DTYPE = np.dtype(
    [
        ("n", np.int64),  # thread count (the only per-row axis)
        ("ws_bytes", np.float64),  # sig.working_set_bytes
        ("total_instructions", np.float64),
        ("total_dram_bytes", np.float64),
        ("neighbour_op_bytes", np.float64),  # comm.neighbour_bytes * total_ops
        ("alltoall_op_bytes", np.float64),  # comm.alltoall_bytes * total_ops
        ("n_barriers", np.float64),  # barriers_per_mop * total_mops
        ("rate_per_core", np.float64),  # scalar rate * quality * vec multiplier
        ("serial_fraction", np.float64),
        ("imbalance_coeff", np.float64),
        ("numa_sensitive", np.bool_),
        ("sus_bw_satq_gbs", np.float64),  # sustained_bw_gbs * satq
        ("lat_total", np.float64),  # random accesses not latency-hidden
        ("mlp", np.float64),  # core_mlp * gather_mlp_factor
        ("fit_mid", np.float64),
        ("fit_llc", np.float64),
        ("cap_llc", np.float64),  # random_rate_cap * llc_boost * satq
        ("cap_dram", np.float64),  # random_rate_cap * satq
        ("latency_multiplier", np.float64),
    ]
)


@dataclass
class _FamilyPlan:
    """One thread-sweep family's slice of the megagrid (or an anchor row)."""

    group: list[ExperimentConfig]
    machine: object
    sig: object
    compiler_name: str
    compiler: object
    vectorise: bool
    anchor: object = None  # Anchor for calibration rows; None for requests
    dnr: DNRError | None = None
    vectorised: bool = False
    notes: tuple = ()
    rows: slice | None = None


# ----------------------------------------------------------------------
# Flat evaluation of _raw_time_grid over one machine's row segment
# ----------------------------------------------------------------------


def _effective_threads_rows(g: np.ndarray, machine, ns, nsf) -> np.ndarray:
    """Row-wise :meth:`PerformanceModel._effective_threads_grid`."""
    amdahl = nsf / (1.0 + g["serial_fraction"] * (nsf - 1.0))
    imbalance = np.maximum(0.5, 1.0 - g["imbalance_coeff"] * np.log2(nsf))
    # Both machine efficiency variants are pure; select per row.
    eff = np.where(
        g["numa_sensitive"],
        machine.parallel_efficiency_grid(ns, numa_sensitive=True),
        machine.parallel_efficiency_grid(ns, numa_sensitive=False),
    )
    res = amdahl * imbalance * eff
    return np.where(ns == 1, 1.0, res)


def _communication_bytes_rows(g: np.ndarray, machine, ns, nsf) -> np.ndarray:
    """Row-wise :meth:`PerformanceModel._communication_bytes_grid`."""
    ref = machine.n_cores
    neighbour = g["neighbour_op_bytes"] * (nsf / ref) ** (2.0 / 3.0)
    if machine.topology.numa_regions > 1:
        numa_factor = np.where(ns > machine.topology.cores_per_numa, 1.25, 1.0)
    else:
        numa_factor = 1.0
    alltoall = g["alltoall_op_bytes"] * numa_factor
    return np.where(ns == 1, 0.0, neighbour + alltoall)


def _latency_time_rows(g: np.ndarray, machine, ns, nsf, spill) -> np.ndarray:
    """Row-wise :meth:`PerformanceModel._latency_time_grid`.

    Rows whose family has no unhidden random accesses produce exact
    ``+0.0`` through the arithmetic itself (``frac * 0.0 / positive``),
    matching the scalar path's early return; the final ``where`` keeps
    that explicit.
    """
    sharp = machine.memory.saturation_sharpness
    ghz = machine.clock_ghz
    mid = machine.cache(2) if machine.cache(3) is not None else None
    llc = machine.last_level_cache

    spill_floor = 0.02 * spill + (1.0 - spill) * 0.0
    frac_dram = np.maximum(1.0 - g["fit_llc"], spill_floor)
    frac_llc = np.maximum(0.0, 1.0 - g["fit_mid"] - frac_dram)
    frac_mid = np.maximum(0.0, 1.0 - frac_llc - frac_dram)

    lat_total = g["lat_total"]
    mlp = g["mlp"]
    time_rows = np.zeros(ns.shape, dtype=np.float64)
    if mid is not None:
        lat_s = mid.latency_cycles / ghz * 1e-9
        demand = nsf * mlp / lat_s
        sharers = machine.cores_sharing(mid)
        instances = -(-ns // sharers)
        cap = instances * machine.clock_hz / 3.0
        time_rows = time_rows + frac_mid * lat_total / smoothmin_grid(
            demand, cap, sharp
        )
    lat_s = llc.latency_cycles / ghz * 1e-9
    demand = nsf * mlp / lat_s
    time_rows = time_rows + frac_llc * lat_total / smoothmin_grid(
        demand, g["cap_llc"], sharp
    )
    lat_s = machine.memory.idle_latency_ns * 1e-9
    demand = nsf * mlp / lat_s
    time_rows = time_rows + frac_dram * lat_total / smoothmin_grid(
        demand, g["cap_dram"], sharp
    )
    return np.where(lat_total > 0.0, time_rows, 0.0)


def _eval_segment(machine, g: np.ndarray):
    """``_raw_time_grid``'s four cost terms over one machine's rows."""
    ns = g["n"]
    nsf = ns.astype(np.float64)

    cache_bytes = machine.effective_cache_bytes_per_thread_grid(ns) * nsf
    spill = PerformanceModel._spill_fraction_grid(g["ws_bytes"], cache_bytes)

    n_eff = _effective_threads_rows(g, machine, ns, nsf)
    t_compute = g["total_instructions"] / (n_eff * g["rate_per_core"])

    comm_bytes = _communication_bytes_rows(g, machine, ns, nsf)
    stream_bytes = g["total_dram_bytes"] * spill + comm_bytes
    bw_demand = nsf * machine.memory.per_core_stream_bw_gbs
    bw = (
        smoothmin_grid(
            bw_demand,
            g["sus_bw_satq_gbs"],
            machine.memory.saturation_sharpness,
        )
        * 1e9
    )
    t_stream = stream_bytes / bw

    t_latency = _latency_time_rows(g, machine, ns, nsf, spill)
    t_latency = t_latency * g["latency_multiplier"]

    t_sync = g["n_barriers"] * machine.barrier_cost_s_grid(ns)
    return t_compute, t_stream, t_latency, t_sync


# ----------------------------------------------------------------------
# Bulk PCG64 seeding (validated fast path for the measurement noise)
# ----------------------------------------------------------------------

_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1
_MASK32 = 0xFFFFFFFF


def _hash_const_chain(init: int, mult: int, count: int) -> tuple:
    """Precompute ``(xor_const, mult_const)`` pairs of SeedSequence's
    data-independent hash-constant chain (the constants advance per call,
    never per input, so they are shared by every seed in a batch)."""
    out = []
    const = init
    for _ in range(count):
        advanced = const * mult & _MASK32
        out.append((np.uint32(const), np.uint32(advanced)))
        const = advanced
    return tuple(out)


#: 4 pool-fill + 12 pool-mix hashes consume the INIT_A chain; the 8
#: output words consume the INIT_B chain.
_POOL_CONSTS = _hash_const_chain(_INIT_A, _MULT_A, 16)
_OUT_CONSTS = _hash_const_chain(_INIT_B, _MULT_B, 8)


def _hashmix(v: np.ndarray, consts: tuple) -> np.ndarray:
    xor_const, mult_const = consts
    v = v ^ xor_const
    v = v * mult_const  # uint32 wraparound is the algorithm
    return v ^ (v >> _XSHIFT)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = _MIX_MULT_L * x - _MIX_MULT_R * y  # uint32 wraparound
    return r ^ (r >> _XSHIFT)


def _pcg64_states(seeds: np.ndarray) -> list[dict]:
    """Vectorised ``SeedSequence(seed) -> PCG64`` state for many seeds.

    Replicates NumPy's entropy-pool mixing (vectorised over seeds) and
    PCG64's ``inc``/``state`` initialisation.  Only used after
    :func:`fastpath_available` has verified bit-equality against
    ``np.random.default_rng`` on probe seeds in this NumPy build.
    """
    arr = np.asarray(seeds, dtype=np.uint64)
    lo = (arr & np.uint64(_MASK32)).astype(np.uint32)
    hi = (arr >> np.uint64(32)).astype(np.uint32)
    zero = np.zeros_like(lo)

    consts = iter(_POOL_CONSTS)
    pool = [
        _hashmix(lo, next(consts)),
        _hashmix(hi, next(consts)),
        _hashmix(zero, next(consts)),
        _hashmix(zero, next(consts)),
    ]
    for src in range(4):
        for dst in range(4):
            if src != dst:
                pool[dst] = _mix(pool[dst], _hashmix(pool[src], next(consts)))
    out = [_hashmix(pool[k % 4], _OUT_CONSTS[k]) for k in range(8)]

    words = [
        out[2 * j].astype(np.uint64) | (out[2 * j + 1].astype(np.uint64) << np.uint64(32))
        for j in range(4)
    ]
    states = []
    for i in range(arr.shape[0]):
        initstate = (int(words[0][i]) << 64) | int(words[1][i])
        initseq = (int(words[2][i]) << 64) | int(words[3][i])
        inc = ((initseq << 1) | 1) & _MASK128
        state = ((inc + initstate) * _PCG_MULT + inc) & _MASK128
        states.append({"state": state, "inc": inc})
    return states


_fastpath_lock = threading.Lock()
_FASTPATH_OK: bool | None = None
_FAST_NEW_OK: bool | None = None
_PROBE_SEEDS = (0, 1, 2**32 - 1, 2**32, 2**64 - 1, 0x9E3779B97F4A7C15)

_OSA = object.__setattr__  # frozen-dataclass bypass, as dataclasses itself uses


def _fast_new_available() -> bool:
    """Whether result records can be built by instance-dict assignment.

    Frozen dataclasses pay one ``object.__setattr__`` per field in
    ``__init__`` plus argument parsing; for the planner's thousands of
    identical-shape records that is a large share of total runtime.
    ``cls.__new__`` plus a wholesale ``__dict__`` assignment (through
    ``object.__setattr__``, the same bypass ``dataclasses`` uses for
    frozen instances) produces an indistinguishable instance -- same
    class, same fields, same equality/hash/repr -- at roughly half the
    cost.  Probed once against the real constructor and abandoned
    permanently if the dataclasses ever grow ``__slots__`` or trap the
    bypass.
    """
    global _FAST_NEW_OK
    with _fastpath_lock:
        if _FAST_NEW_OK is None:
            try:
                probe = RunSample.__new__(RunSample)
                _OSA(probe, "__dict__", {"run_index": 0, "time_s": 1.0, "mops": 2.0})
                _FAST_NEW_OK = probe == RunSample(run_index=0, time_s=1.0, mops=2.0)
            except (AttributeError, TypeError):
                _FAST_NEW_OK = False
        return _FAST_NEW_OK


def fastpath_available() -> bool:
    """Whether bulk PCG64 seeding matches NumPy on this build (memoised).

    Probes :func:`_pcg64_states` against the states
    ``np.random.default_rng(seed)`` actually installs.  A mismatch (a
    future NumPy changing its seeding) permanently selects the
    per-config ``default_rng`` fallback -- slower, still bit-identical.
    """
    global _FASTPATH_OK
    with _fastpath_lock:
        if _FASTPATH_OK is None:
            try:
                derived = _pcg64_states(np.asarray(_PROBE_SEEDS, dtype=np.uint64))
                _FASTPATH_OK = all(
                    d == np.random.default_rng(s).bit_generator.state["state"]
                    for s, d in zip(_PROBE_SEEDS, derived)
                )
            except (KeyError, TypeError, ValueError, OverflowError):
                _FASTPATH_OK = False
        return _FASTPATH_OK


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------


def _family_plans(runner, groups) -> list[_FamilyPlan]:
    """Resolve per-family objects and verdicts; refuse what the flat
    pass cannot reproduce (invalid thread counts must raise from
    ``predict_batch`` on the per-family path, with its counter order)."""
    from repro.npb.signatures import signature_for

    fams = []
    for group in groups:
        head = group[0]
        machine = get_machine(head.machine)
        sig = signature_for(head.kernel, head.npb_class)
        compiler_name = head.resolved_compiler()
        for config in group:
            try:
                machine.validate_thread_count(config.n_threads)
            except ValueError as exc:
                raise PlanNotApplicable(str(exc)) from exc
        fam = _FamilyPlan(
            group=group,
            machine=machine,
            sig=sig,
            compiler_name=compiler_name,
            compiler=get_compiler(compiler_name),
            vectorise=head.vectorise,
        )
        if not machine.memory.fits(int(sig.working_set_bytes)):
            fam.dnr = DNRError(
                f"{sig.display} class {sig.npb_class} needs "
                f"{sig.working_set_bytes / 2**30:.2f} GiB but "
                f"{machine.label} has only "
                f"{machine.memory.capacity_bytes / 2**30:.0f} GiB DRAM"
            )
        fams.append(fam)
    return fams


def _anchor_plans(model, fams) -> tuple[list[_FamilyPlan], dict]:
    """Single-thread anchor rows for not-yet-memoised calibration keys.

    Returns the extra families to evaluate plus a ``key -> plan-or-None``
    map (``None`` marks anchor-less pairs, memoised as ``(1.0, 1.0)``
    exactly like ``calibration_factors``).
    """
    from repro.npb.signatures import signature_for

    anchor_fams: list[_FamilyPlan] = []
    needed: dict[tuple[str, str], _FamilyPlan | None] = {}
    for fam in fams:
        if fam.dnr is not None:
            continue
        key = (fam.machine.name, fam.sig.name)
        if key in model._kappa_cache or key in needed:
            continue
        anchor = anchor_for(*key)
        if anchor is None:
            needed[key] = None
            continue
        compiler_name = default_compiler_for(fam.machine.name)
        plan = _FamilyPlan(
            group=[],
            machine=fam.machine,
            sig=signature_for(fam.sig.name, anchor.npb_class),
            compiler_name=compiler_name,
            compiler=get_compiler(compiler_name),
            vectorise=anchor.vectorise,
            anchor=anchor,
        )
        needed[key] = plan
        anchor_fams.append(plan)
    return anchor_fams, needed


def _family_scalars(fam: _FamilyPlan) -> tuple:
    """One family's per-family quantities, mirroring the scalar setup at
    the top of ``_raw_time_grid``; ordered as the non-``n`` GRID_DTYPE
    fields.  Also resolves the family's vectorisation verdict and notes."""
    sig = fam.sig
    machine = fam.machine
    outcome = vectorisation_outcome(
        fam.compiler,
        machine.core.vector,
        sig.name,
        sig.vec_fraction,
        fam.vectorise,
        gather_pathology=sig.gather_pathology,
    )
    notes = []
    if fam.vectorise and not outcome.legal and machine.core.has_vector:
        notes.append(
            f"{fam.compiler.display} cannot target "
            f"{machine.core.vector.standard.value}; scalar code emitted"
        )
    fam.notes = tuple(notes)
    fam.vectorised = outcome.applied

    satq = fam.compiler.saturation_quality_for(sig.name)
    target_bytes = sig.effective_random_target_bytes
    mid = machine.cache(2) if machine.cache(3) is not None else None
    llc = machine.last_level_cache
    fit_mid = 0.0
    if mid is not None:
        fit_mid = 0.98 * min(1.0, mid.size_bytes / target_bytes)
    llc_agg = llc.size_bytes * (machine.n_cores // machine.cores_sharing(llc))
    fit_llc = max(fit_mid, 0.98 * min(1.0, llc_agg / target_bytes))

    return (
        sig.working_set_bytes,
        sig.total_instructions,
        sig.total_dram_bytes,
        sig.comm.neighbour_bytes * sig.total_ops,
        sig.comm.alltoall_bytes * sig.total_ops,
        sig.comm.barriers_per_mop * sig.total_mops,
        machine.scalar_rate_per_core()
        * fam.compiler.scalar_quality_for(sig.name)
        * outcome.compute_multiplier,
        sig.serial_fraction,
        sig.imbalance_coeff,
        sig.dram_bytes_per_op > 0.3,
        machine.memory.sustained_bw_gbs * satq,
        sig.total_random_accesses * (1.0 - sig.latency_hidden_fraction),
        machine.memory.core_mlp * sig.gather_mlp_factor,
        fit_mid,
        fit_llc,
        machine.memory.random_rate_cap() * machine.memory.llc_random_boost * satq,
        machine.memory.random_rate_cap() * satq,
        outcome.latency_multiplier,
    )


def _measure_family(
    runner, fam: _FamilyPlan, preds: list[Prediction], rng_for, fast_new: bool
) -> list[ExperimentResult]:
    """``ExperimentRunner._measure`` for every config of one family.

    The noise magnitudes ``cv`` are derived for the whole family in one
    vectorised pass (``np.log2`` over the thread counts produces the
    same float64 values elementwise as the per-config scalar calls).
    """
    sig = fam.sig
    total_mops = sig.total_mops
    ns = np.asarray([c.n_threads for c in fam.group], dtype=np.int64)
    cvs = (runner.noise_cv * (1.0 + 0.3 * np.log2(ns + 1))).tolist()
    sample_new = RunSample.__new__
    result_new = ExperimentResult.__new__
    results = []
    for config, pred, cv in zip(fam.group, preds, cvs):
        rng = rng_for(config)
        factors = rng.lognormal(mean=0.0, sigma=cv, size=config.runs)
        times = pred.time_s * factors
        mops_vals = (total_mops / times).tolist()
        if fast_new:
            samples = []
            for i, (t, m) in enumerate(zip(times.tolist(), mops_vals)):
                sample = sample_new(RunSample)
                _OSA(sample, "__dict__", {"run_index": i, "time_s": t, "mops": m})
                samples.append(sample)
            samples = tuple(samples)
            # samples is never empty (runs >= 1), so ExperimentResult's
            # __post_init__ validation is vacuous here.
            result = result_new(ExperimentResult)
            _OSA(
                result,
                "__dict__",
                {
                    "machine": config.machine,
                    "kernel": config.kernel,
                    "npb_class": config.npb_class,
                    "n_threads": config.n_threads,
                    "compiler": fam.compiler_name,
                    "vectorised": pred.vectorised,
                    "samples": samples,
                    "prediction": pred,
                    "notes": pred.notes,
                },
            )
            results.append(result)
            continue
        samples = tuple(
            RunSample(run_index=i, time_s=t, mops=m)
            for i, (t, m) in enumerate(zip(times.tolist(), mops_vals))
        )
        results.append(
            ExperimentResult(
                machine=config.machine,
                kernel=config.kernel,
                npb_class=config.npb_class,
                n_threads=config.n_threads,
                compiler=fam.compiler_name,
                vectorised=pred.vectorised,
                samples=samples,
                prediction=pred,
                notes=pred.notes,
            )
        )
    return results


def plan_groups(
    runner: ExperimentRunner, groups: list[list[ExperimentConfig]]
) -> list[DNRError | list[ExperimentResult]]:
    """Evaluate many thread-sweep families as one flat megagrid pass.

    Returns one outcome per input group, in order: the family's shared
    :class:`DNRError` verdict, or its :class:`ExperimentResult` list
    (bit-identical to ``runner.run_many(group)``).  Raises
    :class:`PlanNotApplicable` -- before doing any work -- when the batch
    cannot be reproduced exactly by the flat pass.

    Side-effect free apart from memoising calibration factors in the
    model's ``_kappa_cache`` (the same values, under the same keys, the
    per-family path memoises).
    """
    if type(runner) is not ExperimentRunner:
        raise PlanNotApplicable(f"runner subclass {type(runner).__name__}")
    model = runner.model
    if type(model) is not PerformanceModel:
        raise PlanNotApplicable(f"model subclass {type(model).__name__}")
    if not groups:
        return []

    fams = _family_plans(runner, groups)
    if model.calibrate:
        anchor_fams, needed = _anchor_plans(model, fams)
    else:
        anchor_fams, needed = [], {}

    # Machine-major layout: every family (requests, then anchor rows) of
    # one machine occupies a contiguous segment evaluated in one pass.
    by_machine: dict[str, list[_FamilyPlan]] = {}
    order: list[str] = []
    for fam in fams + anchor_fams:
        if fam.dnr is not None:
            continue
        if fam.machine.name not in by_machine:
            order.append(fam.machine.name)
        by_machine.setdefault(fam.machine.name, []).append(fam)

    # Column-wise megagrid assembly: per-family scalars are repeated over
    # each family's row count in one vectorised pass per field.
    scalar_rows: list[tuple] = []
    lengths: list[int] = []
    flat_n: list[int] = []
    segments: list[tuple[object, slice]] = []
    pos = 0
    for name in order:
        seg_start = pos
        for fam in by_machine[name]:
            thread_counts = [c.n_threads for c in fam.group] or [1]
            stop = pos + len(thread_counts)
            fam.rows = slice(pos, stop)
            scalar_rows.append(_family_scalars(fam))
            lengths.append(len(thread_counts))
            flat_n.extend(thread_counts)
            pos = stop
        segments.append((get_machine(name), slice(seg_start, pos)))

    n_rows = pos
    grid = np.empty(n_rows, dtype=GRID_DTYPE)
    grid["n"] = np.asarray(flat_n, dtype=np.int64)
    lengths_arr = np.asarray(lengths, dtype=np.int64)
    columns = list(zip(*scalar_rows))
    for field_name, column in zip(list(GRID_DTYPE.names)[1:], columns):
        grid[field_name] = np.repeat(np.asarray(column), lengths_arr)

    t_compute = np.zeros(n_rows, dtype=np.float64)
    t_stream = np.zeros(n_rows, dtype=np.float64)
    t_latency = np.zeros(n_rows, dtype=np.float64)
    t_sync = np.zeros(n_rows, dtype=np.float64)
    for machine, seg in segments:
        comp, stream, lat, sync = _eval_segment(machine, grid[seg])
        t_compute[seg] = comp
        t_stream[seg] = stream
        t_latency[seg] = lat
        t_sync[seg] = sync

    # Calibration: convert anchor rows through the shared factor logic and
    # memoise -- after this, every request family's factor lookup hits.
    for key, anchor_fam in needed.items():
        if anchor_fam is None:
            factors = (1.0, 1.0)
        else:
            i = anchor_fam.rows.start
            raw = {
                "total": float(
                    np.maximum(t_compute[i], t_stream[i]) + t_latency[i] + t_sync[i]
                ),
                "compute": float(t_compute[i]),
                "stream": float(t_stream[i]),
                "latency": float(t_latency[i]),
                "sync": float(t_sync[i]),
            }
            factors = factors_from_raw(anchor_fam.sig, anchor_fam.anchor, raw)
        model._kappa_cache[key] = factors

    # Bulk-derive every config's noise stream when the vectorised seeding
    # is validated for this NumPy; otherwise per-config default_rng.
    seeds = []
    for fam in fams:
        if fam.dnr is None:
            for config in fam.group:
                seeds.append(measurement_seed(runner.seed, config, fam.compiler_name))
    if fastpath_available() and seeds:
        states = _pcg64_states(np.asarray(seeds, dtype=np.uint64))
        shared_gen = np.random.Generator(np.random.PCG64(0))
        cursor = iter(states)

        def rng_for(config):
            shared_gen.bit_generator.state = {
                "bit_generator": "PCG64",
                "state": next(cursor),
                "has_uint32": 0,
                "uinteger": 0,
            }
            return shared_gen

    else:
        seed_cursor = iter(seeds)

        def rng_for(config):
            return np.random.default_rng(next(seed_cursor))

    fast_new = _fast_new_available()
    outcomes: list[DNRError | list[ExperimentResult]] = []
    for fam in fams:
        if fam.dnr is not None:
            outcomes.append(fam.dnr)
            continue
        sig = fam.sig
        if model.calibrate:
            alpha, kappa = model._calibration_factors(fam.machine, sig)
        else:
            alpha, kappa = 1.0, 1.0
        sl = fam.rows
        t_comp = t_compute[sl] * alpha
        time_s = (
            np.maximum(t_comp, t_stream[sl]) + t_latency[sl] + t_sync[sl]
        ) * kappa
        mops = sig.total_mops / time_s
        time_list = time_s.tolist()
        mops_list = mops.tolist()
        t_comp_k = (t_comp * kappa).tolist()
        t_stream_k = (t_stream[sl] * kappa).tolist()
        t_latency_k = (t_latency[sl] * kappa).tolist()
        t_sync_k = (t_sync[sl] * kappa).tolist()
        machine_name = fam.machine.name
        calibration_factor = alpha * kappa
        preds = []
        if fast_new:
            pred_new = Prediction.__new__
            for i, config in enumerate(fam.group):
                pred = pred_new(Prediction)
                _OSA(
                    pred,
                    "__dict__",
                    {
                        "machine": machine_name,
                        "kernel": sig.name,
                        "npb_class": sig.npb_class,
                        "n_threads": config.n_threads,
                        "time_s": time_list[i],
                        "mops": mops_list[i],
                        "t_compute": t_comp_k[i],
                        "t_stream": t_stream_k[i],
                        "t_latency": t_latency_k[i],
                        "t_sync": t_sync_k[i],
                        "vectorised": fam.vectorised,
                        "calibration_factor": calibration_factor,
                        "notes": fam.notes,
                    },
                )
                preds.append(pred)
        else:
            for i, config in enumerate(fam.group):
                preds.append(
                    Prediction(
                        machine=machine_name,
                        kernel=sig.name,
                        npb_class=sig.npb_class,
                        n_threads=config.n_threads,
                        time_s=time_list[i],
                        mops=mops_list[i],
                        t_compute=t_comp_k[i],
                        t_stream=t_stream_k[i],
                        t_latency=t_latency_k[i],
                        t_sync=t_sync_k[i],
                        vectorised=fam.vectorised,
                        calibration_factor=calibration_factor,
                        notes=fam.notes,
                    )
                )
        outcomes.append(_measure_family(runner, fam, preds, rng_for, fast_new))
    return outcomes
