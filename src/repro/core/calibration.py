"""Single-core calibration anchors fitted to the paper's measurements.

Analytic performance models are always *anchored*: microarchitectural
parameters predict relative behaviour, and one measured point per
(machine, kernel) absorbs everything the parameters do not capture
(instruction mix details, prefetcher quirks, TLB behaviour...).  We anchor
at **one core**, so every multi-core number in the reproduced tables and
figures -- the plateaus, the crossovers, the 1.52x-4.91x SG2044/SG2042
spread of Table 4 -- is *emergent* from the model physics, not fitted.

Anchor provenance:

* ``sg2044`` / ``sg2042`` kernels: paper Table 3 (class C, single core).
* Small RISC-V boards: paper Table 2 (class B, single core).
* ``epyc7742`` / ``skylake8170`` / ``thunderx2`` kernels: the paper prints
  no single-core table for these; anchors are **derived** from its prose
  and figures (Section 5: "the AMD EPYC delivers around twice the
  performance of the SG2044 and the Intel Skylake around three times" for
  IS; EP "tracks the Intel Skylake core-for-core"; CG "core for core, the
  Marvel ThunderX2 outperforms the SG2044"; MG/FT per-core readings from
  Figures 3/6) -- each derived value is commented.
* Pseudo-apps (BT/LU/SP): derived from Table 6's 16-core ratios and the
  SG2044 kernel rates; commented below.

Anchors are given at the reference configuration the paper used: the
machine's default compiler, vectorisation on -- except CG on the SG2044,
which the paper runs unvectorised (Section 6 pathology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.compilers.gcc import default_compiler_for, get_compiler
from repro.machines.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .perfmodel import PerformanceModel

__all__ = ["Anchor", "ANCHORS", "calibration_factors", "factors_from_raw", "anchor_for"]


@dataclass(frozen=True)
class Anchor:
    """One measured (or derived) single-core reference point."""

    npb_class: str
    mops: float
    vectorise: bool = True
    derived: bool = False  # True when inferred from prose/figures, not a table

    def __post_init__(self) -> None:
        if self.mops <= 0:
            raise ValueError("anchor Mop/s must be positive")


# (machine, kernel) -> Anchor
ANCHORS: dict[tuple[str, str], Anchor] = {
    # ------------------------------------------------------------------
    # Sophon SG2044 -- paper Table 3 (class C, 1 core, GCC 15.2).
    # CG is the paper's unvectorised exception.
    # ------------------------------------------------------------------
    ("sg2044", "is"): Anchor("C", 63.63),
    ("sg2044", "mg"): Anchor("C", 1382.91),
    ("sg2044", "ep"): Anchor("C", 40.76),
    ("sg2044", "cg"): Anchor("C", 213.82, vectorise=False),
    ("sg2044", "ft"): Anchor("C", 1023.83),
    # Pseudo-apps: derived -- scaled from the SG2044 kernel rates so that
    # Table 6's 16-core ratios emerge (BT between MG and FT in per-point
    # cost; SP slowest of the three on this memory subsystem).
    ("sg2044", "bt"): Anchor("C", 950.0, derived=True),
    ("sg2044", "lu"): Anchor("C", 820.0, derived=True),
    ("sg2044", "sp"): Anchor("C", 550.0, derived=True),
    # ------------------------------------------------------------------
    # Sophon SG2042 -- paper Table 3 (class C, 1 core, XuanTie GCC 8.4).
    # ------------------------------------------------------------------
    ("sg2042", "is"): Anchor("C", 58.87),
    ("sg2042", "mg"): Anchor("C", 1175.69),
    ("sg2042", "ep"): Anchor("C", 31.36),
    ("sg2042", "cg"): Anchor("C", 173.39),
    ("sg2042", "ft"): Anchor("C", 797.09),
    # Table 6 @16 cores: SG2042 is 0.79/0.85/0.79x the SG2044 on BT/LU/SP;
    # per-core the two chips are closer (Table 3 pattern), so anchor near
    # the SG2044 scaled by the Table 3 kernel mean (~1/1.2).
    ("sg2042", "bt"): Anchor("C", 800.0, derived=True),
    ("sg2042", "lu"): Anchor("C", 700.0, derived=True),
    ("sg2042", "sp"): Anchor("C", 470.0, derived=True),
    # ------------------------------------------------------------------
    # AMD EPYC 7742 (ARCHER2, GCC 11.2) -- derived from Section 5 prose.
    # ------------------------------------------------------------------
    # "the AMD EPYC delivers around twice the performance of the SG2044"
    ("epyc7742", "is"): Anchor("C", 127.0, derived=True),
    # Figure 3: per-core MG clearly above the SG2044; ~2x.
    ("epyc7742", "mg"): Anchor("C", 2750.0, derived=True),
    # Figure 4: EPYC groups with Skylake, slightly above it.
    ("epyc7742", "ep"): Anchor("C", 44.0, derived=True),
    # Figure 5: EPYC leads per-core on CG.
    ("epyc7742", "cg"): Anchor("C", 500.0, derived=True),
    # Figure 6: FT per-core well above the SG2044.
    ("epyc7742", "ft"): Anchor("C", 2250.0, derived=True),
    # Table 6 @16 cores: EPYC 2.56/3.09/3.99x the SG2044.
    ("epyc7742", "bt"): Anchor("C", 2430.0, derived=True),
    ("epyc7742", "lu"): Anchor("C", 2540.0, derived=True),
    ("epyc7742", "sp"): Anchor("C", 2200.0, derived=True),
    # ------------------------------------------------------------------
    # Intel Xeon Platinum 8170 (GCC 8.4) -- derived.
    # ------------------------------------------------------------------
    # "the Intel Skylake around three times" (IS, single core).
    ("skylake8170", "is"): Anchor("C", 191.0, derived=True),
    ("skylake8170", "mg"): Anchor("C", 2600.0, derived=True),
    # "The SG2044 tracks performance of the Intel Skylake core-for-core".
    ("skylake8170", "ep"): Anchor("C", 41.5, derived=True),
    ("skylake8170", "cg"): Anchor("C", 440.0, derived=True),
    ("skylake8170", "ft"): Anchor("C", 2050.0, derived=True),
    # Table 6 @16 cores: Skylake 2.60/3.52/3.07x the SG2044.
    ("skylake8170", "bt"): Anchor("C", 2470.0, derived=True),
    ("skylake8170", "lu"): Anchor("C", 2890.0, derived=True),
    ("skylake8170", "sp"): Anchor("C", 1690.0, derived=True),
    # ------------------------------------------------------------------
    # Marvell ThunderX2 CN9980 (GCC 9.2) -- derived.
    # ------------------------------------------------------------------
    ("thunderx2", "is"): Anchor("C", 95.0, derived=True),
    ("thunderx2", "mg"): Anchor("C", 1900.0, derived=True),
    # Figure 4: TX2 groups with the SG2042 on EP.
    ("thunderx2", "ep"): Anchor("C", 32.0, derived=True),
    # "core for core, the Marvel ThunderX2 outperforms the SG2044" (CG).
    ("thunderx2", "cg"): Anchor("C", 320.0, derived=True),
    ("thunderx2", "ft"): Anchor("C", 1500.0, derived=True),
    # Table 6 @16 cores: TX2 1.92/2.43/2.87x the SG2044.
    ("thunderx2", "bt"): Anchor("C", 1820.0, derived=True),
    ("thunderx2", "lu"): Anchor("C", 2000.0, derived=True),
    ("thunderx2", "sp"): Anchor("C", 1580.0, derived=True),
    # ------------------------------------------------------------------
    # Small RISC-V boards -- paper Table 2 (class B, 1 core, GCC 15.2).
    # ------------------------------------------------------------------
    ("visionfive2", "is"): Anchor("B", 17.84),
    ("visionfive2", "mg"): Anchor("B", 288.65),
    ("visionfive2", "ep"): Anchor("B", 12.01),
    ("visionfive2", "cg"): Anchor("B", 43.61),
    ("visionfive2", "ft"): Anchor("B", 245.99),
    ("visionfive1", "is"): Anchor("B", 6.36),
    ("visionfive1", "mg"): Anchor("B", 72.31),
    ("visionfive1", "ep"): Anchor("B", 7.55),
    ("visionfive1", "cg"): Anchor("B", 21.96),
    ("visionfive1", "ft"): Anchor("B", 88.35),
    ("hifive-u740", "is"): Anchor("B", 9.09),
    ("hifive-u740", "mg"): Anchor("B", 90.28),
    ("hifive-u740", "ep"): Anchor("B", 9.08),
    ("hifive-u740", "cg"): Anchor("B", 29.09),
    ("hifive-u740", "ft"): Anchor("B", 116.59),
    ("allwinner-d1", "is"): Anchor("B", 5.41),
    ("allwinner-d1", "mg"): Anchor("B", 163.19),
    ("allwinner-d1", "ep"): Anchor("B", 9.23),
    ("allwinner-d1", "cg"): Anchor("B", 12.99),
    # FT class B is the paper's DNR (1 GB DRAM); no anchor.
    ("bananapi-f3", "is"): Anchor("B", 22.66),
    ("bananapi-f3", "mg"): Anchor("B", 306.78),
    ("bananapi-f3", "ep"): Anchor("B", 18.17),
    # CG runs unvectorised in Table 2 (the Section 6 exception applies
    # to all three vectorising boards).
    ("bananapi-f3", "cg"): Anchor("B", 23.71, vectorise=False),
    ("bananapi-f3", "ft"): Anchor("B", 362.8),
    ("milkv-jupiter", "is"): Anchor("B", 24.75),
    ("milkv-jupiter", "mg"): Anchor("B", 335.38),
    ("milkv-jupiter", "ep"): Anchor("B", 20.4),
    ("milkv-jupiter", "cg"): Anchor("B", 24.42, vectorise=False),
    ("milkv-jupiter", "ft"): Anchor("B", 388.24),
}


def anchor_for(machine_name: str, kernel: str) -> Anchor | None:
    """The calibration anchor for a (machine, kernel) pair, if any."""
    return ANCHORS.get((machine_name, kernel))


def calibration_factors(
    machine: Machine, kernel: str, model: "PerformanceModel"
) -> tuple[float, float]:
    """Factors ``(alpha, kappa)`` that make the model hit the anchor.

    ``alpha`` scales the *compute* term: the anchor residual is almost
    always core-side cost the parameter model does not capture
    (dependency stalls, instruction-mix details), which parallelises like
    the rest of the compute -- so absorbing it there leaves the memory
    saturation physics untouched and the multi-core shape emergent.

    Only when the anchor is faster than the physics permits even with zero
    compute (never the case for the paper's anchors, but possible for
    user-supplied ones) does ``kappa`` time-scale the whole prediction
    instead.  Pairs without an anchor run uncalibrated (1, 1).
    """
    anchor = anchor_for(machine.name, kernel)
    if anchor is None:
        return 1.0, 1.0

    from repro.npb.signatures import signature_for

    sig = signature_for(kernel, anchor.npb_class)
    compiler = get_compiler(default_compiler_for(machine.name))
    raw = model._raw_time(machine, sig, compiler, 1, anchor.vectorise)
    return factors_from_raw(sig, anchor, raw)


def factors_from_raw(sig, anchor: Anchor, raw: dict) -> tuple[float, float]:
    """``(alpha, kappa)`` from an already-computed single-point raw split.

    ``raw`` holds the anchor configuration's ``total``/``compute``/
    ``stream``/``latency``/``sync`` times as plain floats, exactly as
    ``PerformanceModel._raw_time`` returns them.  Split out so the grid
    planner (``repro.core.plan``) can derive factors from rows of its
    megagrid without a second scalar model evaluation.
    """
    t_anchor = sig.total_mops / anchor.mops
    if sig.residual_attribution == "compute":
        compute_budget = t_anchor - raw["latency"] - raw["sync"]
        if compute_budget >= raw["stream"] and raw["compute"] > 0:
            return compute_budget / raw["compute"], 1.0
        # Anchor unreachable by compute scaling alone: fall back to
        # uniform time scaling.
    return 1.0, t_anchor / raw["total"]
