"""Experiment runner: the paper's measurement protocol over the model.

The paper's protocol (Section 5): OpenMP threads bound to distinct
physical cores, ``-O3``, five independent runs, report the average.  The
runner reproduces that protocol on top of :class:`PerformanceModel`,
adding a deterministic, seeded run-to-run noise term so that averages,
error bars and "same machine measured twice gives slightly different
numbers" behaviour all exist without real hardware.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.compilers.gcc import default_compiler_for, get_compiler
from repro.machines.catalog import get_machine

from .perfmodel import Prediction, PerformanceModel
from .results import ExperimentResult, RunSample

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "DEFAULT_RUNS",
    "measurement_seed",
]

DEFAULT_RUNS = 5  # "All results represent the average of five independent runs"


def measurement_seed(
    base_seed: int, config: "ExperimentConfig", compiler_name: str
) -> int:
    """The per-config noise-stream seed: sha256 over the full config key.

    A process-stable hash (unlike builtin ``hash()`` on strings) keeps
    "measurements" reproducible across interpreter invocations.  Shared
    with the grid planner (:mod:`repro.core.plan`), which derives the
    identical PCG64 streams for a whole megagrid in bulk.
    """
    key = (
        f"{base_seed}|{config.machine}|{config.kernel}|{config.npb_class}"
        f"|{config.n_threads}|{compiler_name}|{config.vectorise}"
    )
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class ExperimentConfig:
    """One benchmark configuration to run.

    ``compiler=None`` selects the machine's paper-default compiler
    (GCC 15.2 on the SG2044, the XuanTie fork on the SG2042, the site
    compilers elsewhere).
    """

    machine: str
    kernel: str
    npb_class: str = "C"
    n_threads: int = 1
    compiler: str | None = None
    vectorise: bool = True
    runs: int = DEFAULT_RUNS

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")

    def with_threads(self, n: int) -> "ExperimentConfig":
        return replace(self, n_threads=n)

    def resolved_compiler(self) -> str:
        return self.compiler or default_compiler_for(self.machine)

    def family_key(self) -> tuple:
        """The thread-sweep family this config belongs to.

        Configs identical in everything but ``n_threads`` form one
        family: one batched model evaluation, one sweep-engine group,
        one fault-injection site, one journal unit.
        """
        return (
            self.machine,
            self.kernel,
            self.npb_class,
            self.resolved_compiler(),
            self.vectorise,
            self.runs,
        )


class ExperimentRunner:
    """Runs configurations through the model with seeded measurement noise.

    Parameters
    ----------
    model:
        The performance model (calibrated by default).
    noise_cv:
        Run-to-run coefficient of variation.  Real NPB runs on dedicated
        nodes sit around 0.5-2%; noise grows mildly with thread count
        (more OS interference surface).
    seed:
        Base RNG seed; every (config, run) pair derives its own stream, so
        results are reproducible and order-independent.
    """

    def __init__(
        self,
        model: PerformanceModel | None = None,
        noise_cv: float = 0.01,
        seed: int = 2025_07,
    ) -> None:
        if noise_cv < 0 or noise_cv > 0.2:
            raise ValueError("noise_cv must be in [0, 0.2]")
        self.model = model or PerformanceModel()
        self.noise_cv = noise_cv
        self.seed = seed
        self._engine = None

    @property
    def engine(self):
        """Lazily constructed :class:`repro.core.sweep.SweepEngine` over
        this runner (memoising + parallel execution front-end)."""
        if self._engine is None:
            from .sweep import SweepEngine

            self._engine = SweepEngine(self)
        return self._engine

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute one configuration (``config.runs`` modelled repetitions).

        Raises :class:`repro.core.perfmodel.DNRError` when the working set
        does not fit the machine (the paper's "DNR" entries).
        """
        from repro.npb.signatures import signature_for

        machine = get_machine(config.machine)
        signature = signature_for(config.kernel, config.npb_class)
        compiler_name = config.resolved_compiler()
        compiler = get_compiler(compiler_name)

        obs.incr("model.scalar_calls")
        prediction = self.model.predict(
            machine, signature, compiler, config.n_threads, config.vectorise
        )
        return self._measure(config, signature, prediction, compiler_name)

    def run_many(self, configs: list[ExperimentConfig]) -> list[ExperimentResult]:
        """Execute a batch of configurations through the vectorised model.

        Configs sharing everything but the thread count are grouped into a
        single :meth:`PerformanceModel.predict_batch` evaluation, so a
        whole thread sweep costs one model pass instead of one per point.
        Results come back in input order and are identical to calling
        :meth:`run` per config (the noise stream is keyed per config, not
        by execution order).
        """
        from repro.npb.signatures import signature_for

        predictions: dict[int, Prediction] = {}
        groups: dict[tuple, list[int]] = {}
        for idx, config in enumerate(configs):
            groups.setdefault(config.family_key(), []).append(idx)

        for fam, indices in groups.items():
            machine_name, kernel, npb_class, compiler_name, vectorise, _runs = fam
            machine = get_machine(machine_name)
            signature = signature_for(kernel, npb_class)
            compiler = get_compiler(compiler_name)
            thread_counts = [configs[i].n_threads for i in indices]
            obs.incr("model.batch_calls")
            obs.incr("model.batch_points", len(indices))
            preds = self.model.predict_batch(
                machine, signature, compiler, thread_counts, vectorise
            )
            for i, pred in zip(indices, preds):
                predictions[i] = pred

        results = []
        for idx, config in enumerate(configs):
            signature = signature_for(config.kernel, config.npb_class)
            results.append(
                self._measure(
                    config, signature, predictions[idx], config.resolved_compiler()
                )
            )
        return results

    def _measure(
        self,
        config: ExperimentConfig,
        signature,
        prediction: Prediction,
        compiler_name: str,
    ) -> ExperimentResult:
        """Draw the seeded noise samples around one prediction."""
        rng = np.random.default_rng(
            measurement_seed(self.seed, config, compiler_name)
        )
        cv = self.noise_cv * (1.0 + 0.3 * np.log2(config.n_threads + 1))
        # One batched draw; default_rng yields the same samples as
        # config.runs sequential scalar draws from the same stream.
        factors = rng.lognormal(mean=0.0, sigma=cv, size=config.runs)
        times = prediction.time_s * factors
        samples = tuple(
            RunSample(run_index=i, time_s=float(t), mops=signature.total_mops / float(t))
            for i, t in enumerate(times)
        )

        return ExperimentResult(
            machine=config.machine,
            kernel=config.kernel,
            npb_class=config.npb_class,
            n_threads=config.n_threads,
            compiler=compiler_name,
            vectorised=prediction.vectorised,
            samples=samples,
            prediction=prediction,
            notes=prediction.notes,
        )

    def sweep_threads(
        self, config: ExperimentConfig, thread_counts: list[int]
    ) -> list[ExperimentResult]:
        """Run a thread-count sweep (one figure line in the paper).

        Routed through the sweep engine: the whole sweep is one batched
        model evaluation, and repeated sweeps hit the engine's result
        cache.
        """
        return self.engine.run_many(
            [config.with_threads(n) for n in thread_counts]
        )
