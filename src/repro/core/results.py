"""Result records for modelled experiment runs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from .perfmodel import Prediction

__all__ = ["RunSample", "ExperimentResult"]


@dataclass(frozen=True)
class RunSample:
    """One of the paper's "five independent runs"."""

    run_index: int
    time_s: float
    mops: float


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate of repeated runs of one configuration.

    The paper reports the average of five independent runs; we keep the
    samples so tests can check the dispersion the noise model injects.
    """

    machine: str
    kernel: str
    npb_class: str
    n_threads: int
    compiler: str
    vectorised: bool
    samples: tuple[RunSample, ...]
    prediction: Prediction
    notes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("an experiment needs at least one run sample")

    @property
    def mean_mops(self) -> float:
        return statistics.fmean(s.mops for s in self.samples)

    @property
    def mean_time_s(self) -> float:
        return statistics.fmean(s.time_s for s in self.samples)

    @property
    def stdev_mops(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(s.mops for s in self.samples)

    @property
    def cv_percent(self) -> float:
        """Coefficient of variation of the run samples, in percent."""
        mean_mops = self.mean_mops
        return 100.0 * self.stdev_mops / mean_mops if mean_mops else 0.0

    def summary(self) -> str:
        vec = "vec" if self.vectorised else "no-vec"
        return (
            f"{self.kernel.upper()}.{self.npb_class} on {self.machine} "
            f"x{self.n_threads} ({self.compiler}, {vec}): "
            f"{self.mean_mops:.2f} Mop/s (n={len(self.samples)}, "
            f"cv={self.cv_percent:.1f}%)"
        )
