"""Report renderers for a telemetry recorder: schema-v1 JSON and a text tree.

The JSON schema (version 1) mirrors the stable-report convention of
``repro.analysis.reporting`` and is covered by golden tests::

    {
      "version": 1,
      "counters": {"<name>": <int>, ...},          # sorted by name
      "spans": {"name", "count", "children"},      # the session tree
      "timings": {"<name>": {"total_s": <float>,   # wall-clock; VOLATILE
                             "count": <int>}, ...}
    }

``counters`` and ``spans`` are deterministic (byte-identical across
serial, parallel and cached executions of the same work); ``timings`` is
the one explicitly volatile section -- it only ever contains wall-clock
intervals measured through :func:`repro.obs.host_timer`.  Consumers that
diff reports (the golden regression tests, CI) compare everything and
scrub ``timings``.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "report_dict",
    "render_json",
    "render_text",
    "write_report",
]

SCHEMA_VERSION = 1


def report_dict(recorder, include_timings: bool = True) -> dict:
    """The versioned report for a recorder (Null or Telemetry).

    ``include_timings=False`` drops the volatile section entirely --
    what the counter-identity tests compare.
    """
    report = {
        "version": SCHEMA_VERSION,
        "counters": dict(sorted(recorder.counters_snapshot().items())),
        "spans": recorder.span_tree(),
    }
    if include_timings:
        report["timings"] = {
            name: {"total_s": total, "count": count}
            for name, (total, count) in sorted(recorder.timings_snapshot().items())
        }
    return report


def render_json(recorder) -> str:
    return json.dumps(report_dict(recorder), indent=2) + "\n"


def write_report(path: str | Path, recorder) -> Path:
    """Write the schema-v1 JSON report crash-safely (tmp + ``os.replace``).

    Telemetry lands at the very end of a long regeneration run -- exactly
    when an interrupt is most likely -- so the report must never be left
    half-written where a consumer would parse a truncated JSON document.
    """
    from repro.faults import write_text_atomic

    return write_text_atomic(path, render_json(recorder))


def _tree_lines(node: dict, depth: int, lines: list[str]) -> None:
    lines.append(f"  {'  ' * depth}{node['name']} x{node['count']}")
    for child in node["children"]:
        _tree_lines(child, depth + 1, lines)


def render_text(recorder) -> str:
    """Human-readable report: span tree, counters, then timings."""
    report = report_dict(recorder)
    lines = [f"telemetry report (schema v{report['version']})", "spans:"]
    _tree_lines(report["spans"], 0, lines)
    lines.append("counters:")
    counters = report["counters"]
    if counters:
        width = max(len(name) for name in counters)
        lines.extend(f"  {name:<{width}}  {value}" for name, value in counters.items())
    else:
        lines.append("  (none)")
    timings = report["timings"]
    if timings:
        lines.append("timings (wall-clock, volatile):")
        width = max(len(name) for name in timings)
        lines.extend(
            f"  {name:<{width}}  {cell['total_s']:.6f} s over {cell['count']} interval(s)"
            for name, cell in timings.items()
        )
    return "\n".join(lines) + "\n"
