"""Telemetry recorders: hierarchical spans, named counters, host timers.

Two recorder implementations share one duck-typed API:

* :class:`TelemetryRecorder` -- the real thing.  Spans form a tree merged
  by name under their parent (entering ``span("run_many")`` twice under
  the same parent yields one node with ``count == 2``), counters are a
  flat ``name -> int`` map, and host timers accumulate wall-clock seconds
  into a separate ``timings`` section.
* :class:`NullRecorder` -- the disabled default.  Every method is a no-op
  returning shared singletons, so instrumented call sites cost one
  attribute lookup and one call when telemetry is off; call sites never
  branch on whether telemetry is enabled.

Determinism contract: counters and the span tree are pure functions of
the work performed -- byte-identical across serial, parallel and cached
executions of the same grid -- because

* counters only ever accumulate totals (addition commutes, so thread
  interleaving cannot reorder them);
* span nodes that parallel workers run under are *opened* in the
  submitting thread, in deterministic submission order, and only
  *activated* (made current for nested spans) inside the worker.

Wall-clock time is confined to ``timings``: :class:`HostTimer` is the
single place in the package that reads ``time.perf_counter`` (the
explicitly marked host-measurement site lint rules R001/R006 funnel
everything through), so everything outside the ``timings`` section of a
report is reproducible bit for bit.

Thread-safety: one lock guards the counter map, the timing map and span
tree mutation; the current-span stack is thread-local, so well-nestedness
is per-thread by construction and verified on every span exit.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext

__all__ = ["Span", "HostTimer", "NullRecorder", "TelemetryRecorder"]


class Span:
    """One node in the span tree: a name, an entry count, named children.

    Spans carry no wall-clock time -- they count.  Construct them through
    a recorder (``span()`` / ``open_span()``), never directly; lint rule
    R006 enforces that outside ``repro.obs``.
    """

    __slots__ = ("name", "count", "children", "parent")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: dict[str, Span] = {}
        self.parent: Span | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "children": [c.to_dict() for c in self.children.values()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, count={self.count}, children={len(self.children)})"


def _graft(parent: Span, children: list[dict]) -> None:
    """Merge serialised subtrees (``to_dict`` children lists) under a node.

    Nodes merge by name exactly as live spans do (``open_span`` on an
    existing name), counts add, and recursion preserves each subtree's
    shape -- so grafting the span children of N process-shard recorders
    in shard order is deterministic and order-insensitive in the result.
    """
    for child in children:
        node = parent.children.get(child["name"])
        if node is None:
            node = parent.children[child["name"]] = Span(child["name"])
            node.parent = parent
        node.count += child["count"]
        _graft(node, child["children"])


class HostTimer:
    """Context manager measuring one wall-clock interval.

    This is the package's only sanctioned ``perf_counter`` site: host
    measurements (STREAM, the functional NPB timers, HPL/HPCG drivers)
    enter one of these, read ``elapsed_s`` on exit, and the interval is
    recorded -- when a real recorder is installed -- under ``name`` in the
    report's volatile ``timings`` section.  Timing happens even when
    telemetry is disabled because callers need the measured value itself.
    """

    __slots__ = ("name", "elapsed_s", "_recorder", "_t0")

    def __init__(self, name: str, recorder) -> None:
        self.name = name
        self.elapsed_s = 0.0
        self._recorder = recorder

    def __enter__(self) -> "HostTimer":
        self._t0 = time.perf_counter()  # repro: noqa[R001] -- the one sanctioned host-measurement site
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed_s = time.perf_counter() - self._t0  # repro: noqa[R001] -- the one sanctioned host-measurement site
        self._recorder.record_timing(self.name, self.elapsed_s)


class _SpanContext:
    """Enter/exit one (possibly merged) span under the current thread."""

    __slots__ = ("_recorder", "_name", "_node")

    def __init__(self, recorder: "TelemetryRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> Span:
        self._node = self._recorder.open_span(self._name)
        self._recorder._push(self._node)
        return self._node

    def __exit__(self, *exc: object) -> None:
        self._recorder._pop(self._node)


class _Activation:
    """Make an already-opened span current on *this* thread (no count)."""

    __slots__ = ("_recorder", "_node")

    def __init__(self, recorder: "TelemetryRecorder", node: Span) -> None:
        self._recorder = recorder
        self._node = node

    def __enter__(self) -> Span:
        self._recorder._push(self._node)
        return self._node

    def __exit__(self, *exc: object) -> None:
        self._recorder._pop(self._node)


#: Shared reusable no-op context manager (``nullcontext`` is reentrant).
_NULL_CONTEXT = nullcontext()


class NullRecorder:
    """The disabled recorder: every operation is a cheap no-op."""

    enabled = False

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def span(self, name: str):
        return _NULL_CONTEXT

    def open_span(self, name: str) -> None:
        return None

    def activate(self, node) -> object:
        return _NULL_CONTEXT

    def abandon_span(self, node) -> None:
        pass

    def record_timing(self, name: str, elapsed_s: float) -> None:
        pass

    def graft_children(self, children: list[dict]) -> None:
        pass

    # -- snapshot API (shape-compatible with TelemetryRecorder) --------

    def counters_snapshot(self) -> dict[str, int]:
        return {}

    def timings_snapshot(self) -> dict[str, tuple[float, int]]:
        return {}

    def span_tree(self) -> dict:
        return {"name": "session", "count": 0, "children": []}

    def quiescent(self) -> bool:
        return True


class TelemetryRecorder:
    """Thread-safe recorder of counters, a span tree and host timings."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.root = Span("session")
        self.root.count = 1
        self._counters: dict[str, int] = {}
        self._timings: dict[str, list] = {}  # name -> [total_s, count]
        self._local = threading.local()
        self._open = 0

    # -- current-span bookkeeping --------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span:
        """This thread's innermost open span (the root when none is)."""
        stack = self._stack()
        return stack[-1] if stack else self.root

    def _push(self, node: Span) -> None:
        self._stack().append(node)
        with self._lock:
            self._open += 1

    def _pop(self, node: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not node:
            raise RuntimeError(
                f"span {node.name!r} exited out of order; open stack: "
                f"{[s.name for s in stack]}"
            )
        stack.pop()
        with self._lock:
            self._open -= 1

    # -- recording API -------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def span(self, name: str) -> _SpanContext:
        """Context manager: open-or-merge a child span and make it current."""
        return _SpanContext(self, name)

    def open_span(self, name: str) -> Span:
        """Open-or-merge a child under the current span *without* entering it.

        Callers submitting work to other threads open spans here (in
        deterministic submission order) and pass the returned node to the
        worker, which enters it with :meth:`activate`.
        """
        parent = self.current()
        with self._lock:
            node = parent.children.get(name)
            if node is None:
                node = parent.children[name] = Span(name)
                node.parent = parent
            node.count += 1
        return node

    def activate(self, node: Span | None):
        """Context manager making an opened span current on this thread."""
        if node is None:
            return _NULL_CONTEXT
        return _Activation(self, node)

    def abandon_span(self, node: Span | None) -> None:
        """Undo one :meth:`open_span` on a handle that will never run.

        Work submitted for parallel execution opens its span eagerly; when
        the work is then never executed (a sibling group failed first, a
        pool could not start its thread), the opened count would claim an
        execution that never happened.  Abandoning decrements the count
        and prunes the node when nothing else ever entered it, so the
        span tree stays a pure function of the work actually performed.
        """
        if node is None:
            return
        with self._lock:
            node.count -= 1
            if node.count <= 0 and not node.children and node.parent is not None:
                node.parent.children.pop(node.name, None)

    def record_timing(self, name: str, elapsed_s: float) -> None:
        with self._lock:
            cell = self._timings.get(name)
            if cell is None:
                self._timings[name] = [elapsed_s, 1]
            else:
                cell[0] += elapsed_s
                cell[1] += 1

    def graft_children(self, children: list[dict]) -> None:
        """Merge serialised span subtrees under this thread's current span.

        Process-shard workers record into private recorders; the parent
        grafts each worker's ``span_tree()["children"]`` here so a
        sharded run's tree is indistinguishable from the same work done
        in-process.  Counts add; merge order does not affect the result.
        """
        parent = self.current()
        with self._lock:
            _graft(parent, children)

    # -- snapshot API --------------------------------------------------

    def counters_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def timings_snapshot(self) -> dict[str, tuple[float, int]]:
        with self._lock:
            return {name: (cell[0], cell[1]) for name, cell in self._timings.items()}

    def span_tree(self) -> dict:
        with self._lock:
            return self.root.to_dict()

    def quiescent(self) -> bool:
        """Whether every span that was entered has been exited."""
        with self._lock:
            return self._open == 0
