"""repro.obs -- deterministic-by-default telemetry for the sweep pipeline.

One process-wide recorder slot holds either a :class:`NullRecorder` (the
default: every operation a no-op) or a :class:`TelemetryRecorder`.
Instrumented call sites go through the module-level helpers below and
never branch on whether telemetry is enabled -- enabling is one call to
:func:`install`, disabling one call to :func:`disable`, and the swap is
the only conditional in the whole layer.

Usage::

    from repro import obs

    recorder = obs.install()          # start recording
    build_table(6)                    # instrumented code runs unchanged
    obs.disable()                     # back to the zero-overhead no-op
    print(render_text(recorder))      # repro.obs.export

Everything a recorder collects except the ``timings`` section (fed only
by :func:`host_timer`, the explicitly marked wall-clock site) is a pure
function of the work performed: byte-identical across serial, parallel
and warm-cache executions of the same grid.  ``tests/obs`` locks that
invariant in.
"""

from __future__ import annotations

import threading

from .recorder import HostTimer, NullRecorder, TelemetryRecorder

__all__ = [
    "NullRecorder",
    "TelemetryRecorder",
    "recorder",
    "install",
    "disable",
    "is_enabled",
    "incr",
    "span",
    "open_span",
    "activate",
    "abandon_span",
    "graft_children",
    "counter_value",
    "host_timer",
]

_recorder_lock = threading.Lock()
_recorder: NullRecorder | TelemetryRecorder = NullRecorder()


def recorder() -> NullRecorder | TelemetryRecorder:
    """The currently installed recorder (the shared no-op by default)."""
    return _recorder


def install(rec: TelemetryRecorder | None = None) -> TelemetryRecorder:
    """Install (and return) a recorder; a fresh one when none is given."""
    global _recorder
    new = rec if rec is not None else TelemetryRecorder()
    with _recorder_lock:
        _recorder = new
    return new


def disable() -> None:
    """Swap the no-op recorder back in (telemetry off, zero overhead)."""
    global _recorder
    with _recorder_lock:
        _recorder = NullRecorder()


def is_enabled() -> bool:
    return _recorder.enabled


# ----------------------------------------------------------------------
# Call-site helpers: one attribute lookup + one call when disabled.
# ----------------------------------------------------------------------


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to the named counter."""
    _recorder.incr(name, n)


def span(name: str):
    """Context manager: open a (merged-by-name) child span and enter it."""
    return _recorder.span(name)


def open_span(name: str):
    """Open a child span under the current one without entering it.

    Use from the thread that *submits* parallel work, so the span tree's
    shape is fixed in deterministic submission order; hand the returned
    node to the worker, which enters it with :func:`activate`.
    """
    return _recorder.open_span(name)


def activate(node):
    """Context manager entering a span opened via :func:`open_span`."""
    return _recorder.activate(node)


def abandon_span(node) -> None:
    """Release a span handle from :func:`open_span` that will never run.

    Keeps the span tree honest under failure: a handle opened for work
    that ends up not executing (pool startup failure, a sibling group
    raising first) must not count as an execution.
    """
    _recorder.abandon_span(node)


def graft_children(children: list[dict]) -> None:
    """Merge serialised span subtrees under this thread's current span.

    The process-shard merge point: workers return their recorder's
    ``span_tree()["children"]`` and the parent folds them into its own
    tree (by name, counts adding) so sharded and in-process runs produce
    identical trees.
    """
    _recorder.graft_children(children)


def counter_value(name: str) -> int:
    """Current value of one counter (0 when absent or telemetry is off).

    The service layer's ``/health``/``/stats`` endpoints and the dedup
    benchmarks read single counters (``service.executions``,
    ``sweep.containment_waits``) without snapshotting the whole report.
    """
    return _recorder.counters_snapshot().get(name, 0)


def host_timer(name: str) -> HostTimer:
    """A wall-clock interval timer (the *only* sanctioned timing site).

    Always measures -- callers need ``elapsed_s`` even with telemetry off
    -- but records into the report's volatile ``timings`` section only
    when a real recorder is installed.
    """
    return HostTimer(name, _recorder)
