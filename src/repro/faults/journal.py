"""Resumable on-disk journal of completed sweep results.

Long regeneration runs (every table over every machine) execute in
thread-sweep families; a crash between families loses everything memoised
in the engine's in-process cache.  A :class:`SweepJournal` attached to a
:class:`~repro.core.sweep.SweepEngine` persists every completed family's
results as they land, so an interrupted ``repro table``/``repro export``
run restarted with the same journal resumes from the completed families
instead of re-executing the whole grid.

Safety properties
-----------------
* **Crash-safe**: the journal file is rewritten through
  :func:`~repro.faults.atomic.write_text_atomic` on every record, so it
  is always a complete, parseable snapshot; a corrupt or torn file (or a
  schema mismatch) degrades to an empty journal, never to bad results.
* **Self-guarding**: entries are keyed by the engine's full cache key --
  runner seed, noise level, calibration flag and every config field --
  so a journal written under different settings is simply inert (no key
  ever matches), not poisonous.
* **Exact**: floats round-trip through JSON via ``repr`` (shortest
  round-trip), so resumed results are bit-identical to recomputed ones
  and resumed artifact bytes match an uninterrupted run's.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from .atomic import write_text_atomic

__all__ = ["SweepJournal", "encode_value", "decode_value"]

JOURNAL_VERSION = 1


def _encode_key(key: tuple) -> str:
    return json.dumps(list(key))


def _decode_key(text: str) -> tuple:
    return tuple(json.loads(text))


def encode_value(value) -> dict:
    """Serialise one cached value: a full result or a DNR verdict.

    Shared with :mod:`repro.store`: floats pass through JSON via ``repr``
    (shortest round-trip), so a value restored from disk -- journal or
    result store alike -- is bit-identical to the freshly computed one.
    """
    from repro.core.perfmodel import DNRError

    if isinstance(value, DNRError):
        return {"dnr": str(value)}
    prediction = value.prediction
    return {
        "result": {
            "machine": value.machine,
            "kernel": value.kernel,
            "npb_class": value.npb_class,
            "n_threads": value.n_threads,
            "compiler": value.compiler,
            "vectorised": value.vectorised,
            "samples": [[s.run_index, s.time_s, s.mops] for s in value.samples],
            "notes": list(value.notes),
            "prediction": {
                "machine": prediction.machine,
                "kernel": prediction.kernel,
                "npb_class": prediction.npb_class,
                "n_threads": prediction.n_threads,
                "time_s": prediction.time_s,
                "mops": prediction.mops,
                "t_compute": prediction.t_compute,
                "t_stream": prediction.t_stream,
                "t_latency": prediction.t_latency,
                "t_sync": prediction.t_sync,
                "vectorised": prediction.vectorised,
                "calibration_factor": prediction.calibration_factor,
                "notes": list(prediction.notes),
            },
        }
    }


def decode_value(payload: dict):
    """Inverse of :func:`encode_value` (raises on malformed payloads)."""
    from repro.core.perfmodel import DNRError, Prediction
    from repro.core.results import ExperimentResult, RunSample

    if "dnr" in payload:
        return DNRError(payload["dnr"])
    data = payload["result"]
    pred = dict(data["prediction"])
    pred["notes"] = tuple(pred["notes"])
    return ExperimentResult(
        machine=data["machine"],
        kernel=data["kernel"],
        npb_class=data["npb_class"],
        n_threads=data["n_threads"],
        compiler=data["compiler"],
        vectorised=data["vectorised"],
        samples=tuple(
            RunSample(run_index=i, time_s=t, mops=m) for i, t, m in data["samples"]
        ),
        prediction=Prediction(**pred),
        notes=tuple(data["notes"]),
    )


class SweepJournal:
    """Crash-safe persistence of completed sweep families.

    ``SweepJournal(path)`` loads whatever completed work the file already
    holds (tolerating a missing, torn or mismatched file); the engine
    records each family as it completes via :meth:`record` and preloads
    :meth:`results` on attach.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return
        try:
            data = json.loads(text)
        except ValueError:
            return  # torn or corrupt snapshot: resume from nothing
        if not isinstance(data, dict) or data.get("version") != JOURNAL_VERSION:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record(self, items: dict) -> None:
        """Persist a completed family's ``cache_key -> value`` map.

        The on-disk snapshot is rewritten atomically, so a crash during
        the write preserves the previous complete snapshot.  The write
        happens under the journal lock: concurrent families would
        otherwise race on the shared temporary file.
        """
        with self._lock:
            for key, value in items.items():
                self._entries[_encode_key(key)] = encode_value(value)
            snapshot = json.dumps(
                {"version": JOURNAL_VERSION, "entries": self._entries},
                sort_keys=True,
            )
            write_text_atomic(self.path, snapshot + "\n")

    def results(self) -> dict:
        """Decode every journaled entry as ``cache_key -> value``."""
        with self._lock:
            entries = dict(self._entries)
        out = {}
        for key_text, payload in entries.items():
            try:
                out[_decode_key(key_text)] = decode_value(payload)
            except (KeyError, TypeError, ValueError):
                continue  # one malformed entry must not poison the rest
        return out
