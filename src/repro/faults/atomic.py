"""Crash-safe artifact writes: tmp file + ``os.replace``.

A bare ``path.write_text`` interrupted mid-write leaves a *truncated*
file behind -- and a truncated CSV still parses as a short-but-valid
table, which is far worse than no file at all.  Every artifact the
harness emits (table/figure CSVs, the export index, telemetry reports,
the sweep journal) goes through :func:`write_text_atomic` instead: the
content lands in a same-directory temporary file first and is moved over
the destination with :func:`os.replace`, which is atomic on POSIX.  A
crash -- or an injected ``io`` fault from the installed
:class:`~repro.faults.plan.FaultPlan` -- leaves the destination either
untouched or fully written, never torn.
"""

from __future__ import annotations

import os
from pathlib import Path

from .plan import inject

__all__ = ["write_text_atomic"]


def write_text_atomic(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the path written.

    The installed fault plan's ``io`` probe fires after the temporary
    file is written but before the rename -- the exact "crash
    mid-artifact-write" moment -- so resilience tests can assert the
    destination survives intact.  The temporary file is removed on any
    failure.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text, encoding=encoding)
        inject("io.write", str(path), kinds=("io",))
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path
