"""repro.faults -- deterministic fault injection and resilience primitives.

The paper's methodology is long multi-machine sweeps; at production
scale the sweep engine must survive flaky workers, crashes mid-write and
slow environments without corrupting memoised results or telemetry.
This package supplies the four pieces that make that testable:

* a **typed error taxonomy** (:mod:`repro.faults.taxonomy`): transient
  failures are retried, DNR verdicts are cached, everything else
  propagates exactly once;
* a **seeded fault plan** (:mod:`repro.faults.plan`) installed behind a
  process-wide slot exactly like :mod:`repro.obs` -- call sites probe
  :func:`inject` unconditionally, and the schedule is a pure function of
  ``(seed, site, key, attempt)`` so faulted runs are reproducible;
* **crash-safe artifact writes** (:func:`write_text_atomic`);
* a **resumable sweep journal** (:class:`SweepJournal`) so interrupted
  regeneration runs restart from completed families.

The key invariant, locked in by ``tests/faults``: a sweep under injected
transient faults converges to bit-identical results and non-volatile
telemetry counters versus a fault-free run.
"""

from __future__ import annotations

from .atomic import write_text_atomic
from .journal import SweepJournal, decode_value, encode_value
from .plan import FaultPlan, NullFaultPlan, disable, inject, install, is_enabled, plan
from .taxonomy import (
    FaultError,
    GroupTimeoutError,
    InjectedIOError,
    InjectedTransientError,
    TransientError,
    classify,
)

__all__ = [
    "FaultError",
    "TransientError",
    "InjectedTransientError",
    "InjectedIOError",
    "GroupTimeoutError",
    "classify",
    "FaultPlan",
    "NullFaultPlan",
    "plan",
    "install",
    "disable",
    "is_enabled",
    "inject",
    "write_text_atomic",
    "SweepJournal",
    "encode_value",
    "decode_value",
]
