"""Seeded fault plans and the process-wide installation slot.

Mirrors :mod:`repro.obs`: one module-level slot holds either a
:class:`NullFaultPlan` (the default -- every probe a no-op) or a
:class:`FaultPlan`; instrumented call sites go through :func:`inject`
and never branch on whether injection is enabled.

Determinism contract
--------------------
A plan's entire schedule is a pure function of ``(seed, site, key,
attempt)``: attempt ``k`` at a site/key fails iff a sha256-derived
uniform for that exact tuple falls under the configured rate.  The
attempt index is a per-``(kind, site, key)`` counter inside the plan, so
the schedule is independent of thread interleaving and execution order
-- serial and parallel sweeps see byte-identical fault sequences, which
is what lets the property suite assert that a faulted run converges to
the fault-free answer.

``max_failures`` caps how many times any single ``(site, key)`` may fail
per kind (default 2), so any retry budget ``retries >= max_failures``
is guaranteed to converge.
"""

from __future__ import annotations

import hashlib
import threading
import time

from repro import obs

from .taxonomy import InjectedIOError, InjectedTransientError

__all__ = [
    "NullFaultPlan",
    "FaultPlan",
    "plan",
    "install",
    "disable",
    "is_enabled",
    "inject",
]

#: Fault kinds a plan can schedule at a probe site.
KINDS = ("slow", "transient", "io")


class NullFaultPlan:
    """The disabled plan: every probe is a cheap no-op."""

    enabled = False

    def inject(self, site: str, key: str, kinds=("transient", "slow")) -> None:
        pass

    def stats(self) -> dict[str, int]:
        return {}


class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    Parameters
    ----------
    seed:
        Base seed; the whole schedule derives from it.
    transient_rate:
        Probability that a probe raises :class:`InjectedTransientError`.
    io_rate:
        Probability that an ``io``-kind probe raises
        :class:`InjectedIOError` (simulating a crash mid-artifact-write).
    slow_rate, slow_delay_s:
        Probability and duration of an injected slow-worker delay.
    max_failures:
        Per-``(site, key)`` cap on injected failures of each kind; keeps
        every schedule convergent under a finite retry budget.
    sleep:
        Delay implementation (injectable so tests run at full speed).
    """

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        io_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_delay_s: float = 0.0,
        max_failures: int = 2,
        sleep=time.sleep,
    ) -> None:
        for name, rate in (
            ("transient_rate", transient_rate),
            ("io_rate", io_rate),
            ("slow_rate", slow_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if max_failures < 0:
            raise ValueError("max_failures must be >= 0")
        self.seed = seed
        self.transient_rate = transient_rate
        self.io_rate = io_rate
        self.slow_rate = slow_rate
        self.slow_delay_s = slow_delay_s
        self.max_failures = max_failures
        self._sleep = sleep
        self._lock = threading.Lock()
        self._attempts: dict[tuple, int] = {}
        self._failures: dict[tuple, int] = {}
        self._injected: dict[str, int] = {}

    # -- schedule ------------------------------------------------------

    def _uniform(self, kind: str, site: str, key: str, attempt: int) -> float:
        payload = f"{self.seed}|{kind}|{site}|{key}|{attempt}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little") / 2.0**64

    def _scheduled(self, kind: str, rate: float, site: str, key: str) -> bool:
        """Advance the (kind, site, key) attempt counter; fire per schedule."""
        if rate <= 0.0:
            return False
        cell = (kind, site, key)
        with self._lock:
            attempt = self._attempts.get(cell, 0)
            self._attempts[cell] = attempt + 1
            if self._failures.get(cell, 0) >= self.max_failures:
                return False
            if self._uniform(kind, site, key, attempt) >= rate:
                return False
            self._failures[cell] = self._failures.get(cell, 0) + 1
            self._injected[kind] = self._injected.get(kind, 0) + 1
        return True

    # -- probe ---------------------------------------------------------

    def inject(self, site: str, key: str, kinds=("transient", "slow")) -> None:
        """Fire this probe's scheduled faults (if any) for ``site``/``key``.

        ``slow`` delays never raise; ``transient`` raises
        :class:`InjectedTransientError`; ``io`` raises
        :class:`InjectedIOError`.  Each raised fault is wrapped in a
        ``fault[<kind>]`` telemetry span and counted under
        ``faults.injected`` / ``faults.<kind>``.
        """
        if "slow" in kinds and self._scheduled("slow", self.slow_rate, site, key):
            with obs.span("fault[slow]"):
                obs.incr("faults.injected")
                obs.incr("faults.slow")
                self._sleep(self.slow_delay_s)
        if "transient" in kinds and self._scheduled(
            "transient", self.transient_rate, site, key
        ):
            with obs.span("fault[transient]"):
                obs.incr("faults.injected")
                obs.incr("faults.transient")
                raise InjectedTransientError(
                    f"injected transient fault at {site}[{key}]"
                )
        if "io" in kinds and self._scheduled("io", self.io_rate, site, key):
            with obs.span("fault[io]"):
                obs.incr("faults.injected")
                obs.incr("faults.io")
                raise InjectedIOError(f"injected I/O fault at {site}[{key}]")

    def stats(self) -> dict[str, int]:
        """Injected-fault totals per kind (sorted, for reports)."""
        with self._lock:
            return dict(sorted(self._injected.items()))


# ----------------------------------------------------------------------
# The process-wide slot (same shape as the repro.obs recorder slot).
# ----------------------------------------------------------------------

_plan_lock = threading.Lock()
_plan: NullFaultPlan | FaultPlan = NullFaultPlan()


def plan() -> NullFaultPlan | FaultPlan:
    """The currently installed plan (the shared no-op by default)."""
    return _plan


def install(new: FaultPlan) -> FaultPlan:
    """Install (and return) a fault plan."""
    global _plan
    with _plan_lock:
        _plan = new
    return new


def disable() -> None:
    """Swap the no-op plan back in (fault injection off)."""
    global _plan
    with _plan_lock:
        _plan = NullFaultPlan()


def is_enabled() -> bool:
    return _plan.enabled


def inject(site: str, key: str, kinds=("transient", "slow")) -> None:
    """Probe the installed plan (no-op unless a plan is installed)."""
    _plan.inject(site, key, kinds)
