"""Typed error taxonomy for resilient sweep execution.

The sweep engine sorts every failure into exactly one of three buckets,
and each bucket has one -- and only one -- recovery policy:

``transient``
    :class:`TransientError` (and subclasses, including every injected
    fault from :mod:`repro.faults.plan`): the work is expected to succeed
    on a retry.  The engine retries with exponential backoff up to its
    ``retries`` budget, then propagates.
``dnr``
    :class:`repro.core.perfmodel.DNRError`: the configuration *cannot*
    run (the paper's "DNR" cells).  The verdict is a result, not a
    failure -- it is cached and replayed like any other result.
``fatal``
    Everything else: a real bug or an unrecoverable environment problem.
    Propagated to the caller exactly once; the engine never silently
    re-executes work to paper over it.

Keeping the classification in one function (rather than scattered
``except`` clauses) is what lint rule R007 enforces across
``repro.core`` and ``repro.harness``.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "TransientError",
    "InjectedTransientError",
    "InjectedIOError",
    "GroupTimeoutError",
    "classify",
]


class FaultError(Exception):
    """Base class for resilience-layer failures (injected or detected)."""


class TransientError(FaultError):
    """A failure expected to succeed on retry (flaky worker, busy I/O).

    Raise this (or a subclass) from a runner to opt into the sweep
    engine's retry-with-backoff path; anything else propagates once.
    """


class InjectedTransientError(TransientError):
    """A transient runner fault injected by a :class:`FaultPlan`."""


class InjectedIOError(FaultError, OSError):
    """A simulated I/O failure injected by a :class:`FaultPlan`.

    Subclasses :class:`OSError` so code that guards real filesystem
    errors exercises the identical handling path under injection.
    """


class GroupTimeoutError(FaultError):
    """A sweep group exceeded the engine's per-group timeout (fatal)."""


def classify(exc: BaseException) -> str:
    """Sort an exception into the taxonomy: transient / dnr / fatal."""
    # Imported lazily: repro.core.sweep imports this package, and the
    # taxonomy must stay importable without the model stack.
    from repro.core.perfmodel import DNRError

    if isinstance(exc, TransientError):
        return "transient"
    if isinstance(exc, DNRError):
        return "dnr"
    return "fatal"
