"""Disk-backed content-addressed result store with leases and eviction.

Layout (everything under one root directory)::

    <root>/objects/<digest>.json   one entry per key (atomic writes)
    <root>/leases/<digest>.lease   O_EXCL cross-process execution claims
    <root>/index.json              advisory LRU index (sizes + recency)

``<digest>`` is the sha256 of the canonical JSON encoding of the key
tuple, so the mapping from key to path is a pure function -- any process
that can compute the key can find (or publish) the entry without
coordination.  Entries carry the key itself plus a sha256 over the
payload text; reads verify both, and anything that fails verification is
unlinked and reported as a miss, never returned.

Values are the exact types the engine memoises -- ``ExperimentResult``
and ``DNRError`` via the journal's shared codec -- plus plain strings
for rendered artifacts.  The codec renders floats with ``repr``
(shortest round-trip), so restored values are bit-identical to freshly
computed ones.

Concurrency: one instance is thread-safe (its lock guards only the
in-memory index; file I/O happens through atomic writes).  Across
processes, writers race benignly -- both write byte-identical content
for the same key -- and :meth:`try_lease` gives callers that need
at-most-once *execution* an O_EXCL claim.  Recency is advisory: each
process tracks what it touched; the persisted index is a hint rebuilt
from the objects directory whenever it is missing or stale.

No wall clock anywhere: recency is a monotonic per-instance sequence
number and lease waits are attempt-counted by the caller, keeping every
store-backed run deterministic enough for the repo's telemetry
contracts (lint rules R001/R006).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro import obs
from repro.faults.atomic import write_text_atomic
from repro.faults.journal import decode_value, encode_value

__all__ = ["ResultStore", "store_from_env", "STORE_VERSION"]

#: Bump when the entry schema changes shape: old entries then fail the
#: version check and degrade to misses (recompute + rewrite), never to
#: misdecoded values.
STORE_VERSION = 1

_OBJECTS_DIR = "objects"
_LEASES_DIR = "leases"
_INDEX_NAME = "index.json"


def _canonical_key(key: tuple) -> str:
    return json.dumps(list(key))


def _digest_key(key: tuple) -> str:
    return hashlib.sha256(_canonical_key(key).encode()).hexdigest()


def _encode(value) -> dict:
    if isinstance(value, str):
        return {"text": value}
    return encode_value(value)


def _decode(payload: dict):
    if "text" in payload:
        text = payload["text"]
        if not isinstance(text, str):
            raise ValueError("text payload must be a string")
        return text
    return decode_value(payload)


class ResultStore:
    """One store directory: get/put by key, leases, LRU eviction.

    Parameters
    ----------
    root:
        The store directory (created lazily on first write).
    max_bytes:
        Advisory size cap over entry payload bytes.  ``None`` (default)
        disables eviction.  When a put pushes the total over the cap,
        least-recently-used entries are evicted until it fits -- except
        entries under an active lease, which are never evicted (their
        owner is about to read or republish them).
    lease_timeout_s, poll_interval_s:
        The wait budget callers use when another process holds a key's
        lease: poll every ``poll_interval_s`` for up to
        ``lease_timeout_s`` (attempt-counted -- the store itself never
        reads a clock), then break the lease and take over.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = None,
        lease_timeout_s: float = 10.0,
        poll_interval_s: float = 0.01,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None to disable)")
        if lease_timeout_s <= 0 or poll_interval_s <= 0:
            raise ValueError("lease_timeout_s and poll_interval_s must be > 0")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.lease_timeout_s = lease_timeout_s
        self.poll_interval_s = poll_interval_s
        self._objects = self.root / _OBJECTS_DIR
        self._leases = self.root / _LEASES_DIR
        self._index_path = self.root / _INDEX_NAME
        self._lock = threading.Lock()
        #: digest -> {"size": int, "seq": int}; None until first use.
        self._entries: dict[str, dict] | None = None
        self._seq = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: tuple):
        """The stored value for ``key``, or ``None`` on a miss.

        Corrupt, truncated or tampered entries (bad JSON, schema/version
        mismatch, key mismatch, sha256 mismatch) are unlinked, counted
        under ``store.corrupt_entries`` and reported as misses.
        """
        digest = _digest_key(key)
        value = self._read_verified(digest, key)
        if value is None:
            obs.incr("store.misses")
            return None
        obs.incr("store.hits")
        with self._lock:
            self._touch_locked(digest)
        return value

    def get_many(self, keys) -> dict:
        """Bulk :meth:`get`: ``key -> value`` for every present key."""
        found = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def __contains__(self, key: tuple) -> bool:
        return (self._objects / f"{_digest_key(key)}.json").exists()

    def _read_verified(self, digest: str, key: tuple):
        path = self._objects / f"{digest}.json"
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or entry.get("version") != STORE_VERSION:
                raise ValueError("schema/version mismatch")
            payload_text = entry["payload"]
            if not isinstance(payload_text, str):
                raise ValueError("payload must be a JSON string")
            recorded = entry["sha256"]
            actual = hashlib.sha256(payload_text.encode()).hexdigest()
            if recorded != actual:
                raise ValueError("payload sha256 mismatch")
            if entry["key"] != json.loads(_canonical_key(key)):
                raise ValueError("key mismatch")
            return _decode(json.loads(payload_text))
        except (KeyError, TypeError, ValueError):
            obs.incr("store.corrupt_entries")
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self._forget_locked(digest)
            return None

    # ------------------------------------------------------------------
    # Writes / eviction
    # ------------------------------------------------------------------

    def put(self, key: tuple, value) -> None:
        """Publish one entry atomically (idempotent: same key, same bytes)."""
        digest = _digest_key(key)
        payload_text = json.dumps(_encode(value), sort_keys=True)
        entry_text = (
            json.dumps(
                {
                    "version": STORE_VERSION,
                    "key": json.loads(_canonical_key(key)),
                    "payload": payload_text,
                    "sha256": hashlib.sha256(payload_text.encode()).hexdigest(),
                },
                sort_keys=True,
            )
            + "\n"
        )
        self._objects.mkdir(parents=True, exist_ok=True)
        path = self._objects / f"{digest}.json"
        write_text_atomic(path, entry_text)
        obs.incr("store.writes")
        obs.incr("store.bytes_written", len(entry_text))
        with self._lock:
            self._touch_locked(digest, size=len(entry_text))
            self._evict_locked()
            self._write_index_locked()

    def put_many(self, items: dict) -> None:
        """Bulk :meth:`put` over a ``key -> value`` map."""
        for key, value in items.items():
            self.put(key, value)

    def _evict_locked(self) -> None:
        if self.max_bytes is None:
            return
        total = sum(meta["size"] for meta in self._entries.values())
        if total <= self.max_bytes:
            return
        by_recency = sorted(
            self._entries.items(), key=lambda item: (item[1]["seq"], item[0])
        )
        for digest, meta in by_recency:
            if total <= self.max_bytes:
                break
            if (self._leases / f"{digest}.lease").exists():
                continue  # never evict under an active lease
            try:
                os.unlink(self._objects / f"{digest}.json")
            except OSError:
                pass
            total -= meta["size"]
            del self._entries[digest]
            obs.incr("store.evictions")

    # ------------------------------------------------------------------
    # Leases (cross-process single-flight)
    # ------------------------------------------------------------------

    def lease_path(self, key: tuple) -> Path:
        return self._leases / f"{_digest_key(key)}.lease"

    def try_lease(self, key: tuple) -> bool:
        """Claim ``key`` for execution; False if another holder beat us.

        O_CREAT|O_EXCL is atomic on every filesystem the repo targets,
        so exactly one process (and one thread within it) wins.  The
        winner must :meth:`release_lease` after publishing -- or crash,
        in which case waiters take the lease over after their bounded
        wait (:attr:`lease_timeout_s`).
        """
        self._leases.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.lease_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            obs.incr("store.lease_conflicts")
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        obs.incr("store.lease_acquired")
        return True

    def release_lease(self, key: tuple) -> None:
        """Drop a held lease (idempotent; a vanished lease is fine)."""
        try:
            os.unlink(self.lease_path(key))
        except OSError:
            pass

    def lease_active(self, key: tuple) -> bool:
        return self.lease_path(key).exists()

    def break_lease(self, key: tuple) -> None:
        """Forcibly clear a (presumed dead) holder's lease."""
        obs.incr("store.lease_broken")
        self.release_lease(key)

    # ------------------------------------------------------------------
    # Advisory index (sizes + recency)
    # ------------------------------------------------------------------

    def _ensure_index_locked(self) -> None:
        if self._entries is not None:
            return
        self._entries = {}
        try:
            data = json.loads(self._index_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, ValueError):
            data = None
        if (
            isinstance(data, dict)
            and data.get("version") == STORE_VERSION
            and isinstance(data.get("entries"), dict)
        ):
            for digest, meta in data["entries"].items():
                if (
                    isinstance(meta, dict)
                    and isinstance(meta.get("size"), int)
                    and isinstance(meta.get("seq"), int)
                ):
                    self._entries[digest] = {"size": meta["size"], "seq": meta["seq"]}
            self._seq = max(
                (meta["seq"] for meta in self._entries.values()), default=0
            )
        # Reconcile against the objects directory (sorted: deterministic
        # seq assignment): entries another process wrote join the index,
        # entries that vanished leave it.
        on_disk = {}
        try:
            names = sorted(os.listdir(self._objects))
        except OSError:
            names = []
        for name in names:
            if name.endswith(".json"):
                try:
                    on_disk[name[:-5]] = (self._objects / name).stat().st_size
                except OSError:
                    continue
        for digest in list(self._entries):
            if digest not in on_disk:
                del self._entries[digest]
        for digest, size in on_disk.items():
            if digest not in self._entries:
                self._seq += 1
                self._entries[digest] = {"size": size, "seq": self._seq}
            else:
                self._entries[digest]["size"] = size

    def _touch_locked(self, digest: str, size: int | None = None) -> None:
        self._ensure_index_locked()
        self._seq += 1
        meta = self._entries.get(digest)
        if meta is None:
            if size is None:
                try:
                    size = (self._objects / f"{digest}.json").stat().st_size
                except OSError:
                    return  # raced with an eviction/unlink; nothing to track
            self._entries[digest] = {"size": size, "seq": self._seq}
            return
        meta["seq"] = self._seq
        if size is not None:
            meta["size"] = size

    def _forget_locked(self, digest: str) -> None:
        if self._entries is not None:
            self._entries.pop(digest, None)

    def _write_index_locked(self) -> None:
        snapshot = json.dumps(
            {"version": STORE_VERSION, "entries": self._entries}, sort_keys=True
        )
        write_text_atomic(self._index_path, snapshot + "\n")

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Static shape for /health and ``repro stats``: size and bounds."""
        with self._lock:
            self._ensure_index_locked()
            total = sum(meta["size"] for meta in self._entries.values())
            entries = len(self._entries)
        try:
            leases = sum(
                1 for name in os.listdir(self._leases) if name.endswith(".lease")
            )
        except OSError:
            leases = 0
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "leases": leases,
        }

    def clear(self) -> None:
        """Remove every entry, lease and the index (a fresh store)."""
        with self._lock:
            for directory, suffix in ((self._objects, ".json"), (self._leases, ".lease")):
                try:
                    names = os.listdir(directory)
                except OSError:
                    names = []
                for name in names:
                    if name.endswith(suffix):
                        try:
                            os.unlink(directory / name)
                        except OSError:
                            pass
            try:
                os.unlink(self._index_path)
            except OSError:
                pass
            self._entries = {}
            self._seq = 0


def store_from_env() -> ResultStore | None:
    """The store the ``REPRO_STORE`` environment variable names (if any).

    ``REPRO_STORE_MAX_MB`` (optional) bounds it; parsing failures fall
    back to an unbounded store rather than refusing to start.
    """
    root = os.environ.get("REPRO_STORE")
    if not root:
        return None
    raw_cap = os.environ.get("REPRO_STORE_MAX_MB")
    max_bytes = None
    if raw_cap:
        try:
            max_bytes = max(1, int(raw_cap)) * 2**20
        except ValueError:
            max_bytes = None
    return ResultStore(root, max_bytes=max_bytes)
