"""repro.store -- persistent content-addressed result store.

The sweep engine's memo cache, the journal's crash-resume entries and
the service layer's rendered artifacts all die with their process.  This
package is the durable tier underneath all three: a disk directory of
content-addressed entries keyed by the exact tuples the rest of the repo
already uses for identity (:func:`repro.core.sweep.compute_cache_key`
for results, ``("artifact", job_id)`` for rendered CSVs), so a restarted
server, a resumed campaign or a second process on the same host starts
*warm* instead of recomputing the paper.

Three guarantees, proven by ``tests/store``:

* **Exactness** -- values round-trip through the journal's shared codec
  (``repr`` floats, shortest round-trip), so a warm-from-store result,
  DNR message or artifact is byte-identical to cold computation.
* **Integrity** -- every entry records a sha256 of its payload and is
  verified on read; truncated, torn or tampered entries are deleted and
  reported as misses (the caller recomputes and rewrites).
* **Cross-process single-flight** -- O_EXCL lease files extend the
  engine's in-process single-flight table across processes: two servers
  sharing a store directory never double-execute a key, the waiter polls
  (bounded) for the owner's published entry and takes the lease over if
  the owner dies.

Size is bounded by LRU eviction over an advisory index (monotonic
sequence numbers, no wall clock anywhere); entries under an active lease
are never evicted.
"""

from .store import STORE_VERSION, ResultStore, store_from_env

__all__ = ["ResultStore", "store_from_env", "STORE_VERSION"]
