"""Simulated ``perf stat`` counters over a model prediction.

Section 6 of the paper diagnoses the CG vectorisation anomaly with
hardware counters: the vectorised binary suffers about *double* the branch
misses and completes 0.51 instructions per cycle against 0.54 for the
scalar one.  This module derives the same counter set (instructions,
cycles, IPC, branch misses, cache misses) from a
:class:`~repro.core.perfmodel.Prediction` plus the compiler outcome,
so the paper's analysis can be replayed on the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compilers.model import CompilerSpec, vectorisation_outcome
from repro.machines.machine import Machine

from repro.core.perfmodel import PerformanceModel
from repro.core.signature import KernelSignature

__all__ = ["PerfCounters", "measure"]

#: Branches per dynamic instruction in NPB-like code (loop bound checks,
#: rejection tests); and the baseline misprediction rate of a decent
#: branch predictor on them.
_BRANCH_FRACTION = 0.12
_BASE_MISS_RATE = 0.015


@dataclass(frozen=True)
class PerfCounters:
    """One simulated ``perf stat`` run."""

    machine: str
    kernel: str
    vectorised: bool
    instructions: float
    cycles: float
    branches: float
    branch_misses: float
    cache_misses: float
    time_s: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles

    @property
    def branch_miss_rate(self) -> float:
        return self.branch_misses / self.branches

    def summary(self) -> str:
        return (
            f"{self.kernel.upper()} on {self.machine} "
            f"({'vec' if self.vectorised else 'no-vec'}): "
            f"IPC {self.ipc:.2f}, "
            f"branch misses {self.branch_misses:.3e} "
            f"({100 * self.branch_miss_rate:.1f}%), "
            f"cache misses {self.cache_misses:.3e}"
        )


def measure(
    machine: Machine,
    signature: KernelSignature,
    compiler: CompilerSpec,
    n_threads: int = 1,
    vectorise: bool = True,
    model: PerformanceModel | None = None,
) -> PerfCounters:
    """Simulate ``perf stat`` for one configuration.

    Instruction count shrinks under vectorisation (lanes retire together);
    cycles come from the model's predicted time; branch misses inflate by
    the compiler outcome's multiplier (the Section 6 signal); cache misses
    follow the signature's DRAM traffic.
    """
    model = model or PerformanceModel()
    prediction = model.predict(machine, signature, compiler, n_threads, vectorise)
    outcome = vectorisation_outcome(
        compiler,
        machine.core.vector,
        signature.name,
        signature.vec_fraction,
        vectorise,
        gather_pathology=signature.gather_pathology,
    )

    # The signature's work_per_op counts algorithmic instructions; the
    # calibration residual (address arithmetic, spills, per-access
    # bookkeeping the abstract count omits) is real retired work too.
    scalar_instructions = signature.total_instructions * prediction.calibration_factor
    if outcome.applied:
        vec_f = signature.vec_fraction
        if outcome.branch_miss_multiplier > 1.0:
            # Pathological RVV gather code *expands* the dynamic stream:
            # stripmining control flow, mask generation and element-wise
            # gather splitting.  This is why the paper measures nearly
            # equal IPC (0.51 vs 0.54) despite the 2.7x slowdown -- the
            # vectorised binary simply executes ~2.5x the instructions.
            instructions = scalar_instructions * ((1.0 - vec_f) + vec_f * 2.7)
        else:
            lanes = max(machine.core.vector.speedup_over_scalar(), 1.0)
            # Healthy vectorisation retires ~1/lanes as many instructions
            # plus a little stripmining overhead.
            instructions = scalar_instructions * (
                (1.0 - vec_f) + vec_f * 1.02 / lanes
            )
    else:
        instructions = scalar_instructions

    cycles = prediction.time_s * machine.clock_hz * n_threads
    branches = instructions * _BRANCH_FRACTION
    branch_misses = branches * _BASE_MISS_RATE * outcome.branch_miss_multiplier
    cache_misses = (
        signature.total_dram_bytes / 64.0 + signature.total_random_accesses * 0.5
    )

    return PerfCounters(
        machine=machine.name,
        kernel=signature.name,
        vectorised=outcome.applied,
        instructions=instructions,
        cycles=cycles,
        branches=branches,
        branch_misses=branch_misses,
        cache_misses=cache_misses,
        time_s=prediction.time_s,
    )
