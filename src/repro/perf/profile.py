"""The Section 6 CG vectorisation study, replayed on the model.

The paper's findings on one SG2044 C920v2 core, class C:

* vectorised CG is ~2.7x slower than scalar (81.19 vs 217.53 Mop/s);
* ``perf`` shows ~2x the branch misses and IPC 0.51 vs 0.54;
* the ``conj_grad`` matvec's unroll-by-2 variant runs 1.12x the default
  vectorised code and unroll-by-8 1.64x -- both still short of scalar;
* the SpacemiT K1/M1 (256-bit RVV) shows only a marginal reduction.

``cg_vectorisation_study`` reproduces all four observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compilers.gcc import get_compiler
from repro.machines.catalog import get_machine

from repro.core.perfmodel import PerformanceModel
from repro.core.signature import KernelSignature

from .counters import PerfCounters, measure

__all__ = ["UnrollVariant", "CGStudyRow", "cg_vectorisation_study", "UNROLL_SPEEDUPS"]

#: Relative speedup of the unrolled vectorised matvec variants over the
#: default vectorised code (paper Section 6: 1.12x and 1.64x).  The
#: unrolling amortises stripmining control flow, recovering part -- but
#: not all -- of the pathology.
UNROLL_SPEEDUPS = {1: 1.0, 2: 1.12, 8: 1.64}


@dataclass(frozen=True)
class UnrollVariant:
    unroll: int
    mops: float
    relative_to_default_vec: float
    beats_scalar: bool


@dataclass(frozen=True)
class CGStudyRow:
    machine: str
    scalar: PerfCounters
    vectorised: PerfCounters
    slowdown: float  # scalar_time / vec_time inverse: > 1 means vec slower
    branch_miss_ratio: float
    ipc_scalar: float
    ipc_vectorised: float
    unroll_variants: tuple[UnrollVariant, ...]


def cg_vectorisation_study(
    machine_name: str = "sg2044",
    npb_class: str = "C",
    compiler_name: str = "gcc-15.2",
) -> CGStudyRow:
    """Reproduce the Section 6 CG analysis for one machine."""
    from repro.npb.signatures import signature_for

    machine = get_machine(machine_name)
    compiler = get_compiler(compiler_name)
    sig: KernelSignature = signature_for("cg", npb_class)
    model = PerformanceModel()

    scalar = measure(machine, sig, compiler, 1, vectorise=False, model=model)
    vectorised = measure(machine, sig, compiler, 1, vectorise=True, model=model)

    scalar_mops = sig.total_mops / scalar.time_s
    vec_mops = sig.total_mops / vectorised.time_s
    variants = []
    for unroll, gain in sorted(UNROLL_SPEEDUPS.items()):
        mops = vec_mops * gain
        variants.append(
            UnrollVariant(
                unroll=unroll,
                mops=mops,
                relative_to_default_vec=gain,
                beats_scalar=mops > scalar_mops,
            )
        )

    return CGStudyRow(
        machine=machine_name,
        scalar=scalar,
        vectorised=vectorised,
        slowdown=vectorised.time_s / scalar.time_s,
        branch_miss_ratio=vectorised.branch_miss_rate / scalar.branch_miss_rate,
        ipc_scalar=scalar.ipc,
        ipc_vectorised=vectorised.ipc,
        unroll_variants=tuple(variants),
    )
