"""Simulated perf counters and the Section 6 CG vectorisation study."""

from .counters import PerfCounters, measure
from .profile import (
    CGStudyRow,
    UNROLL_SPEEDUPS,
    UnrollVariant,
    cg_vectorisation_study,
)

__all__ = [
    "CGStudyRow",
    "PerfCounters",
    "UNROLL_SPEEDUPS",
    "UnrollVariant",
    "cg_vectorisation_study",
    "measure",
]
