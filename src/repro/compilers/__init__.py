"""Compiler capability/efficacy models (GCC versions, XuanTie fork, LLVM)."""

from .model import (
    CompilerFamily,
    CompilerSpec,
    VectorisationOutcome,
    vectorisation_outcome,
)
from .gcc import (
    GCC_12_3_1,
    GCC_15_2,
    XUANTIE_GCC_8_4,
    compiler_names,
    default_compiler_for,
    get_compiler,
)

__all__ = [
    "CompilerFamily",
    "CompilerSpec",
    "GCC_12_3_1",
    "GCC_15_2",
    "VectorisationOutcome",
    "XUANTIE_GCC_8_4",
    "compiler_names",
    "default_compiler_for",
    "get_compiler",
    "vectorisation_outcome",
]
