"""The specific compilers used in the paper, plus LLVM for future work.

Per-kernel scalar-quality factors for GCC 12.3.1 are fitted to the paper's
Table 7 (single-core SG2044, vectorisation off), normalised so that
mainline GCC 15.2 scalar code is 1.0:

=======  ==========================  =======
kernel   Table 7 ratio (12.3.1 /     factor
         15.2-no-vec)
=======  ==========================  =======
IS       62.94 / 62.75               1.003
MG       1373.31 / 1300.27           1.056
EP       40.56 / 40.75               0.995
CG       210.06 / 217.53             0.966
FT       887.43 / 982.93             0.903
=======  ==========================  =======

Note the non-monotonicity: 12.3.1's scalar MG code *beats* 15.2's (loop
nest layout differences), while its FT code trails by 10%.
"""

from __future__ import annotations

from functools import lru_cache

from .model import CompilerFamily, CompilerSpec

__all__ = [
    "get_compiler",
    "compiler_names",
    "default_compiler_for",
    "GCC_15_2",
    "GCC_12_3_1",
    "XUANTIE_GCC_8_4",
]


GCC_15_2 = CompilerSpec(
    family=CompilerFamily.GCC,
    version=(15, 2),
    # Reference scalar code generator: all factors 1.0 by definition.
)

GCC_14_2 = CompilerSpec(
    family=CompilerFamily.GCC,
    version=(14, 2),
    # First mainline GCC with full RVV 1.0 auto-vectorisation, but the
    # 14 -> 15 cycle brought further RISC-V tuning.
    default_scalar_quality=0.99,
)

GCC_13_1 = CompilerSpec(
    family=CompilerFamily.GCC,
    version=(13, 1),
    # Foundational RVV support only -- cannot fully auto-vectorise RVV 1.0
    # (can_vectorise() returns False for RVV below GCC 14).
    default_scalar_quality=0.985,
)

GCC_12_3_1 = CompilerSpec(
    family=CompilerFamily.GCC,
    version=(12, 3, 1),
    scalar_quality={
        "is": 1.003,
        "mg": 1.056,
        "ep": 0.995,
        "cg": 0.966,
        "ft": 0.903,
        # Pseudo-apps: no Table 7 data; FT-like heavy FP loop nests, so we
        # take a mild penalty similar to the kernel average.
        "bt": 0.97,
        "lu": 0.97,
        "sp": 0.97,
    },
    # Table 8 (64 cores): 12.3.1 extracts far less of the saturated
    # memory subsystem on IS (2255 vs 3038 Mop/s) and less on FT
    # (20796 vs 22582) despite single-core parity -- older RISC-V
    # memory-op scheduling.
    saturation_quality={
        "is": 0.72,
        "ft": 0.90,
        "mg": 0.99,
        "bt": 0.95,
        "lu": 0.95,
        "sp": 0.95,
    },
    default_scalar_quality=0.98,
)

GCC_11_2 = CompilerSpec(  # ARCHER2 (EPYC 7742)
    family=CompilerFamily.GCC,
    version=(11, 2),
    default_scalar_quality=1.0,  # x86 codegen long since mature
)

GCC_9_2 = CompilerSpec(  # Fulhame (ThunderX2)
    family=CompilerFamily.GCC,
    version=(9, 2),
    default_scalar_quality=0.99,
)

GCC_8_4 = CompilerSpec(  # Skylake 8170 system compiler
    family=CompilerFamily.GCC,
    version=(8, 4),
    default_scalar_quality=0.99,
)

XUANTIE_GCC_8_4 = CompilerSpec(
    # T-Head's fork: the only compiler that targets RVV 0.7.1, and the
    # paper found it consistently fastest on the SG2042 (better than
    # mainline GCC 15.2 there, which cannot vectorise at all for 0.7.1).
    family=CompilerFamily.XUANTIE_GCC,
    version=(8, 4),
    default_scalar_quality=0.97,  # fork lags mainline scalar optimisation
)

LLVM_18 = CompilerSpec(
    # Section 7 future work: LLVM supported RVV longer than GCC.
    family=CompilerFamily.LLVM,
    version=(18, 1),
    default_scalar_quality=0.995,
)


_REGISTRY: dict[str, CompilerSpec] = {
    "gcc-15.2": GCC_15_2,
    "gcc-14.2": GCC_14_2,
    "gcc-13.1": GCC_13_1,
    "gcc-12.3.1": GCC_12_3_1,
    "gcc-11.2": GCC_11_2,
    "gcc-9.2": GCC_9_2,
    "gcc-8.4": GCC_8_4,
    "xuantie-gcc-8.4": XUANTIE_GCC_8_4,
    "llvm-18": LLVM_18,
}


@lru_cache(maxsize=None)
def get_compiler(name: str) -> CompilerSpec:
    """Look up a compiler by registry name (e.g. ``"gcc-15.2"``).

    Memoised; specs are frozen dataclasses, safe to share across threads.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown compiler {name!r}; known: {known}") from None


def compiler_names() -> list[str]:
    return list(_REGISTRY.keys())


@lru_cache(maxsize=None)
def default_compiler_for(machine_name: str) -> str:
    """The compiler the paper used on each machine.

    SG2044 and the RVV 1.0 boards get mainline GCC 15.2; the SG2042 gets
    the XuanTie fork (Section 4 found it consistently fastest there); the
    x86/Arm systems use their site compilers.
    """
    defaults = {
        "sg2044": "gcc-15.2",
        "sg2042": "xuantie-gcc-8.4",
        "epyc7742": "gcc-11.2",
        "skylake8170": "gcc-8.4",
        "thunderx2": "gcc-9.2",
        "visionfive2": "gcc-15.2",
        "visionfive1": "gcc-15.2",
        "hifive-u740": "gcc-15.2",
        "allwinner-d1": "gcc-15.2",
        "bananapi-f3": "gcc-15.2",
        "milkv-jupiter": "gcc-15.2",
    }
    try:
        return defaults[machine_name]
    except KeyError:
        raise KeyError(f"no default compiler recorded for machine {machine_name!r}") from None
