"""Compiler capability and code-quality model.

The paper's compiler story has two parts:

1. **Legality** -- which compiler can target which vector extension.
   Mainline GCC gained foundational RISC-V vectorisation in 13.1 and full
   RVV 1.0 auto-vectorisation in 14, so the SG2044 (RVV 1.0) is served by
   mainline GCC 15.2 while the SG2042 (RVV 0.7.1) needs T-Head's XuanTie
   GCC 8.4 fork.  x86 and Arm SIMD have been mainline for decades.

2. **Efficacy** -- how much of the ideal SIMD speedup auto-vectorisation
   realises per kernel, including the paper's Section 6 anomaly where the
   vectorised CG runs ~2.7x *slower* on a single C920v2 core (doubled
   branch misses, IPC 0.51 vs 0.54).

Both are modelled here; :mod:`repro.core.perfmodel` composes the resulting
multipliers into the compute-rate term.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.machines.cpu import VectorStandard, VectorUnit

__all__ = [
    "CompilerFamily",
    "CompilerSpec",
    "VectorisationOutcome",
    "vectorisation_outcome",
]


class CompilerFamily(enum.Enum):
    GCC = "gcc"
    XUANTIE_GCC = "xuantie-gcc"  # T-Head's RVV 0.7.1 fork
    LLVM = "llvm"


@dataclass(frozen=True)
class CompilerSpec:
    """One compiler the paper (or its future-work section) uses.

    ``scalar_quality`` maps kernel name -> multiplier on scalar code
    quality relative to the reference (mainline GCC 15.2).  Table 7 shows
    the deltas are small but kernel-dependent and not monotone in version
    (GCC 12.3.1 beats 15.2-no-vec on MG but loses badly on FT).
    """

    family: CompilerFamily
    version: tuple[int, ...]
    scalar_quality: dict[str, float] = field(default_factory=dict)
    default_scalar_quality: float = 1.0
    # kernel -> multiplier on how much of the memory subsystem's saturated
    # throughput the generated code extracts.  Invisible at one core (the
    # core, not the chip, is then the bottleneck) but decisive at 64:
    # Table 8 shows GCC 12.3.1 losing 26% on IS and 8% on FT at 64 cores
    # despite near-parity at one (memory-access instruction scheduling and
    # non-temporal-pattern differences).
    saturation_quality: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.version:
            raise ValueError("version tuple must be non-empty")
        if any(v < 0 for v in self.version):
            raise ValueError("version components must be non-negative")
        if self.default_scalar_quality <= 0:
            raise ValueError("scalar quality must be positive")
        for kernel, q in self.scalar_quality.items():
            if q <= 0:
                raise ValueError(f"scalar quality for {kernel} must be positive")
        for kernel, q in self.saturation_quality.items():
            if not 0.0 < q <= 1.2:
                raise ValueError(f"saturation quality for {kernel} must be in (0, 1.2]")

    @property
    def version_str(self) -> str:
        return ".".join(str(v) for v in self.version)

    @property
    def display(self) -> str:
        prefix = {
            CompilerFamily.GCC: "GCC",
            CompilerFamily.XUANTIE_GCC: "XuanTie GCC",
            CompilerFamily.LLVM: "LLVM/Clang",
        }[self.family]
        return f"{prefix} v{self.version_str}"

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------

    def can_vectorise(self, standard: VectorStandard) -> bool:
        """Whether this compiler can auto-vectorise for ``standard``."""
        if standard is VectorStandard.NONE:
            return False
        if standard is VectorStandard.RVV_0_7_1:
            # Pre-ratification RVV: only the XuanTie fork ever targeted it.
            return self.family is CompilerFamily.XUANTIE_GCC
        if standard is VectorStandard.RVV_1_0:
            if self.family is CompilerFamily.GCC:
                # Foundational support in 13.1; full RVV 1.0 auto-vec in 14.
                return self.version >= (14,)
            if self.family is CompilerFamily.LLVM:
                # LLVM supported RVV 1.0 earlier than GCC (paper Section 7).
                return self.version >= (16,)
            return False
        # AVX2 / AVX-512 / NEON: any vaguely modern mainline compiler.
        if self.family is CompilerFamily.XUANTIE_GCC:
            return False  # RISC-V-only fork
        return True

    def scalar_quality_for(self, kernel: str) -> float:
        return self.scalar_quality.get(kernel, self.default_scalar_quality)

    def saturation_quality_for(self, kernel: str) -> float:
        return self.saturation_quality.get(kernel, 1.0)

    def vectorisation_maturity(self, standard: VectorStandard) -> float:
        """How well-tuned this compiler's auto-vectoriser is for a target.

        1.0 = fully mature (decades of x86 SIMD tuning).  RISC-V RVV
        auto-vectorisation is young; GCC 14 -> 15 brought significant
        improvements, which is part of why the paper insists on 15.2.
        """
        if not self.can_vectorise(standard):
            return 0.0
        if standard in (VectorStandard.AVX2, VectorStandard.AVX512, VectorStandard.NEON):
            return 1.0
        if standard is VectorStandard.RVV_0_7_1:
            return 0.75  # the fork lags mainline optimisation work
        # RVV 1.0 in mainline GCC:
        if self.family is CompilerFamily.GCC:
            return 0.85 if self.version >= (15,) else 0.7
        return 0.85  # LLVM


class VectorisationOutcome:
    """Result of asking "what does `-O3` (+/- vectorisation) do here?".

    Attributes
    ----------
    legal:
        Compiler can target the machine's vector unit at all.
    applied:
        Vectorisation was requested, legal, and the kernel has vectorisable
        loops.
    compute_multiplier:
        Multiplier on the kernel's *compute* rate relative to reference
        scalar code.  > 1 for a win; < 1 for pathologies like CG on RVV.
    latency_multiplier:
        Multiplier on the kernel's latency-bound (gather) cost.  The
        Section 6 pathology hits the memory side hardest: vectorised
        gathers serialise behind mask generation and stripmining control
        flow instead of overlapping like the scalar indexed loads did.
    branch_miss_multiplier:
        Multiplier on the kernel's branch-miss rate (feeds the simulated
        ``perf`` counters that reproduce the Section 6 analysis).
    """

    __slots__ = (
        "legal",
        "applied",
        "compute_multiplier",
        "latency_multiplier",
        "branch_miss_multiplier",
    )

    def __init__(
        self,
        legal: bool,
        applied: bool,
        compute_multiplier: float,
        latency_multiplier: float = 1.0,
        branch_miss_multiplier: float = 1.0,
    ) -> None:
        if compute_multiplier <= 0 or latency_multiplier <= 0:
            raise ValueError("multipliers must be positive")
        self.legal = legal
        self.applied = applied
        self.compute_multiplier = compute_multiplier
        self.latency_multiplier = latency_multiplier
        self.branch_miss_multiplier = branch_miss_multiplier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VectorisationOutcome(legal={self.legal}, applied={self.applied}, "
            f"compute_multiplier={self.compute_multiplier:.3f}, "
            f"latency_multiplier={self.latency_multiplier:.2f}, "
            f"branch_miss_multiplier={self.branch_miss_multiplier:.2f})"
        )


def vectorisation_outcome(
    compiler: CompilerSpec,
    vector_unit: VectorUnit,
    kernel: str,
    vec_fraction: float,
    vectorise: bool,
    gather_pathology: float = 0.0,
) -> VectorisationOutcome:
    """Compute the effect of (not) vectorising ``kernel``.

    Parameters
    ----------
    vec_fraction:
        Fraction of the kernel's compute that sits in vectorisable loops
        (from the kernel signature).
    vectorise:
        Whether vectorisation was requested (``-O3`` with the vectoriser
        on; the paper's "no vector" columns pass ``-fno-tree-vectorize``).
    gather_pathology:
        Kernel-specific penalty strength in [0, 1] for indexed-load loops
        whose RVV gather codegen misbehaves (CG's ``conj_grad`` matvec).
        0 = immune; 1 = full paper-strength pathology.

    The compute multiplier composes Amdahl-style:
    ``1 / ((1 - f) + f / s_eff)`` with ``s_eff`` the ideal lane speedup
    derated by the compiler's maturity for the target.
    """
    if not 0.0 <= vec_fraction <= 1.0:
        raise ValueError("vec_fraction must be in [0, 1]")
    if not 0.0 <= gather_pathology <= 1.0:
        raise ValueError("gather_pathology must be in [0, 1]")

    legal = compiler.can_vectorise(vector_unit.standard)
    if not vectorise or not legal or vec_fraction == 0.0:
        return VectorisationOutcome(legal=legal, applied=False, compute_multiplier=1.0)

    maturity = compiler.vectorisation_maturity(vector_unit.standard)

    if gather_pathology > 0.0 and vector_unit.standard is VectorStandard.RVV_1_0:
        # Section 6: mainline GCC's RVV 1.0 indexed-gather code for CG's
        # sparse matvec doubles branch misses and drops IPC (0.51 vs
        # 0.54), making the vectorised binary ~2.7x slower on one C920v2
        # core.  Wider vector units amortise the stripmining and mask
        # control flow (the paper saw only a *marginal* reduction on the
        # 256-bit SpacemiT X60), hence the width derating.  The RVV 0.7.1
        # XuanTie fork uses a different (unaffected) codegen path.
        width_derate = 1.0 if vector_unit.width_bits <= 128 else 0.15
        strength = gather_pathology * width_derate
        return VectorisationOutcome(
            legal=True,
            applied=True,
            compute_multiplier=1.0 - 0.62 * strength,
            latency_multiplier=1.0 + 1.7 * strength,
            branch_miss_multiplier=1.0 + strength,
        )

    ideal = vector_unit.speedup_over_scalar(element_bits=64)
    s_eff = max(1.0, 1.0 + (ideal - 1.0) * maturity)
    multiplier = 1.0 / ((1.0 - vec_fraction) + vec_fraction / s_eff)
    return VectorisationOutcome(legal=True, applied=True, compute_multiplier=multiplier)
