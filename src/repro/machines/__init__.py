"""Machine models: cores, caches, memory subsystems, topologies, catalog.

The paper explains its results through a small set of architectural
parameters (vector standard/width, cache geometry, memory controllers and
channels, DDR generation, NUMA layout).  This package turns those
parameters into quantitative models the performance engine in
:mod:`repro.core` consumes.
"""

from .cpu import (
    ISA,
    CacheLevel,
    CacheSharing,
    CoreModel,
    VectorStandard,
    VectorUnit,
)
from .ddr import DDRGeneration, DDRSpec, ddr4, ddr5, lpddr4
from .machine import Machine
from .memory import MemorySubsystem, smoothmin
from .topology import CoreLocation, Topology
from .catalog import (
    PAPER_HPC_MACHINES,
    PAPER_RISCV_BOARDS,
    all_machines,
    get_machine,
    machine_names,
)

__all__ = [
    "ISA",
    "CacheLevel",
    "CacheSharing",
    "CoreModel",
    "CoreLocation",
    "DDRGeneration",
    "DDRSpec",
    "Machine",
    "MemorySubsystem",
    "PAPER_HPC_MACHINES",
    "PAPER_RISCV_BOARDS",
    "Topology",
    "VectorStandard",
    "VectorUnit",
    "all_machines",
    "ddr4",
    "ddr5",
    "get_machine",
    "lpddr4",
    "machine_names",
    "smoothmin",
]
