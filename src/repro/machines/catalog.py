"""Catalog of every machine the paper benchmarks.

Parameters come from the paper's Table 5 and Sections 2/3/5 prose, vendor
documentation cited therein, and -- for quantities neither publishes (e.g.
sustained IPC, realistic memory ceilings) -- published microbenchmark
results for the same parts.  Quantities that are *fits* rather than specs
are flagged in comments; the per-kernel residual calibration lives in
:mod:`repro.core.calibration`.

Machines
--------
``sg2044``          Sophon SG2044, 64x C920v2 @ 2.6 GHz, RVV 1.0, 32 MC/ch DDR5
``sg2042``          Sophon SG2042, 64x C920v1 @ 2.0 GHz, RVV 0.7.1, 4 MC/ch DDR4
``epyc7742``        AMD EPYC 7742 (Rome/Zen 2), ARCHER2 node
``skylake8170``     Intel Xeon Platinum 8170 (Skylake-SP)
``thunderx2``       Marvell ThunderX2 CN9980 (Vulcan), Fulhame node
``visionfive2``     StarFive VisionFive V2 (JH7200, SiFive U74)
``visionfive1``     StarFive VisionFive V1 (JH7100, SiFive U74)
``hifive-u740``     SiFive HiFive Unmatched (Freedom U740)
``allwinner-d1``    AllWinner D1 (T-Head C906), 1 GB DRAM
``bananapi-f3``     Banana Pi BPI-F3 (SpacemiT K1, X60 cores, RVV 1.0, 256-bit)
``milkv-jupiter``   Milk-V Jupiter (SpacemiT M1 = higher-clocked K1)
"""

from __future__ import annotations

from functools import lru_cache

from .cpu import (
    ISA,
    CacheLevel,
    CacheSharing,
    CoreModel,
    VectorStandard,
    VectorUnit,
)
from .ddr import ddr4, ddr5, lpddr4
from .machine import Machine
from .memory import MemorySubsystem
from .topology import Topology

__all__ = [
    "get_machine",
    "all_machines",
    "machine_names",
    "PAPER_HPC_MACHINES",
    "PAPER_RISCV_BOARDS",
]

GiB = 2**30
MiB = 2**20
KiB = 2**10


# ----------------------------------------------------------------------
# Core models
# ----------------------------------------------------------------------

C920V2 = CoreModel(
    name="T-Head XuanTie C920v2",
    isa=ISA.RV64GCV,
    decode_width=3,
    issue_width=8,
    load_store_units=2,
    fpu_count=2,
    vector=VectorUnit(VectorStandard.RVV_1_0, 128, 1),
    sustained_ipc=1.45,  # fit: NPB-like code on a 3-decode 12-stage OoO core
    pipeline_stages=12,
)

C920V1 = CoreModel(
    name="T-Head XuanTie C920 (v1)",
    isa=ISA.RV64GCV,
    decode_width=3,
    issue_width=8,
    load_store_units=2,
    fpu_count=2,
    vector=VectorUnit(VectorStandard.RVV_0_7_1, 128, 1),
    sustained_ipc=1.45,  # same microarchitecture family; clock differs
    pipeline_stages=12,
)

ZEN2 = CoreModel(
    name="AMD Zen 2",
    isa=ISA.X86_64,
    decode_width=4,
    issue_width=10,
    load_store_units=3,
    fpu_count=2,
    vector=VectorUnit(VectorStandard.AVX2, 256, 2),  # two AVX-256 ops/cycle
    sustained_ipc=2.2,
    pipeline_stages=19,
)

SKYLAKE_SP = CoreModel(
    name="Intel Skylake-SP",
    isa=ISA.X86_64,
    decode_width=4,
    issue_width=8,
    load_store_units=3,
    fpu_count=2,
    vector=VectorUnit(VectorStandard.AVX512, 512, 2),  # two 512-bit FMA pipes
    sustained_ipc=2.1,
    pipeline_stages=14,
)

VULCAN = CoreModel(
    name="Marvell Vulcan (ThunderX2)",
    isa=ISA.ARMV8,
    decode_width=4,
    issue_width=6,
    load_store_units=2,
    fpu_count=2,
    vector=VectorUnit(VectorStandard.NEON, 128, 2),
    sustained_ipc=1.7,
    pipeline_stages=14,
)

U74 = CoreModel(
    name="SiFive U74",
    isa=ISA.RV64GC,
    decode_width=2,
    issue_width=2,
    load_store_units=1,
    fpu_count=1,
    vector=VectorUnit(VectorStandard.NONE, 0, 1),
    sustained_ipc=0.95,
    out_of_order=False,
    pipeline_stages=8,
)

C906 = CoreModel(
    name="T-Head XuanTie C906",
    isa=ISA.RV64GCV,
    decode_width=1,
    issue_width=1,
    load_store_units=1,
    fpu_count=1,
    # The C906 carries a 128-bit RVV 0.7.1 unit -- unusable from mainline
    # compilers, exactly like the C920v1.
    vector=VectorUnit(VectorStandard.RVV_0_7_1, 128, 1),
    sustained_ipc=0.65,
    out_of_order=False,
    pipeline_stages=5,
)

X60 = CoreModel(
    name="SpacemiT X60",
    isa=ISA.RV64GCV,
    decode_width=2,
    issue_width=2,
    load_store_units=1,
    fpu_count=1,
    # The only non-Sophon core in the study with RVV 1.0; 256-bit and
    # RVA22-compliant per the BPI-F3 datasheet.
    vector=VectorUnit(VectorStandard.RVV_1_0, 256, 1),
    sustained_ipc=1.05,
    out_of_order=False,
    pipeline_stages=9,
)


# ----------------------------------------------------------------------
# Cache hierarchies
# ----------------------------------------------------------------------

def _sophon_caches(l2_mib: int) -> tuple[CacheLevel, ...]:
    """SG204x hierarchy: 64 KB L1, ``l2_mib`` MB per 4-core cluster, 64 MB L3.

    The doubling of the cluster L2 from 1 MB (SG2042) to 2 MB (SG2044) is
    one of the upgrades the paper calls out for the CG benchmark.
    """
    return (
        CacheLevel(1, 64 * KiB, CacheSharing.PRIVATE, latency_cycles=3, associativity=4),
        CacheLevel(2, l2_mib * MiB, CacheSharing.CLUSTER, latency_cycles=24, associativity=16),
        CacheLevel(3, 64 * MiB, CacheSharing.CHIP, latency_cycles=70, associativity=16),
    )


EPYC_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=4, associativity=8),
    CacheLevel(2, 512 * KiB, CacheSharing.PRIVATE, latency_cycles=12, associativity=8),
    # 16 MB of L3 per 4-core CCX.
    CacheLevel(3, 16 * MiB, CacheSharing.CLUSTER, latency_cycles=39, associativity=16),
)

SKYLAKE_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=4, associativity=8),
    CacheLevel(2, 1 * MiB, CacheSharing.PRIVATE, latency_cycles=14, associativity=16),
    # 35.75 MB shared (1.375 MB/core x 26), 11-way like real Skylake-SP.
    CacheLevel(3, 35 * MiB + 768 * KiB, CacheSharing.CHIP, latency_cycles=60, associativity=11),
)

TX2_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=4, associativity=8),
    CacheLevel(2, 256 * KiB, CacheSharing.PRIVATE, latency_cycles=11, associativity=8),
    CacheLevel(3, 32 * MiB, CacheSharing.CHIP, latency_cycles=65, associativity=16),
)

U74_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=3, associativity=4),
    CacheLevel(2, 2 * MiB, CacheSharing.CHIP, latency_cycles=21, associativity=16),
)

C906_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=3, associativity=4),
    CacheLevel(2, 256 * KiB, CacheSharing.CHIP, latency_cycles=20, associativity=8),
)

X60_CACHES = (
    CacheLevel(1, 32 * KiB, CacheSharing.PRIVATE, latency_cycles=3, associativity=8),
    CacheLevel(2, 512 * KiB, CacheSharing.CLUSTER, latency_cycles=18, associativity=8),
)


# ----------------------------------------------------------------------
# Machines
# ----------------------------------------------------------------------

def _build_catalog() -> dict[str, Machine]:
    catalog: dict[str, Machine] = {}

    def add(machine: Machine) -> None:
        if machine.name in catalog:
            raise ValueError(f"duplicate machine name {machine.name!r}")
        catalog[machine.name] = machine

    add(
        Machine(
            name="sg2044",
            label="Sophon SG2044",
            part="SG2044",
            core=C920V2,
            clock_hz=2.6e9,  # measured on the paper's test system ([11] says 2.8)
            topology=Topology(total_cores=64, cores_per_cluster=4, numa_regions=1),
            caches=_sophon_caches(l2_mib=2),
            memory=MemorySubsystem(
                ddr=ddr5(4266),
                controllers=32,
                channels=32,
                capacity_bytes=128 * GiB,
                # Fit: Figure 1 -- per-core slope matches the SG2042 up to
                # 8 cores; the chip ceiling is the measured plateau, a
                # little over 3x the SG2042's (not the ~450 GB/s JEDEC
                # figure, which no controller sustains).
                per_core_stream_bw_gbs=5.0,
                sustained_bw_override_gbs=138.0,
                core_mlp=10.0,
                extra_latency_ns=25.0,
                # Fit: Figure 2 -- IS keeps scaling to 64 cores at ~75%
                # efficiency, which needs a random-access ceiling around
                # 50x the single-core demand.
                random_rate_scale=2.4,
            ),
            barrier_base_ns=500.0,
            barrier_log_coeff_ns=300.0,
            os_noise_coeff=0.004,
            notes="single NUMA region; PCIe Gen5; Linux 6.16 mainline",
        )
    )

    add(
        Machine(
            name="sg2042",
            label="Sophon SG2042",
            part="SG2042",
            core=C920V1,
            clock_hz=2.0e9,
            topology=Topology(total_cores=64, cores_per_cluster=4, numa_regions=1),
            caches=_sophon_caches(l2_mib=1),
            memory=MemorySubsystem(
                ddr=ddr4(3200),
                controllers=4,
                channels=4,
                capacity_bytes=128 * GiB,
                # Fit: Figure 1 -- bandwidth plateaus just beyond 8 cores;
                # ceiling is the measured ~40 GB/s from [3], far below the
                # 80 GB/s JEDEC sustained figure.
                per_core_stream_bw_gbs=5.0,
                sustained_bw_override_gbs=46.0,
                core_mlp=8.5,
                extra_latency_ns=25.0,
                # Fit: Figure 2 -- IS plateaus at ~16 cores (~10x a single
                # core), i.e. the random ceiling is ~10x one core's demand.
                random_rate_scale=2.2,
                # The SG2042's crossbar/L3 path is its documented weak
                # point ([2], [3]): random traffic that *hits* the shared
                # L3 still crawls, which is what pins IS at ~16 cores.
                llc_random_boost=1.5,
            ),
            barrier_base_ns=600.0,
            barrier_log_coeff_ns=350.0,
            os_noise_coeff=0.028,
            notes="4.91x slower than SG2044 on 64-core IS (Table 4)",
        )
    )

    add(
        Machine(
            name="epyc7742",
            label="AMD EPYC 7742",
            part="EPYC 7742",
            core=ZEN2,
            clock_hz=2.25e9,
            topology=Topology(total_cores=64, cores_per_cluster=4, numa_regions=4),
            caches=EPYC_CACHES,
            memory=MemorySubsystem(
                ddr=ddr4(3200),
                controllers=8,
                channels=8,
                capacity_bytes=256 * GiB,
                per_core_stream_bw_gbs=13.0,
                sustained_bw_override_gbs=140.0,  # measured STREAM on Rome nodes
                core_mlp=22.0,
                numa_regions=4,
                extra_latency_ns=40.0,  # IF fabric hop
                random_rate_scale=8.0,
            ),
            barrier_base_ns=350.0,
            barrier_log_coeff_ns=200.0,
            os_noise_coeff=0.008,
            numa_penalty=0.82,
            notes="ARCHER2 node, SMT disabled, GCC 11.2",
        )
    )

    add(
        Machine(
            name="skylake8170",
            label="Intel Skylake",
            part="Xeon Platinum 8170",
            core=SKYLAKE_SP,
            clock_hz=2.1e9,
            topology=Topology(total_cores=26, cores_per_cluster=1, numa_regions=1),
            caches=SKYLAKE_CACHES,
            memory=MemorySubsystem(
                ddr=ddr4(2666),
                controllers=2,
                channels=6,
                capacity_bytes=192 * GiB,
                per_core_stream_bw_gbs=12.0,
                sustained_bw_override_gbs=90.0,
                core_mlp=30.0,
                extra_latency_ns=30.0,
                random_rate_scale=10.0,
            ),
            barrier_base_ns=300.0,
            barrier_log_coeff_ns=180.0,
            os_noise_coeff=0.010,
            notes="also the profiling platform for Table 1; GCC 8.4",
        )
    )

    add(
        Machine(
            name="thunderx2",
            label="Marvell ThunderX2",
            part="CN9980",
            core=VULCAN,
            clock_hz=2.0e9,
            topology=Topology(total_cores=32, cores_per_cluster=1, numa_regions=1),
            caches=TX2_CACHES,
            memory=MemorySubsystem(
                ddr=ddr4(2666),
                controllers=2,
                channels=8,
                capacity_bytes=128 * GiB,
                per_core_stream_bw_gbs=10.0,
                sustained_bw_override_gbs=110.0,
                core_mlp=16.0,
                extra_latency_ns=35.0,
                random_rate_scale=3.5,
            ),
            barrier_base_ns=400.0,
            barrier_log_coeff_ns=250.0,
            os_noise_coeff=0.012,
            notes="Fulhame (HPE Apollo 70), SMT disabled, GCC 9.2",
        )
    )

    # ------------------------------------------------------------------
    # Small commodity RISC-V boards (Section 3, Table 2)
    # ------------------------------------------------------------------

    add(
        Machine(
            name="visionfive2",
            label="VisionFive V2",
            part="JH7200 (U74)",
            core=U74,
            clock_hz=1.5e9,
            topology=Topology(total_cores=4, cores_per_cluster=4, numa_regions=1),
            caches=U74_CACHES,
            memory=MemorySubsystem(
                ddr=lpddr4(2800),
                controllers=1,
                channels=2,
                capacity_bytes=8 * GiB,
                per_core_stream_bw_gbs=2.2,
                sustained_bw_override_gbs=10.0,
                core_mlp=4.0,
                extra_latency_ns=60.0,
            ),
            barrier_base_ns=900.0,
            barrier_log_coeff_ns=500.0,
        )
    )

    add(
        Machine(
            name="visionfive1",
            label="VisionFive V1",
            part="JH7100 (U74)",
            core=U74,
            clock_hz=1.0e9,
            topology=Topology(total_cores=2, cores_per_cluster=2, numa_regions=1),
            caches=U74_CACHES,
            memory=MemorySubsystem(
                ddr=lpddr4(2800),
                controllers=1,
                channels=1,
                capacity_bytes=8 * GiB,
                # The JH7100's DRAM path is notoriously slow (uncached
                # coherence workarounds), which is why the V1 lands far
                # below the V2 in Table 2 despite the same U74 core.
                per_core_stream_bw_gbs=0.9,
                sustained_bw_override_gbs=2.8,
                core_mlp=2.5,
                extra_latency_ns=140.0,
            ),
            barrier_base_ns=1200.0,
            barrier_log_coeff_ns=600.0,
        )
    )

    add(
        Machine(
            name="hifive-u740",
            label="SiFive U740",
            part="Freedom U740",
            core=U74,
            clock_hz=1.2e9,
            topology=Topology(total_cores=4, cores_per_cluster=4, numa_regions=1),
            caches=U74_CACHES,
            memory=MemorySubsystem(
                ddr=ddr4(2400),
                controllers=1,
                channels=1,
                capacity_bytes=16 * GiB,
                per_core_stream_bw_gbs=1.3,
                sustained_bw_override_gbs=4.2,
                core_mlp=3.0,
                extra_latency_ns=100.0,
            ),
            barrier_base_ns=1000.0,
            barrier_log_coeff_ns=550.0,
            notes="HiFive Unmatched board",
        )
    )

    add(
        Machine(
            name="allwinner-d1",
            label="All Winner D1",
            part="D1 (C906)",
            core=C906,
            clock_hz=1.0e9,
            topology=Topology(total_cores=1, cores_per_cluster=1, numa_regions=1),
            caches=C906_CACHES,
            memory=MemorySubsystem(
                ddr=lpddr4(1600),
                controllers=1,
                channels=1,
                # 1 GB only: FT class B does not fit -- the paper's DNR.
                capacity_bytes=1 * GiB,
                per_core_stream_bw_gbs=1.4,
                sustained_bw_override_gbs=3.2,
                core_mlp=2.0,
                extra_latency_ns=110.0,
            ),
            barrier_base_ns=1500.0,
            barrier_log_coeff_ns=700.0,
        )
    )

    def spacemit_board(name: str, label: str, part: str, clock_hz: float) -> Machine:
        return Machine(
            name=name,
            label=label,
            part=part,
            core=X60,
            clock_hz=clock_hz,
            topology=Topology(total_cores=8, cores_per_cluster=4, numa_regions=1),
            caches=X60_CACHES,
            memory=MemorySubsystem(
                ddr=lpddr4(2666),
                controllers=1,
                channels=2,
                capacity_bytes=4 * GiB,
                per_core_stream_bw_gbs=2.4,
                sustained_bw_override_gbs=10.5,
                core_mlp=4.5,
                extra_latency_ns=70.0,
            ),
            barrier_base_ns=800.0,
            barrier_log_coeff_ns=450.0,
        )

    # The M1 is a higher-clocked, better-cooled K1 (same X60 core), hence
    # the Jupiter's consistent small margin over the BPI-F3 in Table 2.
    add(spacemit_board("bananapi-f3", "Banana Pi", "SpacemiT K1", 1.6e9))
    add(spacemit_board("milkv-jupiter", "Milk-V Jupyter", "SpacemiT M1", 1.8e9))

    return catalog


@lru_cache(maxsize=1)
def _catalog() -> dict[str, Machine]:
    return _build_catalog()


@lru_cache(maxsize=None)
def get_machine(name: str) -> Machine:
    """Look up a machine by its catalog name (see module docstring).

    Memoised: every harness layer resolves machines by name on each call,
    so the lookup (and its KeyError formatting path) stays off sweeps'
    hot path.  Machines are frozen dataclasses, safe to share.
    """
    try:
        return _catalog()[name]
    except KeyError:
        known = ", ".join(sorted(_catalog()))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None


def all_machines() -> list[Machine]:
    """Every machine in the catalog, in definition order."""
    return list(_catalog().values())


def machine_names() -> list[str]:
    return list(_catalog().keys())


#: The five server-class CPUs compared in Section 5 (Table 5, Figures 2-6).
PAPER_HPC_MACHINES = ("epyc7742", "skylake8170", "thunderx2", "sg2042", "sg2044")

#: The single-core RISC-V comparison set of Section 3 (Table 2).
PAPER_RISCV_BOARDS = (
    "sg2044",
    "visionfive2",
    "visionfive1",
    "hifive-u740",
    "allwinner-d1",
    "bananapi-f3",
    "milkv-jupiter",
)
