"""Chip topology: clusters, NUMA regions, and core enumeration.

The Sophon parts organise 64 cores as 16 clusters of four XuanTie cores
sharing an L2; the EPYC 7742 groups 4-core CCXs sharing an L3 slice across
four NUMA regions.  Thread-placement policies (``OMP_PROC_BIND`` /
``OMP_PLACES``, Section 5.2 of the paper) operate on this topology, and the
cache model needs to know how many active threads share each cache
instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Topology", "CoreLocation"]


@dataclass(frozen=True)
class CoreLocation:
    """Where one logical core sits on the die."""

    core_id: int
    cluster_id: int
    numa_id: int


@dataclass(frozen=True)
class Topology:
    """Socket topology.

    Parameters
    ----------
    total_cores:
        Physical cores (SMT is disabled throughout the paper).
    cores_per_cluster:
        Cores sharing one cluster-level cache instance (4 on the Sophons
        and on EPYC CCXs; 1 where L2 is private).
    numa_regions:
        NUMA domains; cores are split evenly between them (EPYC 7742: 4 x
        16 cores; everything else in the paper is a single region).
    """

    total_cores: int
    cores_per_cluster: int = 1
    numa_regions: int = 1

    def __post_init__(self) -> None:
        if self.total_cores < 1:
            raise ValueError("total_cores must be >= 1")
        if self.cores_per_cluster < 1:
            raise ValueError("cores_per_cluster must be >= 1")
        if self.total_cores % self.cores_per_cluster != 0:
            raise ValueError(
                f"{self.total_cores} cores do not divide into clusters of "
                f"{self.cores_per_cluster}"
            )
        if self.numa_regions < 1:
            raise ValueError("numa_regions must be >= 1")
        if self.total_cores % self.numa_regions != 0:
            raise ValueError(
                f"{self.total_cores} cores do not divide into "
                f"{self.numa_regions} NUMA regions"
            )
        cores_per_numa = self.total_cores // self.numa_regions
        if cores_per_numa % self.cores_per_cluster != 0:
            raise ValueError("clusters must not straddle NUMA regions")

    @property
    def n_clusters(self) -> int:
        return self.total_cores // self.cores_per_cluster

    @property
    def cores_per_numa(self) -> int:
        return self.total_cores // self.numa_regions

    def location(self, core_id: int) -> CoreLocation:
        """Topological coordinates of a core (cores are cluster-major)."""
        if not 0 <= core_id < self.total_cores:
            raise ValueError(f"core_id {core_id} out of range 0..{self.total_cores - 1}")
        return CoreLocation(
            core_id=core_id,
            cluster_id=core_id // self.cores_per_cluster,
            numa_id=core_id // self.cores_per_numa,
        )

    def iter_cores(self) -> Iterator[CoreLocation]:
        for cid in range(self.total_cores):
            yield self.location(cid)

    # ------------------------------------------------------------------
    # Placement helpers used by repro.openmp.affinity
    # ------------------------------------------------------------------

    def compact_placement(self, n_threads: int) -> list[int]:
        """Fill clusters in order (``OMP_PROC_BIND=close``)."""
        self._check_nthreads(n_threads)
        return list(range(n_threads))

    def spread_placement(self, n_threads: int) -> list[int]:
        """Spread threads as widely as possible (``OMP_PROC_BIND=spread``).

        Threads are assigned round-robin over clusters, so cluster-level
        caches and memory controllers are shared as little as possible.
        """
        self._check_nthreads(n_threads)
        order: list[int] = []
        for offset in range(self.cores_per_cluster):
            for cluster in range(self.n_clusters):
                order.append(cluster * self.cores_per_cluster + offset)
        return order[:n_threads]

    def threads_per_cluster(self, placement: Sequence[int]) -> list[int]:
        """How many of the placed threads land in each cluster."""
        counts = [0] * self.n_clusters
        for core_id in placement:
            counts[self.location(core_id).cluster_id] += 1
        return counts

    def max_cluster_occupancy(self, placement: Sequence[int]) -> int:
        """Worst-case threads sharing one cluster cache under a placement."""
        counts = self.threads_per_cluster(placement)
        return max(counts) if counts else 0

    def numa_spread(self, placement: Sequence[int]) -> list[int]:
        """Thread count per NUMA region under a placement."""
        counts = [0] * self.numa_regions
        for core_id in placement:
            counts[self.location(core_id).numa_id] += 1
        return counts

    def _check_nthreads(self, n_threads: int) -> None:
        if not 1 <= n_threads <= self.total_cores:
            raise ValueError(
                f"n_threads {n_threads} out of range 1..{self.total_cores}"
            )
