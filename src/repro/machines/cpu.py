"""Core, cache and vector-unit descriptors for the machine catalog.

These dataclasses carry the microarchitectural parameters the paper uses to
explain its results: pipeline issue capability, vector width and standard
version (RVV 0.7.1 vs 1.0, NEON, AVX2, AVX-512), FPU count, and the
L1/L2/L3 geometry including how caches are shared (private, per 4-core
cluster, chip-wide).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ISA",
    "VectorStandard",
    "VectorUnit",
    "CacheLevel",
    "CacheSharing",
    "CoreModel",
]


class ISA(enum.Enum):
    """Instruction-set architectures present in the paper's Table 5."""

    RV64GC = "RV64GC"
    RV64GCV = "RV64GCV"
    X86_64 = "x86-64"
    ARMV8 = "ARMv8.1"

    @property
    def is_riscv(self) -> bool:
        return self in (ISA.RV64GC, ISA.RV64GCV)


class VectorStandard(enum.Enum):
    """Vector/SIMD extension families, including the RVV version split that
    determines mainline-compiler support (the paper's central compiler
    story: RVV 1.0 is targetable by mainline GCC >= 14, RVV 0.7.1 only by
    T-Head's XuanTie GCC fork)."""

    NONE = "none"
    RVV_0_7_1 = "RVV v0.7.1"
    RVV_1_0 = "RVV v1.0.0"
    NEON = "NEON"
    AVX2 = "AVX2"
    AVX512 = "AVX512"

    @property
    def mainline_compiler_support(self) -> bool:
        """Whether mainline GCC/LLVM can auto-vectorise for this target."""
        return self not in (VectorStandard.RVV_0_7_1, VectorStandard.NONE)


@dataclass(frozen=True)
class VectorUnit:
    """A core's SIMD/vector capability.

    Parameters
    ----------
    standard:
        Which vector extension (and version) the unit implements.
    width_bits:
        Register width in bits (128 for C920 RVV and NEON, 256 for AVX2 and
        SpacemiT X60, 512 for Skylake AVX-512).
    issue_per_cycle:
        Vector arithmetic operations issued per cycle (EPYC 7742 executes
        two AVX-256 ops/cycle; Skylake has two 512-bit FMA pipes on the
        8170).
    """

    standard: VectorStandard
    width_bits: int
    issue_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.standard is VectorStandard.NONE:
            if self.width_bits != 0:
                raise ValueError("width_bits must be 0 when there is no vector unit")
            return
        if self.width_bits not in (64, 128, 256, 512, 1024):
            raise ValueError(f"implausible vector width {self.width_bits}")
        if self.issue_per_cycle < 1:
            raise ValueError("issue_per_cycle must be >= 1")

    @property
    def doubles_per_cycle(self) -> float:
        """Peak 64-bit lanes retired per cycle (0 when no vector unit)."""
        if self.standard is VectorStandard.NONE:
            return 0.0
        return (self.width_bits / 64.0) * self.issue_per_cycle

    def speedup_over_scalar(self, element_bits: int = 64) -> float:
        """Ideal SIMD speedup over one scalar lane for a given element size."""
        if self.standard is VectorStandard.NONE:
            return 1.0
        return max(1.0, (self.width_bits / element_bits) * self.issue_per_cycle)


NO_VECTOR = VectorUnit(VectorStandard.NONE, 0, 1)


class CacheSharing(enum.Enum):
    """How a cache level is shared between cores."""

    PRIVATE = "private"
    CLUSTER = "cluster"  # shared by a cluster (e.g. 4 C920 cores / 2 MB L2)
    CHIP = "chip"  # shared by every core on the die


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    ``size_bytes`` is the capacity of one *instance* of this level (one
    private L1, one cluster L2, the whole chip L3 ...), and ``sharing``
    says how many cores see that instance.
    """

    level: int
    size_bytes: int
    sharing: CacheSharing
    latency_cycles: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 3):
            raise ValueError(f"cache level must be 1..3, got {self.level}")
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.latency_cycles <= 0:
            raise ValueError("cache latency must be positive")
        if self.line_bytes not in (32, 64, 128):
            raise ValueError(f"unusual cache line size {self.line_bytes}")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        n_sets = self.size_bytes / (self.line_bytes * self.associativity)
        if n_sets != int(n_sets):
            raise ValueError(
                f"L{self.level}: size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def capacity_per_core(self, cores_sharing: int) -> float:
        """Effective bytes of this level available to one of N sharers."""
        if cores_sharing < 1:
            raise ValueError("cores_sharing must be >= 1")
        return self.size_bytes / cores_sharing


@dataclass(frozen=True)
class CoreModel:
    """A single CPU core's execution resources.

    ``sustained_ipc`` is the calibration anchor for scalar throughput: the
    average instructions-per-cycle the core sustains on NPB-like code.  It
    folds together issue width, out-of-order depth and branch prediction
    quality; the catalog sets it from published microbenchmarks and the
    paper's single-core anchors (see ``repro.core.calibration`` for the
    per-kernel residual factors).
    """

    name: str
    isa: ISA
    decode_width: int
    issue_width: int
    load_store_units: int
    fpu_count: int
    vector: VectorUnit
    sustained_ipc: float
    out_of_order: bool = True
    pipeline_stages: int = 12

    def __post_init__(self) -> None:
        if self.decode_width < 1 or self.issue_width < 1:
            raise ValueError("decode/issue width must be >= 1")
        if self.sustained_ipc <= 0:
            raise ValueError("sustained_ipc must be positive")
        if self.sustained_ipc > self.issue_width:
            raise ValueError(
                f"{self.name}: sustained IPC {self.sustained_ipc} exceeds "
                f"issue width {self.issue_width}"
            )
        if self.fpu_count < 0 or self.load_store_units < 0:
            raise ValueError("unit counts must be non-negative")

    @property
    def has_vector(self) -> bool:
        return self.vector.standard is not VectorStandard.NONE

    def scalar_flops_per_cycle(self) -> float:
        """Sustained scalar double-precision flops per cycle."""
        # One FP op per FPU per cycle, scaled by how well the front end
        # keeps the pipes fed on real code.
        return self.fpu_count * min(1.0, self.sustained_ipc / 2.0 + 0.25)

    def peak_vector_flops_per_cycle(self) -> float:
        """Peak 64-bit vector flops per cycle (0 without a vector unit)."""
        return self.vector.doubles_per_cycle
