"""The :class:`Machine` aggregate: one socket the paper benchmarks.

A machine bundles a core model, clock, topology, cache hierarchy and memory
subsystem, plus the handful of whole-chip parameters (barrier cost,
parallel-runtime overhead) that the multi-core scaling model needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .cpu import CacheLevel, CacheSharing, CoreModel
from .memory import MemorySubsystem
from .topology import Topology

__all__ = ["Machine"]


@dataclass(frozen=True)
class Machine:
    """One benchmarked socket.

    Parameters
    ----------
    name:
        Short identifier used throughout the harness (``"sg2044"``).
    label:
        Display name as the paper prints it (``"Sophon SG2044"``).
    part:
        Part number for the Table 5 renderer.
    core:
        The per-core microarchitecture model.
    clock_hz:
        Base clock.  The paper measured 2.6 GHz on its SG2044 test system
        (SOPHGO have not published a figure; [11] suggests 2.8 GHz).
    topology:
        Cluster/NUMA layout.
    caches:
        Data-cache hierarchy, L1 first.
    memory:
        Off-chip memory subsystem.
    barrier_base_ns / barrier_log_coeff_ns:
        OpenMP barrier cost model ``t = base + coeff * log2(n)``;
        tree-barrier shaped, calibrated per interconnect quality.
    smt:
        Hardware threads per core (the paper disables SMT everywhere, but
        the catalog records it for completeness).
    """

    name: str
    label: str
    part: str
    core: CoreModel
    clock_hz: float
    topology: Topology
    caches: tuple[CacheLevel, ...]
    memory: MemorySubsystem
    barrier_base_ns: float = 400.0
    barrier_log_coeff_ns: float = 250.0
    os_noise_coeff: float = 0.004
    numa_penalty: float = 1.0
    smt: int = 1
    notes: str = ""

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not self.caches:
            raise ValueError("a machine needs at least one cache level")
        levels = [c.level for c in self.caches]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ValueError("caches must be listed L1..L3 without duplicates")
        if self.smt < 1:
            raise ValueError("smt must be >= 1")
        if self.os_noise_coeff < 0:
            raise ValueError("os_noise_coeff must be non-negative")
        if not 0.0 < self.numa_penalty <= 1.0:
            raise ValueError("numa_penalty must be in (0, 1]")
        if self.topology.numa_regions != self.memory.numa_regions:
            raise ValueError(
                f"{self.name}: topology has {self.topology.numa_regions} NUMA "
                f"regions but memory model has {self.memory.numa_regions}"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return self.topology.total_cores

    @property
    def clock_ghz(self) -> float:
        return self.clock_hz / 1e9

    def cache(self, level: int) -> CacheLevel | None:
        """Cache descriptor for a level, or ``None`` if absent."""
        for c in self.caches:
            if c.level == level:
                return c
        return None

    @property
    def last_level_cache(self) -> CacheLevel:
        return self.caches[-1]

    def cores_sharing(self, cache: CacheLevel, active_threads: int = 0) -> int:
        """How many cores share one instance of ``cache``.

        With ``active_threads`` given, returns the sharing degree under a
        compact placement of that many threads (used to decide whether a
        kernel's per-thread working set still fits).
        """
        if cache.sharing is CacheSharing.PRIVATE:
            return 1
        if cache.sharing is CacheSharing.CLUSTER:
            full = self.topology.cores_per_cluster
        else:
            full = self.n_cores
        if active_threads <= 0:
            return full
        return min(full, max(1, active_threads))

    def effective_cache_bytes_per_thread(self, n_threads: int) -> float:
        """Total cache capacity one of ``n_threads`` effectively owns.

        Sums each level's instance capacity divided by the number of active
        threads sharing it under a compact placement.  This is the quantity
        the working-set model compares against (the paper invokes it when
        attributing CG gains to the SG2044's doubled 2 MB cluster L2).
        """
        if not 1 <= n_threads <= self.n_cores:
            raise ValueError(f"n_threads {n_threads} out of range")
        total = 0.0
        for cache in self.caches:
            sharers = self.cores_sharing(cache, active_threads=n_threads)
            if cache.sharing is CacheSharing.CLUSTER:
                # Compact placement: threads fill clusters in order.
                sharers = min(self.topology.cores_per_cluster, n_threads)
            elif cache.sharing is CacheSharing.CHIP:
                sharers = n_threads
            else:
                sharers = 1
            total += cache.size_bytes / sharers
        return total

    def effective_cache_bytes_per_thread_grid(self, ns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`effective_cache_bytes_per_thread` over ``ns``.

        Elementwise identical to the scalar method; this is the form the
        batched performance model evaluates whole thread sweeps with.
        """
        if ns.size and not (1 <= int(ns.min()) and int(ns.max()) <= self.n_cores):
            raise ValueError(f"thread counts {ns} out of range for {self.name}")
        total = np.zeros(ns.shape, dtype=np.float64)
        for cache in self.caches:
            if cache.sharing is CacheSharing.CLUSTER:
                sharers = np.minimum(self.topology.cores_per_cluster, ns)
            elif cache.sharing is CacheSharing.CHIP:
                sharers = ns
            else:
                sharers = np.ones_like(ns)
            total += cache.size_bytes / sharers
        return total

    # ------------------------------------------------------------------
    # Whole-chip rate helpers used by the performance model
    # ------------------------------------------------------------------

    def scalar_rate_per_core(self) -> float:
        """Sustained scalar instructions per second for one core."""
        return self.core.sustained_ipc * self.clock_hz

    def barrier_cost_s(self, n_threads: int) -> float:
        """Cost of one OpenMP barrier across ``n_threads`` (seconds)."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_threads == 1:
            return 0.0
        ns = self.barrier_base_ns + self.barrier_log_coeff_ns * math.log2(n_threads)
        return ns * 1e-9

    def barrier_cost_s_grid(self, ns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`barrier_cost_s` over an array of thread counts."""
        if ns.size and int(ns.min()) < 1:
            raise ValueError("n_threads must be >= 1")
        nsf = ns.astype(np.float64)
        cost = (self.barrier_base_ns + self.barrier_log_coeff_ns * np.log2(nsf)) * 1e-9
        return np.where(ns == 1, 0.0, cost)

    def parallel_efficiency(self, n_threads: int, numa_sensitive: bool = True) -> float:
        """Machine-side thread-scaling derating.

        ``os_noise_coeff`` models scheduler noise and runtime overhead
        growing with thread count (the SG2042 loses ~17% of EP's ideal
        scaling at 64 cores this way).  ``numa_penalty`` applies once a
        run spans more than one NUMA region (remote-touch pages under the
        NPB OpenMP codes' untuned first-touch behaviour -- relevant only
        to the four-region EPYC 7742 here) -- but only to
        ``numa_sensitive`` workloads: a kernel with no DRAM traffic (EP)
        has no remote pages to touch, which is why the EPYC keeps its EP
        lead all the way to 64 cores in the paper's Figure 4.
        """
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if n_threads == 1:
            return 1.0
        eff = max(0.4, 1.0 - self.os_noise_coeff * math.log2(n_threads))
        if (
            numa_sensitive
            and self.topology.numa_regions > 1
            and n_threads > self.topology.cores_per_numa
        ):
            eff *= self.numa_penalty
        return eff

    def parallel_efficiency_grid(
        self, ns: np.ndarray, numa_sensitive: bool = True
    ) -> np.ndarray:
        """Vectorised :meth:`parallel_efficiency` over an array of counts."""
        if ns.size and int(ns.min()) < 1:
            raise ValueError("n_threads must be >= 1")
        nsf = ns.astype(np.float64)
        eff = np.maximum(0.4, 1.0 - self.os_noise_coeff * np.log2(nsf))
        if numa_sensitive and self.topology.numa_regions > 1:
            eff = np.where(
                ns > self.topology.cores_per_numa, eff * self.numa_penalty, eff
            )
        return np.where(ns == 1, 1.0, eff)

    def validate_thread_count(self, n_threads: int) -> None:
        if not 1 <= n_threads <= self.n_cores:
            raise ValueError(
                f"{self.name} has {self.n_cores} cores; cannot run "
                f"{n_threads} threads (SMT is disabled per the paper)"
            )

    def describe(self) -> dict[str, str]:
        """Row for the Table 5 renderer."""
        return {
            "CPU": self.label,
            "ISA": self.core.isa.value,
            "Part": self.part,
            "Base clock": f"{self.clock_ghz:.2f} GHz",
            "Cores": str(self.n_cores),
            "Vector": self.core.vector.standard.value,
            "Memory": self.memory.describe(),
        }
