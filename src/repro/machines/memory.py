"""Memory-subsystem model: controllers, channels, and saturation curves.

This module carries the paper's central explanatory mechanism.  Section 5.2
concludes that the SG2042's four controllers/channels saturate beyond a
cores-to-channel ratio of ~4:1 while the SG2044's 32 channels comfortably
handle its maximum 2:1 ratio; Figure 1 shows STREAM copy bandwidth scaling
with cores on the SG2044 but plateauing at ~8 cores on the SG2042.  We model
both effects with a *smooth-min* saturation law:

``BW(n) = smoothmin(n * per_core_bw, total_sustained_bw)``

and, for latency-bound (random access) traffic such as the IS benchmark:

``R(n) = smoothmin(n * mlp / latency, channels * per_channel_random_rate)``

The smooth-min function behaves linearly while demand is far below the
cap and bends onto the cap as demand approaches it, with a sharpness knob
controlling how abrupt the knee is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ddr import DDRSpec

__all__ = [
    "smoothmin",
    "smoothmin_grid",
    "MemorySubsystem",
]


def smoothmin(demand: float, cap: float, sharpness: float = 4.0) -> float:
    """Smoothly saturating minimum of ``demand`` and ``cap``.

    Uses the p-norm form ``demand / (1 + (demand/cap)^p)^(1/p)`` which is
    ~= ``demand`` when ``demand << cap``, ~= ``cap`` when ``demand >> cap``,
    and approaches ``min`` exactly as ``sharpness -> inf``.

    Parameters
    ----------
    demand:
        Aggregate requested throughput (any unit).
    cap:
        Hard resource ceiling, same unit.
    sharpness:
        Knee sharpness ``p >= 1``.  4 reproduces the gentle roll-off seen
        in STREAM curves; 8+ looks like a hard clamp.
    """
    if demand < 0 or cap <= 0:
        raise ValueError(f"demand must be >= 0 and cap > 0 (got {demand}, {cap})")
    if sharpness < 1.0:
        raise ValueError("sharpness must be >= 1")
    if demand == 0.0:
        return 0.0
    ratio = demand / cap
    return demand / (1.0 + ratio**sharpness) ** (1.0 / sharpness)


def smoothmin_grid(
    demand: np.ndarray, cap: np.ndarray | float, sharpness: float = 4.0
) -> np.ndarray:
    """Vectorised :func:`smoothmin` over arrays of demands (and caps).

    ``demand`` and ``cap`` broadcast against each other; the result is
    elementwise identical to calling the scalar form point by point, which
    is what lets the batched performance model match per-call prediction
    bit for bit.
    """
    demand = np.asarray(demand, dtype=np.float64)
    cap = np.asarray(cap, dtype=np.float64)
    if np.any(demand < 0) or np.any(cap <= 0):
        raise ValueError("demand must be >= 0 and cap > 0")
    if sharpness < 1.0:
        raise ValueError("sharpness must be >= 1")
    ratio = demand / cap
    return demand / (1.0 + ratio**sharpness) ** (1.0 / sharpness)


@dataclass(frozen=True)
class MemorySubsystem:
    """Off-chip memory of one socket.

    Parameters
    ----------
    ddr:
        Per-channel DRAM specification.
    controllers / channels:
        Counts straight from the paper (SG2042: 4/4, SG2044: 32/32,
        EPYC 7742: 8/8, Skylake 8170: 2/6, ThunderX2: 2/8).
    capacity_bytes:
        Installed DRAM (matters for "DNR" cases -- the AllWinner D1's 1 GB
        cannot hold FT class B).
    per_core_stream_bw_gbs:
        Bandwidth one core can extract on a streaming kernel, limited by
        its load/store units and outstanding-miss queue -- *not* by DRAM.
        This is the calibrated slope of the left side of Figure 1.
    core_mlp:
        Memory-level parallelism: outstanding cache-line misses one core
        sustains on a random-access workload (MSHR count effectively used).
    numa_regions:
        NUMA domains (EPYC 7742: 4; SG2044 is a single region -- an
        explicit upgrade over the SG2042 per SOPHGO engineers).
    extra_latency_ns:
        Interconnect/fabric latency added on top of the DRAM core latency
        (mesh/ring hop costs; higher for many-core meshes).
    saturation_sharpness:
        Knee sharpness for the saturation curves; lower values bend
        earlier, which is how the SG2042's early plateau is expressed.
    """

    ddr: DDRSpec
    controllers: int
    channels: int
    capacity_bytes: int
    per_core_stream_bw_gbs: float
    core_mlp: float = 10.0
    numa_regions: int = 1
    extra_latency_ns: float = 25.0
    saturation_sharpness: float = 4.0
    random_rate_scale: float = 1.0
    sustained_bw_override_gbs: float | None = None
    llc_random_boost: float = 3.0

    def __post_init__(self) -> None:
        if self.controllers < 1 or self.channels < 1:
            raise ValueError("controllers/channels must be >= 1")
        if self.channels % self.controllers != 0 and self.controllers % self.channels != 0:
            # Real parts pair them in simple integer ratios.
            raise ValueError(
                f"channels ({self.channels}) and controllers ({self.controllers}) "
                "must divide evenly"
            )
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.per_core_stream_bw_gbs <= 0:
            raise ValueError("per-core stream bandwidth must be positive")
        if self.core_mlp < 1:
            raise ValueError("core_mlp must be >= 1")
        if self.numa_regions < 1:
            raise ValueError("numa_regions must be >= 1")
        if self.sustained_bw_override_gbs is not None and self.sustained_bw_override_gbs <= 0:
            raise ValueError("sustained_bw_override_gbs must be positive when set")
        if self.llc_random_boost < 1.0:
            raise ValueError("llc_random_boost must be >= 1 (LLC is faster than DRAM)")

    # ------------------------------------------------------------------
    # Bandwidth (streaming) model
    # ------------------------------------------------------------------

    @property
    def peak_bw_gbs(self) -> float:
        """Theoretical peak bandwidth across all channels (GB/s)."""
        return self.channels * self.ddr.channel_peak_bw_gbs

    @property
    def sustained_bw_gbs(self) -> float:
        """Sustained streaming ceiling across all channels (GB/s).

        Defaults to the JEDEC-derived figure, but real controllers -- the
        SG2042's most famously -- deliver far less, so the catalog may pin
        the measured ceiling (e.g. the Figure 1 plateau) instead.
        """
        if self.sustained_bw_override_gbs is not None:
            return self.sustained_bw_override_gbs
        return self.channels * self.ddr.channel_sustained_bw_gbs

    def stream_bw_gbs(self, n_cores: int) -> float:
        """STREAM-style sustainable bandwidth with ``n_cores`` active.

        This is the function plotted in the paper's Figure 1: linear in
        ``n`` while cores are the bottleneck, saturating at the channel
        ceiling once demand exceeds what the DRAM can deliver.
        """
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        demand = n_cores * self.per_core_stream_bw_gbs
        return smoothmin(demand, self.sustained_bw_gbs, self.saturation_sharpness)

    def bandwidth_utilisation(self, n_cores: int) -> float:
        """Fraction of the sustained ceiling used by ``n_cores`` streaming."""
        return self.stream_bw_gbs(n_cores) / self.sustained_bw_gbs

    # ------------------------------------------------------------------
    # Latency (random access) model
    # ------------------------------------------------------------------

    @property
    def idle_latency_ns(self) -> float:
        """Unloaded DRAM access latency including fabric (ns)."""
        return self.ddr.random_access_latency_ns + self.extra_latency_ns

    def random_rate_cap(self) -> float:
        """Chip-wide random cache-line access ceiling (requests/s)."""
        return (
            self.channels
            * self.ddr.random_requests_per_second()
            * self.random_rate_scale
        )

    def random_access_rate(self, n_cores: int) -> float:
        """Sustained random-access throughput with ``n_cores`` (requests/s).

        One core issues ``mlp / latency`` misses per second; the chip caps
        the total at the channels' random-row throughput.  The IS benchmark
        (Figure 2) and its 4.91x SG2044/SG2042 ratio at 64 cores are direct
        consequences of this cap.
        """
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        per_core = self.core_mlp / (self.idle_latency_ns * 1e-9)
        demand = n_cores * per_core
        return smoothmin(demand, self.random_rate_cap(), self.saturation_sharpness)

    def loaded_latency_ns(self, n_cores: int) -> float:
        """Effective per-request latency under load (queueing inflation)."""
        util = self.bandwidth_utilisation(n_cores)
        # Classic M/M/1-flavoured inflation, clamped to keep the model sane
        # at full utilisation.
        inflation = 1.0 / max(1.0 - 0.85 * util, 0.15)
        return self.idle_latency_ns * inflation

    # ------------------------------------------------------------------

    def fits(self, working_set_bytes: int) -> bool:
        """Whether a working set fits in installed DRAM (with OS headroom)."""
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        headroom = 0.85  # kernel + runtime keep ~15%
        return working_set_bytes <= self.capacity_bytes * headroom

    def describe(self) -> str:
        """One-line human-readable summary used by the Table 5 renderer."""
        return (
            f"{self.ddr.name}, {self.controllers} MC / {self.channels} ch, "
            f"{self.capacity_bytes / 2**30:.0f} GiB, "
            f"{self.sustained_bw_gbs:.0f} GB/s sustained"
        )
