"""DDR memory-generation timing and bandwidth arithmetic.

The paper explains most of its memory results in terms of DDR generation
(DDR4-2666 / DDR4-3200 / DDR5-4266 / LPDDR4), the number of memory
controllers, and the number of memory channels (SG2042: 4+4, SG2044: 32+32,
EPYC 7742: 8+8, Skylake & ThunderX2: 2 controllers with 6/8 channels).
This module turns a DDR specification into the raw per-channel numbers the
memory-subsystem model needs:

* theoretical per-channel bandwidth (bus width x transfer rate),
* a sustained-efficiency derating (page misses, refresh, rank switching),
* an idle random-access latency estimate (CAS + row activate + controller
  and fabric overhead).

Nothing here is calibrated against the paper -- these are textbook JEDEC
numbers; calibration happens in :mod:`repro.core.calibration`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "DDRGeneration",
    "DDRSpec",
    "ddr4",
    "ddr5",
    "lpddr4",
]


class DDRGeneration(enum.Enum):
    """JEDEC DRAM generations that appear in the paper's machine table."""

    DDR4 = "DDR4"
    DDR5 = "DDR5"
    LPDDR4 = "LPDDR4"

    @property
    def bus_width_bits(self) -> int:
        """Data-bus width of one channel in bits.

        DDR5 DIMMs split the 64-bit bus into two independent 32-bit
        sub-channels; the paper counts SG2044 channels the SOPHGO way
        (32 channels), which corresponds to sub-channel granularity, so we
        model a DDR5 *channel* as a 32-bit sub-channel.
        """
        if self is DDRGeneration.DDR5:
            return 32
        return 64 if self is DDRGeneration.DDR4 else 32

    @property
    def typical_efficiency(self) -> float:
        """Fraction of peak bandwidth sustainable on streaming workloads.

        DDR5's dual sub-channel design and larger bank-group count keep more
        pages open under multi-core streams, hence the higher derating.
        """
        return {
            DDRGeneration.DDR4: 0.78,
            DDRGeneration.DDR5: 0.84,
            DDRGeneration.LPDDR4: 0.65,
        }[self]


@dataclass(frozen=True)
class DDRSpec:
    """One memory channel's worth of DRAM.

    Parameters
    ----------
    generation:
        JEDEC generation (:class:`DDRGeneration`).
    transfer_mts:
        Transfer rate in mega-transfers per second (the ``-3200`` in
        ``DDR4-3200``).
    cas_latency_ns:
        CAS latency in nanoseconds.  Defaults chosen per generation if not
        given (DDR4 ~13.75 ns CL19 @3200, DDR5 ~16 ns).
    """

    generation: DDRGeneration
    transfer_mts: int
    cas_latency_ns: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.transfer_mts <= 0:
            raise ValueError(f"transfer_mts must be positive, got {self.transfer_mts}")
        if self.cas_latency_ns == 0.0:
            default = {
                DDRGeneration.DDR4: 13.75,
                DDRGeneration.DDR5: 16.0,
                DDRGeneration.LPDDR4: 18.0,
            }[self.generation]
            object.__setattr__(self, "cas_latency_ns", default)
        if self.cas_latency_ns <= 0:
            raise ValueError("cas_latency_ns must be positive")

    @property
    def name(self) -> str:
        """Marketing name, e.g. ``DDR5-4266``."""
        return f"{self.generation.value}-{self.transfer_mts}"

    @property
    def channel_peak_bw_gbs(self) -> float:
        """Theoretical peak bandwidth of one channel in GB/s."""
        bytes_per_transfer = self.generation.bus_width_bits / 8.0
        return self.transfer_mts * 1e6 * bytes_per_transfer / 1e9

    @property
    def channel_sustained_bw_gbs(self) -> float:
        """Sustained streaming bandwidth of one channel in GB/s."""
        return self.channel_peak_bw_gbs * self.generation.typical_efficiency

    @property
    def random_access_latency_ns(self) -> float:
        """Idle-latency estimate for a row-miss random access.

        Roughly tRCD + CL + tRP plus a fixed controller/PHY overhead; we
        approximate the DRAM-core part as 3x CAS, which is within a few ns
        of published tRC values across the generations used here.
        """
        controller_overhead_ns = 10.0
        return 3.0 * self.cas_latency_ns + controller_overhead_ns

    def random_requests_per_second(self) -> float:
        """Row-miss random-access throughput of one channel (requests/s).

        A closed-page random access occupies a bank for ~tRC; with the bank
        parallelism available per channel (16 banks DDR4, 32 DDR5) several
        requests overlap, but the data bus and bank-group timing limit the
        sustained rate.  We model sustained random throughput as one cache
        line per ~tRC/4 per channel -- i.e. four banks' worth of overlap --
        which lands near measured pointer-chase-with-MLP rates.
        """
        trc_ns = self.random_access_latency_ns - 10.0  # strip controller part
        overlap = 4.0
        return overlap / (trc_ns * 1e-9)


def ddr4(transfer_mts: int, cas_latency_ns: float = 0.0) -> DDRSpec:
    """Convenience constructor for a DDR4 channel spec."""
    return DDRSpec(DDRGeneration.DDR4, transfer_mts, cas_latency_ns)


def ddr5(transfer_mts: int, cas_latency_ns: float = 0.0) -> DDRSpec:
    """Convenience constructor for a DDR5 channel spec."""
    return DDRSpec(DDRGeneration.DDR5, transfer_mts, cas_latency_ns)


def lpddr4(transfer_mts: int, cas_latency_ns: float = 0.0) -> DDRSpec:
    """Convenience constructor for an LPDDR4 channel spec (small boards)."""
    return DDRSpec(DDRGeneration.LPDDR4, transfer_mts, cas_latency_ns)
