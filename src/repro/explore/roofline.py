"""Roofline analysis over the machine catalog.

The classic two-ceiling model: attainable flops = min(peak compute,
arithmetic intensity x sustained bandwidth).  Applied to the paper's
machines it visualises the whole story in one number per (machine,
kernel): every NPB kernel except EP sits left of the SG2042's ridge
point (memory-bound there), while the SG2044's 3x bandwidth moves its
ridge far enough left that MG/FT become borderline and EP-like codes stay
compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signature import KernelSignature
from repro.machines.machine import Machine

__all__ = ["RooflinePoint", "peak_gflops", "ridge_intensity", "roofline_point"]


def peak_gflops(machine: Machine, n_cores: int | None = None, vectorised: bool = True) -> float:
    """Peak double-precision Gflop/s of ``n_cores`` (default: whole chip)."""
    n = n_cores if n_cores is not None else machine.n_cores
    machine.validate_thread_count(n)
    per_cycle = (
        machine.core.peak_vector_flops_per_cycle()
        if vectorised and machine.core.has_vector
        else machine.core.scalar_flops_per_cycle()
    )
    per_cycle = max(per_cycle, machine.core.scalar_flops_per_cycle())
    return n * per_cycle * machine.clock_hz / 1e9


def ridge_intensity(machine: Machine, n_cores: int | None = None) -> float:
    """Arithmetic intensity (flop/byte) at which compute and bandwidth
    ceilings meet.  Left of this, a kernel is memory-bound."""
    n = n_cores if n_cores is not None else machine.n_cores
    bw = machine.memory.stream_bw_gbs(n)
    return peak_gflops(machine, n) / bw


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on one machine's roofline."""

    machine: str
    kernel: str
    arithmetic_intensity: float  # flop/byte of DRAM traffic
    attainable_gflops: float
    memory_bound: bool

    @property
    def bound(self) -> str:
        return "memory" if self.memory_bound else "compute"


def roofline_point(
    machine: Machine, signature: KernelSignature, n_cores: int | None = None
) -> RooflinePoint:
    """Place a kernel signature on a machine's roofline.

    Arithmetic intensity uses the signature's flop estimate over its DRAM
    traffic; signatures with (near-)zero traffic are treated as infinitely
    intense, i.e. compute-bound (EP).
    """
    n = n_cores if n_cores is not None else machine.n_cores
    flops = signature.total_mops * 1e6  # counted ops ~ flops for NPB
    traffic_bytes = signature.total_dram_bytes
    peak = peak_gflops(machine, n)
    if traffic_bytes <= 0:
        return RooflinePoint(
            machine=machine.name,
            kernel=signature.name,
            arithmetic_intensity=float("inf"),
            attainable_gflops=peak,
            memory_bound=False,
        )
    intensity = flops / traffic_bytes
    bw = machine.memory.stream_bw_gbs(n)
    attainable = min(peak, intensity * bw)
    return RooflinePoint(
        machine=machine.name,
        kernel=signature.name,
        arithmetic_intensity=intensity,
        attainable_gflops=attainable,
        memory_bound=attainable < peak,
    )
