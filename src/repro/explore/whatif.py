"""Design-space exploration: which SG2044 upgrade bought what?

The paper attributes the SG2044's gains to a list of upgrades over the
SG2042 -- 32 vs 4 memory controllers/channels, DDR5 vs DDR4, RVV 1.0
(hence mainline compilers) vs 0.7.1, 2 MB vs 1 MB cluster L2, 2.6 vs
2.0 GHz -- but hardware can only be measured as shipped.  A model can be
*ablated*: this module builds hypothetical machines that apply the
upgrades one at a time and quantifies each one's contribution per
benchmark.

The headline finding it reproduces (see ``bench_ablation_upgrades.py``):
the memory-subsystem upgrade dominates IS/MG at 64 cores, the clock bump
dominates EP everywhere, and RVV 1.0 mostly matters because it unlocks
*mainline compilers*, not because 128-bit vectors are fast.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.compilers.gcc import get_compiler
from repro.core.perfmodel import PerformanceModel
from repro.machines.catalog import get_machine
from repro.machines.machine import Machine
from repro.npb.signatures import signature_for

__all__ = [
    "variant",
    "UPGRADES",
    "upgrade_ladder",
    "ablate_upgrade",
    "UpgradeStep",
]


def variant(base: Machine, name: str, **overrides) -> Machine:
    """A renamed copy of ``base`` with dataclass-field overrides.

    Nested models (``memory``, ``core``, ``topology``) are replaced
    wholesale -- compose with :func:`dataclasses.replace` on the parts.
    """
    return replace(base, name=name, label=f"{base.label} [{name}]", **overrides)


class UpgradeStep:
    """One named upgrade: a transform from a machine to a better one."""

    def __init__(
        self, key: str, description: str, apply: Callable[[Machine], Machine]
    ) -> None:
        self.key = key
        self.description = description
        self.apply = apply

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UpgradeStep({self.key!r})"


def _clock(machine: Machine) -> Machine:
    return variant(machine, f"{machine.name}+clock", clock_hz=2.6e9)


def _memory(machine: Machine) -> Machine:
    sg2044 = get_machine("sg2044")
    return variant(machine, f"{machine.name}+memory", memory=sg2044.memory)


def _l2(machine: Machine) -> Machine:
    sg2044 = get_machine("sg2044")
    return variant(machine, f"{machine.name}+l2", caches=sg2044.caches)


def _rvv10(machine: Machine) -> Machine:
    # RVV 1.0 = the C920v2 core (same width, ratified standard) *and*
    # access to mainline GCC 15.2 -- the compiler is the real upgrade.
    sg2044 = get_machine("sg2044")
    return variant(
        machine,
        f"{machine.name}+rvv10",
        core=sg2044.core,
        os_noise_coeff=sg2044.os_noise_coeff,
    )


#: The SG2042 -> SG2044 upgrade list from the paper's Section 2.1, as
#: individually applicable steps.
UPGRADES: tuple[UpgradeStep, ...] = (
    UpgradeStep("clock", "2.0 -> 2.6 GHz", _clock),
    UpgradeStep("memory", "4ch DDR4 -> 32ch DDR5 subsystem", _memory),
    UpgradeStep("l2", "1 MB -> 2 MB cluster L2", _l2),
    UpgradeStep("rvv10", "RVV 0.7.1 -> 1.0 (mainline compilers)", _rvv10),
)


def _mops(machine: Machine, kernel: str, n_threads: int, compiler_name: str) -> float:
    """Uncalibrated model rate (hypothetical machines have no anchors)."""
    model = PerformanceModel(calibrate=False)
    sig = signature_for(kernel, "C")
    vectorise = kernel != "cg"
    pred = model.predict(
        machine, sig, get_compiler(compiler_name), n_threads, vectorise
    )
    return pred.mops


def upgrade_ladder(
    kernel: str, n_threads: int = 64, order: tuple[str, ...] | None = None
) -> list[tuple[str, float, float]]:
    """Apply the upgrades cumulatively from the SG2042 toward the SG2044.

    Returns ``[(step_key, mops, gain_over_previous), ...]`` starting from
    the baseline SG2042.  The compiler switches from the XuanTie fork to
    mainline GCC 15.2 at the ``rvv10`` step (that is the point of it).
    """
    steps = {u.key: u for u in UPGRADES}
    sequence = order or tuple(steps)
    unknown = set(sequence) - set(steps)
    if unknown:
        raise KeyError(f"unknown upgrade steps: {sorted(unknown)}")

    machine = get_machine("sg2042")
    compiler = "xuantie-gcc-8.4"
    rows: list[tuple[str, float, float]] = []
    prev = _mops(machine, kernel, n_threads, compiler)
    rows.append(("baseline-sg2042", prev, 1.0))
    for key in sequence:
        machine = steps[key].apply(machine)
        if key == "rvv10":
            compiler = "gcc-15.2"
        current = _mops(machine, kernel, n_threads, compiler)
        rows.append((key, current, current / prev))
        prev = current
    return rows


def ablate_upgrade(kernel: str, key: str, n_threads: int = 64) -> float:
    """Marginal value of one upgrade: full SG2044 path vs path without it.

    Returns the speedup factor the step contributes when added last (so
    interactions with the other upgrades are already in the baseline).
    """
    others = tuple(u.key for u in UPGRADES if u.key != key)
    without = upgrade_ladder(kernel, n_threads, order=others)[-1][1]
    full = upgrade_ladder(kernel, n_threads, order=others + (key,))[-1][1]
    return full / without
