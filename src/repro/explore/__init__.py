"""Design-space exploration: upgrade ablations and roofline analysis."""

from .roofline import RooflinePoint, peak_gflops, ridge_intensity, roofline_point
from .whatif import UPGRADES, UpgradeStep, ablate_upgrade, upgrade_ladder, variant

__all__ = [
    "RooflinePoint",
    "UPGRADES",
    "UpgradeStep",
    "ablate_upgrade",
    "peak_gflops",
    "ridge_intensity",
    "roofline_point",
    "upgrade_ladder",
    "variant",
]
