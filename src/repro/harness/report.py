"""Rendering: ASCII tables and CSV for the regenerated tables/figures."""

from __future__ import annotations

import io
from collections.abc import Sequence

__all__ = ["render_table", "render_csv", "format_value"]


def format_value(v: object, digits: int = 2) -> str:
    """Human formatting: floats trimmed, None/DNR handling."""
    if v is None:
        return "DNR"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 10000:
            return f"{v:,.0f}"
        return f"{v:.{digits}f}"
    return str(v)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    digits: int = 2,
) -> str:
    """Monospace table with a title rule, GitHub-ish style."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[format_value(v, digits) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in str_rows:
        out.write("  ".join(v.rjust(w) for v, w in zip(r, widths)).rstrip() + "\n")
    return out.getvalue()


def render_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain CSV (no quoting needed for our numeric tables)."""
    lines = [",".join(headers)]
    for row in rows:
        cells = []
        for v in row:
            s = "DNR" if v is None else (f"{v:.6g}" if isinstance(v, float) else str(v))
            if "," in s:
                raise ValueError(f"cell {s!r} would need quoting")
            cells.append(s)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
