"""Reproduction scorecard: quantified model-vs-paper agreement.

Computes, for every table with published numbers, the mean and maximum
absolute relative error of the model against the paper, separating
*anchored* quantities (calibrated single-core points -- must be ~0) from
*emergent* ones (multi-core rates, ratios, stall percentages -- the actual
test of the model).  ``python -m repro score`` prints it; the test suite
pins acceptable bounds so a regression in any subsystem shows up as a
score change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.stats import table1_profile
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.perfmodel import DNRError

from . import paper

__all__ = ["Score", "scorecard"]


@dataclass(frozen=True)
class Score:
    """Error statistics for one group of compared quantities."""

    name: str
    n_points: int
    mean_abs_rel_err: float
    max_abs_rel_err: float

    def summary(self) -> str:
        return (
            f"{self.name:<28} {self.n_points:>3} pts  "
            f"mean {100 * self.mean_abs_rel_err:5.1f}%  "
            f"max {100 * self.max_abs_rel_err:5.1f}%"
        )


def _score(name: str, pairs: list[tuple[float, float]]) -> Score:
    """Relative errors of (model, paper) pairs (paper as denominator)."""
    if not pairs:
        raise ValueError(f"no comparison points for {name}")
    errs = [abs(m - p) / abs(p) for m, p in pairs if p != 0]
    return Score(
        name=name,
        n_points=len(errs),
        mean_abs_rel_err=sum(errs) / len(errs),
        max_abs_rel_err=max(errs),
    )


def scorecard(table1_accesses: int = 40_000) -> list[Score]:
    """Compute the full scorecard (anchored and emergent groups)."""
    runner = ExperimentRunner(noise_cv=0.0)

    def mops(machine, kernel, n, npb_class="C", **kw):
        kw.setdefault("vectorise", kernel != "cg")
        try:
            return runner.run(
                ExperimentConfig(
                    machine=machine,
                    kernel=kernel,
                    npb_class=npb_class,
                    n_threads=n,
                    **kw,
                )
            ).mean_mops
        except DNRError:
            return None

    scores: list[Score] = []

    # Table 1 (emergent): stall percentages, absolute-points error scaled
    # to a 0-100 range treated as relative to 100.
    profiles = table1_profile(n_accesses=table1_accesses)
    pairs = []
    for kernel, (pc, pd, pb) in paper.TABLE1.items():
        mc, md, mb = profiles[kernel].as_percentages()
        pairs.extend([(mc + 100.0, pc + 100.0), (md + 100.0, pd + 100.0), (mb + 100.0, pb + 100.0)])
    scores.append(_score("Table 1 stall profile", pairs))

    # Tables 2/3 (anchored single-core points).
    pairs = []
    for kernel, row in paper.TABLE2.items():
        for machine, expected in row.items():
            if expected is None or machine == "sg2044":
                continue
            got = mops(machine, kernel, 1, npb_class="B")
            pairs.append((got, expected))
    for kernel, (a, b) in paper.TABLE3.items():
        pairs.append((mops("sg2044", kernel, 1), a))
        pairs.append((mops("sg2042", kernel, 1), b))
    scores.append(_score("Tables 2+3 (anchored)", pairs))

    # Table 4 (emergent 64-core rates).
    pairs = []
    for kernel, (a, b) in paper.TABLE4.items():
        pairs.append((mops("sg2044", kernel, 64), a))
        pairs.append((mops("sg2042", kernel, 64), b))
    scores.append(_score("Table 4 (64-core, emergent)", pairs))

    # Table 6 (emergent ratios).
    pairs = []
    for app, by_cores in paper.TABLE6.items():
        for cores, row in by_cores.items():
            base = mops("sg2044", app, cores)
            for machine, expected in row.items():
                if expected is None:
                    continue
                got = mops(machine, app, cores)
                pairs.append((got / base, expected))
    scores.append(_score("Table 6 (ratios, emergent)", pairs))

    # Tables 7/8 (compiler deltas; 12.3.1 scalar cells are fitted, the
    # vec/no-vec columns and all 64-core behaviour are emergent).
    pairs = []
    for n, table in ((1, paper.TABLE7), (64, paper.TABLE8)):
        for kernel, (old, vec, novec) in table.items():
            pairs.append(
                (mops("sg2044", kernel, n, compiler="gcc-12.3.1", vectorise=True), old)
            )
            pairs.append(
                (mops("sg2044", kernel, n, compiler="gcc-15.2", vectorise=True), vec)
            )
            pairs.append(
                (mops("sg2044", kernel, n, compiler="gcc-15.2", vectorise=False), novec)
            )
    scores.append(_score("Tables 7+8 (compilers)", pairs))

    return scores
