"""The paper's published numbers, transcribed for side-by-side reporting.

Every regenerator can print (and every test can assert against) the
model-vs-paper comparison without re-reading the PDF.  Values are exactly
as printed in the paper; Mop/s throughout.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE6",
    "TABLE7",
    "TABLE8",
    "KERNELS",
    "PSEUDO_APPS",
]

KERNELS = ("is", "mg", "ep", "cg", "ft")
PSEUDO_APPS = ("bt", "lu", "sp")

#: kernel -> (cache-stall %, DDR-stall %, time-DDR-bandwidth-bound %).
TABLE1 = {
    "is": (35, 0, 16),
    "mg": (34, 20, 88),
    "ep": (11, 0, 0),
    "cg": (19, 18, 0),
    "ft": (13, 9, 18),
    "bt": (8, 9, 0),
    "lu": (12, 11, 0),
    "sp": (20, 21, 0),
}

#: kernel -> machine -> Mop/s (class B, single core); None = DNR.
TABLE2 = {
    "is": {
        "sg2044": 64.68,
        "visionfive2": 17.84,
        "visionfive1": 6.36,
        "hifive-u740": 9.09,
        "allwinner-d1": 5.41,
        "bananapi-f3": 22.66,
        "milkv-jupiter": 24.75,
    },
    "mg": {
        "sg2044": 1472.32,
        "visionfive2": 288.65,
        "visionfive1": 72.31,
        "hifive-u740": 90.28,
        "allwinner-d1": 163.19,
        "bananapi-f3": 306.78,
        "milkv-jupiter": 335.38,
    },
    "ep": {
        "sg2044": 40.75,
        "visionfive2": 12.01,
        "visionfive1": 7.55,
        "hifive-u740": 9.08,
        "allwinner-d1": 9.23,
        "bananapi-f3": 18.17,
        "milkv-jupiter": 20.4,
    },
    "cg": {
        "sg2044": 269.37,
        "visionfive2": 43.61,
        "visionfive1": 21.96,
        "hifive-u740": 29.09,
        "allwinner-d1": 12.99,
        "bananapi-f3": 23.71,
        "milkv-jupiter": 24.42,
    },
    "ft": {
        "sg2044": 1296.22,
        "visionfive2": 245.99,
        "visionfive1": 88.35,
        "hifive-u740": 116.59,
        "allwinner-d1": None,  # 1 GB DRAM: Did Not Run
        "bananapi-f3": 362.8,
        "milkv-jupiter": 388.24,
    },
}

#: kernel -> (SG2044 Mop/s, SG2042 Mop/s) at class C, single core.
TABLE3 = {
    "is": (63.63, 58.87),
    "mg": (1382.91, 1175.69),
    "ep": (40.76, 31.36),
    "cg": (213.82, 173.39),
    "ft": (1023.83, 797.09),
}

#: kernel -> (SG2044 Mop/s, SG2042 Mop/s) at class C, 64 cores.
TABLE4 = {
    "is": (3038.14, 618.50),
    "mg": (32457.83, 14397.69),
    "ep": (2538.38, 1675.25),
    "cg": (7728.80, 3508.95),
    "ft": (22582.2, 8317.91),
}

#: app -> cores -> machine -> times-faster-than-SG2044 (None = not run).
TABLE6 = {
    "bt": {
        16: {"sg2042": 0.79, "epyc7742": 2.56, "skylake8170": 2.60, "thunderx2": 1.92},
        26: {"sg2042": 0.66, "epyc7742": 2.35, "skylake8170": 1.95, "thunderx2": 1.77},
        32: {"sg2042": 0.66, "epyc7742": 2.41, "skylake8170": None, "thunderx2": 1.73},
        64: {"sg2042": 0.45, "epyc7742": 1.90, "skylake8170": None, "thunderx2": None},
    },
    "lu": {
        16: {"sg2042": 0.85, "epyc7742": 3.09, "skylake8170": 3.52, "thunderx2": 2.43},
        26: {"sg2042": 0.88, "epyc7742": 2.80, "skylake8170": 2.77, "thunderx2": 2.29},
        32: {"sg2042": 0.81, "epyc7742": 2.76, "skylake8170": None, "thunderx2": 2.39},
        64: {"sg2042": 0.69, "epyc7742": 2.05, "skylake8170": None, "thunderx2": None},
    },
    "sp": {
        16: {"sg2042": 0.79, "epyc7742": 3.99, "skylake8170": 3.07, "thunderx2": 2.87},
        26: {"sg2042": 0.57, "epyc7742": 3.56, "skylake8170": 1.99, "thunderx2": 2.05},
        32: {"sg2042": 0.63, "epyc7742": 3.30, "skylake8170": None, "thunderx2": 2.02},
        64: {"sg2042": 0.48, "epyc7742": 2.05, "skylake8170": None, "thunderx2": None},
    },
}

#: kernel -> (GCC 12.3.1, GCC 15.2 vec, GCC 15.2 no-vec), class C, 1 core.
TABLE7 = {
    "is": (62.94, 63.63, 62.75),
    "mg": (1373.31, 1382.92, 1300.27),
    "ep": (40.56, 40.76, 40.75),
    "cg": (210.06, 81.19, 217.53),
    "ft": (887.43, 1023.83, 982.93),
}

#: Same layout, 64 cores.
TABLE8 = {
    "is": (2255.72, 3038.14, 3024.63),
    "mg": (32186.04, 32457.83, 31892.70),
    "ep": (2529.91, 2542.53, 2538.38),
    "cg": (7709.53, 4463.18, 7728.80),
    "ft": (20796.20, 22582.20, 21282.00),
}
