"""Regenerators for every table in the paper's evaluation.

Each ``tableN()`` returns a :class:`TableResult` carrying the modelled
rows, the paper's published values alongside, and a renderer.  The
``benchmarks/`` directory has one pytest-benchmark target per table that
calls these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.cachesim.stats import table1_profile
from repro.core.experiment import ExperimentConfig
from repro.core.metrics import percent_of, times_faster
from repro.core.sweep import SweepEngine, default_engine, expand_grid, paper_vectorise
from repro.machines.catalog import (
    PAPER_RISCV_BOARDS,
    all_machines,
    get_machine,
)

from . import paper
from .report import render_csv, render_table

__all__ = [
    "TableResult",
    "table_grid",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "TABLE_BUILDERS",
    "build_table",
]


@dataclass
class TableResult:
    """One regenerated table: headers, rows, and provenance."""

    number: int
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        body = render_table(f"Table {self.number}: {self.title}", self.headers, self.rows)
        if self.notes:
            body += "".join(f"  note: {n}\n" for n in self.notes)
        return body

    def to_csv(self) -> str:
        return render_csv(self.headers, self.rows)


def _mops(
    engine: SweepEngine,
    machine: str,
    kernel: str,
    npb_class: str,
    n_threads: int,
    compiler: str | None = None,
    vectorise: bool | None = None,
) -> float | None:
    """Mean Mop/s for a configuration, or None for a DNR.

    The prefetch in each table builder has already batch-executed the
    table's whole grid, so these per-cell calls are cache hits.
    """
    if vectorise is None:
        # The paper disables vectorisation for CG (Section 6 pathology).
        vectorise = paper_vectorise(kernel)
    result = engine.try_run(
        ExperimentConfig(
            machine=machine,
            kernel=kernel,
            npb_class=npb_class,
            n_threads=n_threads,
            compiler=compiler,
            vectorise=vectorise,
        )
    )
    return None if result is None else result.mean_mops


# ----------------------------------------------------------------------
# Per-table prefetch grids.  Each builder batch-executes its whole grid
# up front; exposing the grids separately lets callers regenerating
# several artifacts (``repro export``, a full paper run) flatten them
# into ONE ``run_many`` megagrid -- a single planner pass, sharded
# across processes under ``--procs`` -- after which the per-table
# prefetches below are pure cache hits.


def _table2_grid() -> list[ExperimentConfig]:
    return expand_grid(PAPER_RISCV_BOARDS, paper.KERNELS, classes="B", thread_counts=1)


def _table3_grid() -> list[ExperimentConfig]:
    return expand_grid(("sg2044", "sg2042"), paper.KERNELS, classes="C", thread_counts=1)


def _table4_grid() -> list[ExperimentConfig]:
    return expand_grid(("sg2044", "sg2042"), paper.KERNELS, classes="C", thread_counts=64)


def _table6_grid() -> list[ExperimentConfig]:
    machines = ("sg2044", "sg2042", "epyc7742", "skylake8170", "thunderx2")
    return [
        ExperimentConfig(
            machine=m,
            kernel=app,
            npb_class="C",
            n_threads=cores,
            vectorise=paper_vectorise(app),
        )
        for app in paper.PSEUDO_APPS
        for cores in (16, 26, 32, 64)
        for m in machines
        if cores <= get_machine(m).n_cores
    ]


def _compiler_grid(n_threads: int) -> list[ExperimentConfig]:
    combos = (("gcc-12.3.1", True), ("gcc-15.2", True), ("gcc-15.2", False))
    return [
        ExperimentConfig(
            machine="sg2044",
            kernel=kernel,
            npb_class="C",
            n_threads=n_threads,
            compiler=compiler,
            vectorise=vec,
        )
        for kernel in paper.KERNELS
        for compiler, vec in combos
    ]


def table_grid(number: int) -> list[ExperimentConfig]:
    """The experiment grid ``tableN()`` prefetches (empty when none).

    Tables 1 and 5 need no sweep (trace simulation / catalog data), so
    their grids are empty.
    """
    if number not in TABLE_BUILDERS:
        raise KeyError(f"the paper has tables 1-8; no table {number}")
    builder = _TABLE_GRIDS.get(number)
    return [] if builder is None else builder()


def table1(
    n_accesses: int = 60_000, engine: SweepEngine | None = None
) -> TableResult:
    """NPB memory behaviour on the Xeon 8170 (trace-driven simulation).

    ``engine`` is accepted for signature uniformity with the other
    builders (the trace simulation never touches the sweep engine).
    """
    profiles = table1_profile(n_accesses=n_accesses)
    rows: list[list[object]] = []
    for kernel in ("is", "mg", "ep", "cg", "ft", "bt", "lu", "sp"):
        c, d, b = profiles[kernel].as_percentages()
        pc, pd, pb = paper.TABLE1[kernel]
        rows.append([kernel.upper(), c, pc, d, pd, b, pb])
    return TableResult(
        number=1,
        title="Memory behaviour of NPB kernels on Xeon Platinum 8170",
        headers=[
            "Benchmark",
            "cache stall %",
            "(paper)",
            "DDR stall %",
            "(paper)",
            "BW-bound %",
            "(paper)",
        ],
        rows=rows,
        notes=["trace-driven simulation of a downscaled Skylake-SP hierarchy"],
    )


def table2(engine: SweepEngine | None = None) -> TableResult:
    """Single-core RISC-V comparison, class B (incl. the D1's FT DNR)."""
    engine = engine if engine is not None else default_engine()
    engine.run_many(_table2_grid(), on_dnr="none")
    rows: list[list[object]] = []
    for kernel in paper.KERNELS:
        ref = _mops(engine, "sg2044", kernel, "B", 1)
        assert ref is not None
        row: list[object] = [kernel.upper()]
        for machine in PAPER_RISCV_BOARDS:
            mops = _mops(engine, machine, kernel, "B", 1)
            row.append(mops)
            if machine != "sg2044":
                row.append(
                    None if mops is None else round(percent_of(mops, ref))
                )
        rows.append(row)
    headers = ["Benchmark", "SG2044"]
    for machine in PAPER_RISCV_BOARDS[1:]:
        headers += [get_machine(machine).label, "%"]
    return TableResult(
        number=2,
        title="Single-core comparison between RISC-V boards (class B, Mop/s)",
        headers=headers,
        rows=rows,
        notes=["percentages are relative to the SG2044's C920v2 core"],
    )


def table3(engine: SweepEngine | None = None) -> TableResult:
    """SG2044 vs SG2042, single core, class C."""
    engine = engine if engine is not None else default_engine()
    engine.run_many(_table3_grid())
    rows: list[list[object]] = []
    for kernel in paper.KERNELS:
        a = _mops(engine, "sg2044", kernel, "C", 1)
        b = _mops(engine, "sg2042", kernel, "C", 1)
        assert a is not None and b is not None
        pa, pb = paper.TABLE3[kernel]
        rows.append(
            [kernel.upper(), a, b, times_faster(a, b), times_faster(pa, pb)]
        )
    return TableResult(
        number=3,
        title="SG2044 vs SG2042, single core, class C (Mop/s)",
        headers=["Benchmark", "SG2044", "SG2042", "times faster", "(paper)"],
        rows=rows,
    )


def table4(engine: SweepEngine | None = None) -> TableResult:
    """SG2044 vs SG2042, 64 cores, class C (the 1.52x-4.91x headline)."""
    engine = engine if engine is not None else default_engine()
    engine.run_many(_table4_grid())
    rows: list[list[object]] = []
    for kernel in paper.KERNELS:
        a = _mops(engine, "sg2044", kernel, "C", 64)
        b = _mops(engine, "sg2042", kernel, "C", 64)
        assert a is not None and b is not None
        pa, pb = paper.TABLE4[kernel]
        rows.append(
            [kernel.upper(), a, b, times_faster(a, b), times_faster(pa, pb)]
        )
    return TableResult(
        number=4,
        title="SG2044 vs SG2042, all 64 cores, class C (Mop/s)",
        headers=["Benchmark", "SG2044", "SG2042", "times faster", "(paper)"],
        rows=rows,
    )


def table5(engine: SweepEngine | None = None) -> TableResult:
    """The CPU overview table (straight from the machine catalog)."""
    rows: list[list[object]] = []
    for machine in all_machines():
        if machine.name not in (
            "epyc7742",
            "skylake8170",
            "thunderx2",
            "sg2042",
            "sg2044",
        ):
            continue
        d = machine.describe()
        rows.append(
            [d["CPU"], d["ISA"], d["Part"], d["Base clock"], d["Cores"], d["Vector"]]
        )
    return TableResult(
        number=5,
        title="Overview of the CPUs compared in Section 5",
        headers=["CPU", "ISA", "Part", "Base clock", "Cores", "Vector"],
        rows=rows,
    )


def table6(engine: SweepEngine | None = None) -> TableResult:
    """Pseudo-app relative runtimes vs the SG2044 at 16/26/32/64 cores."""
    engine = engine if engine is not None else default_engine()
    rows: list[list[object]] = []
    machines = ("sg2042", "epyc7742", "skylake8170", "thunderx2")
    engine.run_many(_table6_grid(), on_dnr="none")
    for app in paper.PSEUDO_APPS:
        for cores in (16, 26, 32, 64):
            base = _mops(engine, "sg2044", app, "C", cores)
            assert base is not None
            row: list[object] = [app.upper(), cores]
            for m in machines:
                if cores > get_machine(m).n_cores:
                    row += [None, paper.TABLE6[app][cores][m]]
                    continue
                mops = _mops(engine, m, app, "C", cores)
                ratio = None if mops is None else times_faster(mops, base)
                row += [ratio, paper.TABLE6[app][cores][m]]
            rows.append(row)
    headers = ["App", "Cores"]
    for m in machines:
        headers += [get_machine(m).label, "(paper)"]
    return TableResult(
        number=6,
        title="Times faster than the SG2044 on BT/LU/SP (class C)",
        headers=headers,
        rows=rows,
        notes=["values < 1 mean slower than the SG2044; blank = exceeds core count"],
    )


def _compiler_table(
    number: int, n_threads: int, paper_table, engine: SweepEngine | None = None
) -> TableResult:
    engine = engine if engine is not None else default_engine()
    engine.run_many(_compiler_grid(n_threads), on_dnr="none")
    rows: list[list[object]] = []
    for kernel in paper.KERNELS:
        old = _mops(
            engine, "sg2044", kernel, "C", n_threads,
            compiler="gcc-12.3.1", vectorise=True,
        )
        vec = _mops(
            engine, "sg2044", kernel, "C", n_threads,
            compiler="gcc-15.2", vectorise=True,
        )
        novec = _mops(
            engine, "sg2044", kernel, "C", n_threads,
            compiler="gcc-15.2", vectorise=False,
        )
        p = paper_table[kernel]
        rows.append([kernel.upper(), old, p[0], vec, p[1], novec, p[2]])
    return TableResult(
        number=number,
        title=(
            f"SG2044 compiler/vectorisation comparison, class C, "
            f"{n_threads} core{'s' if n_threads > 1 else ''} (Mop/s)"
        ),
        headers=[
            "Benchmark",
            "GCC 12.3.1",
            "(paper)",
            "GCC 15.2 vec",
            "(paper)",
            "GCC 15.2 no-vec",
            "(paper)",
        ],
        rows=rows,
        notes=["the CG vec column is the Section 6 RVV gather pathology"],
    )


def table7(engine: SweepEngine | None = None) -> TableResult:
    """Compiler versions and vectorisation, single core."""
    return _compiler_table(7, 1, paper.TABLE7, engine=engine)


def table8(engine: SweepEngine | None = None) -> TableResult:
    """Compiler versions and vectorisation, all 64 cores."""
    return _compiler_table(8, 64, paper.TABLE8, engine=engine)


TABLE_BUILDERS = {
    1: table1,
    2: table2,
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
    8: table8,
}

_TABLE_GRIDS = {
    2: _table2_grid,
    3: _table3_grid,
    4: _table4_grid,
    6: _table6_grid,
    7: lambda: _compiler_grid(1),
    8: lambda: _compiler_grid(64),
}


def build_table(number: int, engine: SweepEngine | None = None) -> TableResult:
    """Regenerate one paper table by number (1-8).

    ``engine`` routes every sweep the builder runs through a specific
    :class:`SweepEngine` instead of the process-wide default -- the
    service's job manager passes its own engine here so per-job journals
    and execution counters see the builder's work (and a prefetched grid
    on that engine makes the builder's per-cell lookups pure cache hits).
    """
    try:
        builder = TABLE_BUILDERS[number]
    except KeyError:
        raise KeyError(f"the paper has tables 1-8; no table {number}") from None
    with obs.span(f"table{number}"):
        result = builder(engine=engine)
    obs.incr("harness.tables_built")
    return result
