"""Regenerators for every figure in the paper's evaluation.

Figures are data series (no plotting dependency is installed offline);
each ``figureN()`` returns a :class:`FigureResult` whose ``series`` map a
curve label to ``(x, y)`` points, plus an ASCII sparkline renderer so the
shape is visible in a terminal.  One pytest-benchmark target per figure
lives under ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.experiment import ExperimentConfig
from repro.core.sweep import SweepEngine, default_engine, paper_vectorise
from repro.machines.catalog import PAPER_HPC_MACHINES, get_machine
from repro.stream.stream import modelled_bandwidth

from .report import render_csv

__all__ = [
    "FigureResult",
    "figure_grid",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "FIGURE_BUILDERS",
    "build_figure",
    "THREAD_SWEEP",
]

#: The paper's x-axis: powers of two up to each chip's core count, plus
#: the Skylake's odd 26.
THREAD_SWEEP = (1, 2, 4, 8, 16, 26, 32, 64)

_SPARK = "._-=+*#%@"


def _sweep_for(machine_name: str) -> list[int]:
    n = get_machine(machine_name).n_cores
    return [t for t in THREAD_SWEEP if t <= n]


@dataclass
class FigureResult:
    """One regenerated figure: named (x, y) series."""

    number: int
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== Figure {self.number}: {self.title} =="]
        lines.append(f"   ({self.x_label} vs {self.y_label})")
        all_y = [y for pts in self.series.values() for _, y in pts]
        lo, hi = min(all_y), max(all_y)
        span = hi - lo or 1.0
        for label, pts in self.series.items():
            spark = "".join(
                _SPARK[int((y - lo) / span * (len(_SPARK) - 1))] for _, y in pts
            )
            xs = ",".join(str(x) for x, _ in pts)
            last = pts[-1]
            lines.append(
                f"  {label:<18} {spark:<10} x=[{xs}] "
                f"peak@{last[0]}: {last[1]:,.1f}"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        headers = ["series", "x", "y"]
        rows = [
            [label, x, y]
            for label, pts in self.series.items()
            for x, y in pts
        ]
        return render_csv(headers, rows)


def _scaling_grid(kernel: str) -> list[ExperimentConfig]:
    """The flat thread-scaling grid figures 2-6 prefetch for ``kernel``."""
    vectorise = paper_vectorise(kernel)  # the paper's Section 6 exception
    return [
        ExperimentConfig(
            machine=machine,
            kernel=kernel,
            npb_class="C",
            n_threads=n,
            vectorise=vectorise,
        )
        for machine in PAPER_HPC_MACHINES
        for n in _sweep_for(machine)
    ]


def figure_grid(number: int) -> list[ExperimentConfig]:
    """The experiment grid ``figureN()`` prefetches (empty when none).

    Figure 1 is pure STREAM bandwidth (no sweep), so its grid is empty.
    Like :func:`repro.harness.tables.table_grid`, this lets multi-artifact
    callers flatten everything into one planner megagrid up front.
    """
    if number not in FIGURE_BUILDERS:
        raise KeyError(f"the paper has figures 1-6; no figure {number}")
    kernel = _FIGURE_KERNELS.get(number)
    return [] if kernel is None else _scaling_grid(kernel)


def figure1(engine: SweepEngine | None = None) -> FigureResult:
    """STREAM copy bandwidth vs cores: SG2044 scales, SG2042 plateaus.

    ``engine`` is accepted for signature uniformity (pure STREAM model,
    no sweep).
    """
    fig = FigureResult(
        number=1,
        title="STREAM copy memory bandwidth vs cores",
        x_label="cores",
        y_label="GB/s",
    )
    for machine in ("sg2042", "sg2044"):
        label = get_machine(machine).label
        fig.series[label] = [
            (n, modelled_bandwidth(get_machine(machine), n, "copy"))
            for n in _sweep_for(machine)
        ]
    fig.notes.append(
        "the SG2042 plateaus just beyond 8 cores; at 64 the SG2044 delivers >3x"
    )
    return fig


def _kernel_scaling_figure(
    number: int, kernel: str, caption: str, engine: SweepEngine | None = None
) -> FigureResult:
    fig = FigureResult(
        number=number,
        title=caption,
        x_label="threads",
        y_label="Mop/s",
    )
    engine = engine if engine is not None else default_engine()
    # One flat batch: each machine's sweep is a single vectorised model
    # evaluation, and the sweeps run in parallel across machines.
    results = iter(engine.run_many(_scaling_grid(kernel)))
    for machine in PAPER_HPC_MACHINES:
        label = get_machine(machine).label
        fig.series[label] = [
            (n, next(results).mean_mops) for n in _sweep_for(machine)
        ]
    return fig


def figure2(engine: SweepEngine | None = None) -> FigureResult:
    """IS scaling across architectures (class C)."""
    fig = _kernel_scaling_figure(
        2, "is", "IS benchmark performance (OpenMP)", engine=engine
    )
    fig.notes.append("SG2042 plateaus at 16 threads; SG2044 follows the EPYC's curve")
    return fig


def figure3(engine: SweepEngine | None = None) -> FigureResult:
    """MG scaling across architectures (class C)."""
    fig = _kernel_scaling_figure(
        3, "mg", "MG benchmark performance (OpenMP)", engine=engine
    )
    fig.notes.append("whole-chip SG2044 is comparable to 26-core Skylake / 32-core TX2")
    return fig


def figure4(engine: SweepEngine | None = None) -> FigureResult:
    """EP scaling across architectures (class C)."""
    fig = _kernel_scaling_figure(
        4, "ep", "EP benchmark performance (OpenMP)", engine=engine
    )
    fig.notes.append("SG2044 tracks the Skylake core-for-core")
    return fig


def figure5(engine: SweepEngine | None = None) -> FigureResult:
    """CG scaling across architectures (class C)."""
    fig = _kernel_scaling_figure(
        5, "cg", "CG benchmark performance (OpenMP)", engine=engine
    )
    fig.notes.append("TX2 wins core-for-core; 64-core SG2044 beats 32-core TX2")
    return fig


def figure6(engine: SweepEngine | None = None) -> FigureResult:
    """FT scaling across architectures (class C)."""
    fig = _kernel_scaling_figure(
        6, "ft", "FT benchmark performance (OpenMP)", engine=engine
    )
    fig.notes.append("SG2044 parallels the SG2042's trajectory, offset upward")
    return fig


FIGURE_BUILDERS = {
    1: figure1,
    2: figure2,
    3: figure3,
    4: figure4,
    5: figure5,
    6: figure6,
}

_FIGURE_KERNELS = {2: "is", 3: "mg", 4: "ep", 5: "cg", 6: "ft"}


def build_figure(number: int, engine: SweepEngine | None = None) -> FigureResult:
    """Regenerate one paper figure by number (1-6).

    ``engine`` routes the builder's sweep through a specific
    :class:`SweepEngine` (the service passes its job manager's engine);
    ``None`` keeps the process-wide default.
    """
    try:
        builder = FIGURE_BUILDERS[number]
    except KeyError:
        raise KeyError(f"the paper has figures 1-6; no figure {number}") from None
    with obs.span(f"figure{number}"):
        result = builder(engine=engine)
    obs.incr("harness.figures_built")
    return result
