"""Regenerators for every table and figure in the paper's evaluation."""

from .export import export_all
from .figures import FIGURE_BUILDERS, FigureResult, build_figure
from .report import render_csv, render_table
from .scorecard import Score, scorecard
from .tables import TABLE_BUILDERS, TableResult, build_table

__all__ = [
    "FIGURE_BUILDERS",
    "FigureResult",
    "TABLE_BUILDERS",
    "TableResult",
    "build_figure",
    "build_table",
    "export_all",
    "Score",
    "scorecard",
    "render_csv",
    "render_table",
]
