"""Bulk export: write every regenerated table and figure to a directory.

``python -m repro export out/`` produces one CSV per table and figure
(ready for pandas/matplotlib/gnuplot) plus an ``INDEX.md`` mapping files
to the paper's artefacts.

Every file goes through :func:`repro.faults.write_text_atomic`: a crash
(or injected I/O fault) mid-export leaves each artifact either absent,
fully previous or fully new -- never a truncated CSV that would later
parse as a short-but-valid table.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.sweep import default_engine
from repro.faults import write_text_atomic

from .figures import FIGURE_BUILDERS, figure_grid
from .tables import TABLE_BUILDERS, table_grid

__all__ = ["export_all"]


def export_all(
    directory: str | Path,
    tables: tuple[int, ...] | None = None,
    figures: tuple[int, ...] | None = None,
) -> list[Path]:
    """Regenerate and write the selected artefacts; returns written paths.

    Defaults to everything (Tables 1-8, Figures 1-6).  Existing files are
    overwritten -- outputs are deterministic, so that is idempotent.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    table_numbers = tables if tables is not None else tuple(sorted(TABLE_BUILDERS))
    figure_numbers = figures if figures is not None else tuple(sorted(FIGURE_BUILDERS))

    # Flatten the whole export into one megagrid up front: the union of
    # every selected artifact's prefetch grid goes through a single
    # ``run_many``, so the planner evaluates it in one vectorised pass
    # (process-sharded under ``--procs``) and the per-artifact prefetches
    # inside each builder below become pure cache hits.
    prefetch = [c for n in table_numbers for c in table_grid(n)]
    prefetch += [c for n in figure_numbers for c in figure_grid(n)]
    if prefetch:
        default_engine().run_many(prefetch, on_dnr="none")

    written: list[Path] = []
    index_lines = [
        "# Regenerated artefacts",
        "",
        "| file | paper artefact |",
        "|---|---|",
    ]
    for n in table_numbers:
        if n not in TABLE_BUILDERS:
            raise KeyError(f"no table {n} (paper has 1-8)")
        result = TABLE_BUILDERS[n]()
        path = out / f"table{n}.csv"
        write_text_atomic(path, result.to_csv())
        written.append(path)
        index_lines.append(f"| `{path.name}` | Table {n}: {result.title} |")
    for n in figure_numbers:
        if n not in FIGURE_BUILDERS:
            raise KeyError(f"no figure {n} (paper has 1-6)")
        fig = FIGURE_BUILDERS[n]()
        path = out / f"figure{n}.csv"
        write_text_atomic(path, fig.to_csv())
        written.append(path)
        index_lines.append(f"| `{path.name}` | Figure {n}: {fig.title} |")

    index = out / "INDEX.md"
    write_text_atomic(index, "\n".join(index_lines) + "\n")
    written.append(index)
    return written
