"""Typed prediction requests: parsing, deterministic IDs, execution.

Every unit of work the service accepts is normalised into one immutable
:class:`JobRequest` of four kinds:

``sweep``
    An explicit axis grid (machines x kernels x classes x threads x
    compilers x vectorise), expanded through
    :func:`repro.core.sweep.expand_grid` and rendered as one CSV with a
    row per config (DNR cells included).
``table`` / ``figure``
    A paper artefact by number; the request's grid is the artefact's
    prefetch grid (:func:`repro.harness.tables.table_grid` /
    :func:`repro.harness.figures.figure_grid`), and the artifact is the
    regenerated CSV.
``whatif``
    The SG2042 -> SG2044 upgrade-attribution study for one kernel
    (:mod:`repro.explore.whatif`): the cumulative ladder plus each
    upgrade's marginal value, as CSV.

Identity
--------
:func:`request_job_id` derives the job ID from the request's *cache
keys* -- ``sha256`` over the sorted :func:`repro.core.sweep.compute_cache_key`
tuples the request resolves to under the executing engine's runner
settings -- so two requests that would execute the identical work get
the identical ID no matter how their axes were spelled, and the job
manager's dedup composes with the engine's single-flight table: the
first submission executes, every duplicate attaches.

Cost
----
:func:`estimate` is grid-shape based: the number of configs (one model
evaluation each when cold), the number of thread-sweep families (the
engine's unit of scheduling, journaling and fault injection), and how
many configs are already memoised.  The service's admission control and
the campaign planner both read it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.experiment import DEFAULT_RUNS, ExperimentConfig
from repro.core.sweep import SweepEngine, expand_grid

__all__ = [
    "JobRequest",
    "RequestError",
    "parse_request",
    "request_configs",
    "request_job_id",
    "artifact_store_key",
    "estimate",
    "execute_request",
    "KINDS",
]

KINDS = ("sweep", "table", "figure", "whatif")

#: Bump when the artifact rendering for any kind changes shape: the
#: version is folded into job IDs, so a renderer change never serves a
#: stale artifact under the old identity.
RENDER_VERSION = 1


class RequestError(ValueError):
    """A malformed or unsupported request payload (HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One normalised unit of service work."""

    kind: str
    #: table/figure number (``table``/``figure`` kinds only).
    number: int | None = None
    #: expand_grid axes (``sweep`` kind only), already normalised.
    machines: tuple[str, ...] = ()
    kernels: tuple[str, ...] = ()
    classes: tuple[str, ...] = ("C",)
    threads: tuple[int, ...] = (1,)
    compilers: tuple[str | None, ...] = (None,)
    vectorise: bool | None = None
    runs: int = DEFAULT_RUNS
    #: whatif kind only.
    kernel: str | None = None
    n_threads: int = 64

    def spec(self) -> dict:
        """The canonical JSON-safe payload (what status endpoints echo)."""
        if self.kind == "sweep":
            return {
                "kind": "sweep",
                "machines": list(self.machines),
                "kernels": list(self.kernels),
                "classes": list(self.classes),
                "threads": list(self.threads),
                "compilers": list(self.compilers),
                "vectorise": self.vectorise,
                "runs": self.runs,
            }
        if self.kind in ("table", "figure"):
            return {"kind": self.kind, "number": self.number}
        return {"kind": "whatif", "kernel": self.kernel, "threads": self.n_threads}


def _string_axis(payload: dict, name: str, *, required: bool = False) -> tuple:
    value = payload.get(name)
    if value is None:
        if required:
            raise RequestError(f"sweep request needs non-empty {name!r}")
        return (None,)
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or (required and not value):
        raise RequestError(f"{name!r} must be a non-empty list of strings")
    for item in value:
        if not isinstance(item, str):
            raise RequestError(f"{name!r} entries must be strings, got {item!r}")
    return tuple(value)


def _int_axis(payload: dict, name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    value = payload.get(name)
    if value is None:
        return default
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise RequestError(f"{name!r} must be an int or non-empty list of ints")
    out = []
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool) or item < 1:
            raise RequestError(f"{name!r} entries must be ints >= 1, got {item!r}")
        out.append(item)
    return tuple(out)


def parse_request(payload: dict) -> JobRequest:
    """Validate and normalise one JSON request payload.

    Raises :class:`RequestError` (the service maps it to HTTP 400) on
    anything malformed; the returned request is hashable and canonical,
    so equal work parses to equal requests.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in KINDS:
        raise RequestError(f"kind must be one of {list(KINDS)}, got {kind!r}")

    if kind in ("table", "figure"):
        from repro.harness.figures import FIGURE_BUILDERS
        from repro.harness.tables import TABLE_BUILDERS

        number = payload.get("number")
        valid = TABLE_BUILDERS if kind == "table" else FIGURE_BUILDERS
        if not isinstance(number, int) or number not in valid:
            raise RequestError(
                f"{kind} number must be one of {sorted(valid)}, got {number!r}"
            )
        return JobRequest(kind=kind, number=number)

    if kind == "whatif":
        from repro.npb.suite import RUNNERS

        kernel = payload.get("kernel")
        if kernel not in RUNNERS:
            raise RequestError(
                f"whatif kernel must be one of {sorted(RUNNERS)}, got {kernel!r}"
            )
        (n_threads,) = _int_axis(payload, "threads", (64,)) or (64,)
        return JobRequest(kind="whatif", kernel=kernel, n_threads=n_threads)

    machines = _string_axis(payload, "machines", required=True)
    kernels = _string_axis(payload, "kernels", required=True)
    classes = _string_axis(payload, "classes")
    if classes == (None,):
        classes = ("C",)
    for npb_class in classes:
        if npb_class not in tuple("SWABC"):
            raise RequestError(f"classes entries must be S/W/A/B/C, got {npb_class!r}")
    threads = _int_axis(payload, "threads", (1,))
    compilers = _string_axis(payload, "compilers")
    vectorise = payload.get("vectorise")
    if vectorise is not None and not isinstance(vectorise, bool):
        raise RequestError(f"vectorise must be true/false/null, got {vectorise!r}")
    runs = payload.get("runs", DEFAULT_RUNS)
    if not isinstance(runs, int) or isinstance(runs, bool) or runs < 1:
        raise RequestError(f"runs must be an int >= 1, got {runs!r}")
    # Canonicalise the axes (sorted, deduplicated) so two spellings of
    # the same work parse to the same request -- hence the same job ID
    # *and* the same artifact bytes (grid order is axis order).
    request = JobRequest(
        kind="sweep",
        machines=tuple(sorted(set(machines))),
        kernels=tuple(sorted(set(kernels))),
        classes=tuple(sorted(set(classes))),
        threads=tuple(sorted(set(threads))),
        compilers=tuple(sorted(set(compilers), key=lambda c: (c is not None, c or ""))),
        vectorise=vectorise,
        runs=runs,
    )
    # Resolve the grid eagerly so unknown machines/kernels fail at
    # submission time (HTTP 400) rather than inside a worker (FAILED).
    configs = request_configs(request)
    if not configs:
        raise RequestError("sweep request expands to an empty grid")
    from repro.compilers import get_compiler
    from repro.machines import get_machine
    from repro.npb import signature_for

    for config in configs:
        try:
            get_machine(config.machine)
            signature_for(config.kernel, config.npb_class)
            get_compiler(config.resolved_compiler())
        except KeyError as exc:
            raise RequestError(str(exc.args[0])) from None
    return request


def request_configs(request: JobRequest) -> list[ExperimentConfig]:
    """The sweep grid a request resolves to (empty for ``whatif``)."""
    if request.kind == "sweep":
        return expand_grid(
            request.machines,
            request.kernels,
            classes=request.classes,
            thread_counts=request.threads,
            compilers=request.compilers,
            vectorise=request.vectorise,
            runs=request.runs,
        )
    if request.kind == "table":
        from repro.harness.tables import table_grid

        return table_grid(request.number)
    if request.kind == "figure":
        from repro.harness.figures import figure_grid

        return figure_grid(request.number)
    return []


def request_job_id(engine: SweepEngine, request: JobRequest) -> str:
    """Deterministic job ID: the request's work under this engine's settings.

    Keyed by the sorted set of full cache keys (so axis spelling, axis
    order and duplicate entries never mint new identities), the request
    kind plus its non-grid parameters (two kinds can share a grid but
    render different artifacts), and the renderer version.
    """
    keys = sorted(
        repr(engine.cache_key(config)) for config in request_configs(request)
    )
    identity = json.dumps(
        {
            "render": RENDER_VERSION,
            "spec": request.spec(),
            "keys": keys,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(identity.encode()).hexdigest()[:12]
    return f"{request.kind}-{digest}"


def artifact_store_key(job_id: str) -> tuple:
    """The result-store key for a rendered artifact.

    Keyed by the job ID alone: :func:`request_job_id` already folds in
    the renderer version, the request spec and every cache key the work
    resolves to, so a store entry can never serve stale bytes -- any
    change to settings, grid or renderer mints a new identity.
    """
    return ("artifact", job_id)


def estimate(engine: SweepEngine, request: JobRequest) -> dict:
    """Grid-shape cost estimate (and current warmth) for a request."""
    configs = request_configs(request)
    families = {config.family_key() for config in configs}
    return {
        "configs": len(configs),
        "families": len(families),
        "cached": engine.completed_count(configs) if configs else 0,
    }


# ----------------------------------------------------------------------
# Execution / artifact rendering
# ----------------------------------------------------------------------


def _sweep_csv(engine: SweepEngine, configs: list[ExperimentConfig]) -> str:
    """One row per config, in grid order; DNR cells carry the verdict.

    Floats are rendered with ``repr`` (shortest round-trip), so the
    artifact bytes are a pure function of the results -- the byte-
    identity the dedup and crash-resume drills assert end to end.
    """
    results = engine.run_many(configs, on_dnr="none")
    lines = ["machine,kernel,class,threads,compiler,vectorised,time_s,mops,status"]
    for config, result in zip(configs, results):
        prefix = (
            f"{config.machine},{config.kernel},{config.npb_class},"
            f"{config.n_threads},{config.resolved_compiler()},{config.vectorise}"
        )
        if result is None:
            lines.append(f"{prefix},,,DNR")
        else:
            lines.append(f"{prefix},{result.mean_time_s!r},{result.mean_mops!r},ok")
    return "\n".join(lines) + "\n"


def _whatif_csv(request: JobRequest) -> str:
    from repro.explore.whatif import UPGRADES, ablate_upgrade, upgrade_ladder

    lines = ["section,step,mops,factor"]
    for step, mops, gain in upgrade_ladder(request.kernel, request.n_threads):
        lines.append(f"ladder,{step},{mops!r},{gain!r}")
    for upgrade in UPGRADES:
        gain = ablate_upgrade(request.kernel, upgrade.key, request.n_threads)
        lines.append(f"marginal,{upgrade.key},,{gain!r}")
    return "\n".join(lines) + "\n"


def execute_request(engine: SweepEngine, request: JobRequest) -> str:
    """Run a request through ``engine`` and render its CSV artifact.

    Table/figure grids are prefetched through ``engine`` first -- one
    batched ``run_many`` that the engine's planner, single-flight table
    and any attached per-job journal all see -- and the builder itself
    runs against the same ``engine``, so its per-cell lookups are pure
    cache hits and nothing ever leaks onto the process-wide default
    engine behind the job's back.
    """
    configs = request_configs(request)
    if request.kind == "sweep":
        return _sweep_csv(engine, configs)
    if request.kind in ("table", "figure"):
        if configs:
            engine.run_many(configs, on_dnr="none")
        if request.kind == "table":
            from repro.harness import build_table

            return build_table(request.number, engine=engine).to_csv()
        from repro.harness import build_figure

        return build_figure(request.number, engine=engine).to_csv()
    return _whatif_csv(request)
