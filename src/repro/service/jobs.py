"""Job manager: bounded queue, dedup by identity, typed lifecycle.

The service's unit of admission is a :class:`Job` wrapping one
:class:`~repro.service.requests.JobRequest`.  The manager guarantees:

* **Deterministic identity + dedup.**  Job IDs come from
  :func:`~repro.service.requests.request_job_id` (sha256 over the
  request's cache keys), so a duplicate submission -- byte-different
  payload, identical work -- attaches to the existing job instead of
  queueing a second one.  Dedup composes with the sweep engine's
  single-flight/containment machinery: even two *distinct* jobs whose
  grids overlap never execute a shared config twice.
* **Typed lifecycle.**  ``QUEUED -> RUNNING -> DONE | FAILED``,
  ``QUEUED -> CANCELLED`` and -- with a result store attached --
  ``QUEUED -> DONE`` (the artifact was already on disk, so the job never
  occupies a worker); every transition goes through one guarded method
  under one lock, and an illegal transition is a programming error
  (:class:`IllegalTransition`), not a silent state.  Cancelling a QUEUED
  job is immediate and idempotent -- unless duplicates attached to it, in
  which case cancel *detaches* one submission and leaves the original
  submitter's job queued.  A job already RUNNING is past the point of no
  return (execution is memoised and crash-safe, so letting it finish is
  strictly cheaper than tearing it down) and ``cancel`` reports
  ``False``.
* **Restart warmth.**  With a :class:`repro.store.ResultStore` attached
  (the engine's by default), every DONE artifact is published under
  ``("artifact", job_id)`` and every submission checks the store first:
  a duplicate of work any *previous* process finished transitions
  straight to DONE with byte-identical cached bytes, without touching
  the queue or a worker.
* **Bounded admission.**  At most ``queue_size`` jobs wait; beyond that
  submission raises :class:`QueueFull` (HTTP 429), never unbounded
  memory.
* **Crash-safe execution.**  Each job may attach a per-job
  :class:`~repro.faults.SweepJournal`, scoped to exactly its own cache
  keys, so an interrupted service resumes a half-done job's completed
  families on resubmission.

Concurrency discipline (lint rules R009-R011): the single manager lock
guards *state transitions only*.  Queue hand-off uses a stdlib
``queue.Queue`` (never waited on under the lock), job execution and
every engine call happen outside the lock, and completion events are
set after the transition commits.
"""

from __future__ import annotations

import enum
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.sweep import SweepEngine, default_engine
from repro.faults import SweepJournal, write_text_atomic

from .requests import (
    JobRequest,
    artifact_store_key,
    estimate,
    execute_request,
    request_configs,
    request_job_id,
)

__all__ = [
    "JobState",
    "Job",
    "JobManager",
    "QueueFull",
    "IllegalTransition",
    "TRANSITIONS",
]


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: The complete legal transition relation; anything else is a bug.
#: ``QUEUED -> DONE`` is the store-served short-circuit: the artifact
#: was already persisted by a previous process, so the job completes at
#: admission without ever running.
TRANSITIONS: frozenset[tuple[JobState, JobState]] = frozenset(
    {
        (JobState.QUEUED, JobState.RUNNING),
        (JobState.QUEUED, JobState.CANCELLED),
        (JobState.QUEUED, JobState.DONE),
        (JobState.RUNNING, JobState.DONE),
        (JobState.RUNNING, JobState.FAILED),
    }
)


class QueueFull(RuntimeError):
    """The bounded job queue rejected a submission (HTTP 429)."""


class IllegalTransition(RuntimeError):
    """An attempted lifecycle transition outside :data:`TRANSITIONS`."""


@dataclass
class Job:
    """One admitted request plus its mutable lifecycle state.

    Mutable fields are guarded by the owning manager's lock; ``done``
    fires (after the transition commits) on DONE, FAILED and CANCELLED
    alike, so waiters never need to poll a terminal state.
    """

    job_id: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    error: str | None = None
    artifact: str | None = None
    #: How many submissions attached to this job (1 = no duplicates).
    submissions: int = 1
    #: Monotonic admission number (no wall clock anywhere in the service).
    seq: int = 0
    done: threading.Event = field(default_factory=threading.Event)

    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class JobManager:
    """Admit, deduplicate, execute and account for prediction jobs.

    Parameters
    ----------
    engine:
        The :class:`SweepEngine` jobs execute through (the process-wide
        default engine when omitted, so service jobs share cache warmth
        with the CLI regenerators).
    workers:
        Consumer threads.  ``0`` starts none -- tests and the lifecycle
        property drill pump jobs manually via :meth:`run_next`.  Two or
        more let a small request overlap an in-flight large one, which
        is what makes subgrid containment observable over HTTP.
    queue_size:
        Bound on jobs waiting in QUEUED (RUNNING and terminal jobs do
        not count against it).
    artifact_dir:
        When set, every DONE job's artifact is also written to
        ``<artifact_dir>/<job_id>.csv`` via atomic replace.
    journal_dir:
        When set, each sweep-backed job attaches
        ``<journal_dir>/<job_id>.journal`` scoped to its own cache keys
        for the duration of its run: completed families persist as they
        land, and a resubmitted job preloads them.
    store:
        The :class:`repro.store.ResultStore` rendered artifacts are
        published to (and served DONE-from) -- the executing engine's
        store when omitted, so one ``--store`` flag warms both layers.
    """

    def __init__(
        self,
        engine: SweepEngine | None = None,
        workers: int = 2,
        queue_size: int = 64,
        artifact_dir: str | Path | None = None,
        journal_dir: str | Path | None = None,
        store=None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.engine = engine if engine is not None else default_engine()
        self.store = store if store is not None else self.engine.store
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self._queue: queue.Queue[str | None] = queue.Queue(maxsize=queue_size)
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-job-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Lifecycle (every mutation funnels through _transition, under _lock)
    # ------------------------------------------------------------------

    def _transition(self, job: Job, new: JobState) -> None:
        """Move ``job`` to ``new``; must be called with the lock held."""
        if (job.state, new) not in TRANSITIONS:
            raise IllegalTransition(
                f"{job.job_id}: illegal transition {job.state.name} -> {new.name}"
            )
        job.state = new

    # ------------------------------------------------------------------
    # Submission / dedup
    # ------------------------------------------------------------------

    def _attach_locked(self, job_id: str) -> Job | None:
        """Dedup-attach to a live (or DONE) job; must hold the lock."""
        existing = self._jobs.get(job_id)
        if existing is not None and existing.state not in (
            JobState.FAILED,
            JobState.CANCELLED,
        ):
            existing.submissions += 1
            obs.incr("service.dedup_attached")
            return existing
        return None

    def _store_artifact(self, job_id: str) -> str | None:
        """A previously-published artifact for this identity (or None)."""
        if self.store is None:
            return None
        value = self.store.get(artifact_store_key(job_id))
        return value if isinstance(value, str) else None

    def submit(self, request: JobRequest) -> tuple[Job, bool]:
        """Admit a request; returns ``(job, deduplicated)``.

        A request whose job already exists in a non-terminal state (or
        finished successfully) attaches to it.  FAILED and CANCELLED
        jobs do not block resubmission: the same ID is re-queued fresh.
        With a store attached, an identity whose artifact is already
        persisted (by any previous process) is admitted straight to DONE
        -- cached bytes, no queue slot, no worker.  Raises
        :class:`QueueFull` when the bounded queue rejects the job.
        """
        job_id = request_job_id(self.engine, request)
        obs.incr("service.submitted")
        with self._lock:
            existing = self._attach_locked(job_id)
            if existing is not None:
                return existing, True
        # The store read is file I/O: outside the lock, then re-check --
        # a racing duplicate may have admitted this identity meanwhile.
        cached = self._store_artifact(job_id)
        with self._lock:
            existing = self._attach_locked(job_id)
            if existing is not None:
                return existing, True
            self._seq += 1
            job = Job(job_id=job_id, request=request, seq=self._seq)
            if cached is not None:
                job.artifact = cached
                self._transition(job, JobState.DONE)
                self._jobs[job_id] = job
                obs.incr("service.store_served")
                obs.incr("service.completed")
            else:
                try:
                    self._queue.put_nowait(job_id)
                except queue.Full:
                    obs.incr("service.rejected")
                    raise QueueFull(
                        f"job queue full ({self._queue.maxsize} waiting); retry later"
                    ) from None
                self._jobs[job_id] = job
                obs.incr("service.queued")
        if cached is not None:
            self._write_artifact_file(job)
            job.done.set()
        return job, False

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job.  Idempotent: True again if already CANCELLED.

        Returns False for RUNNING/DONE/FAILED jobs (too late) and for
        unknown IDs.  A QUEUED job that duplicates attached to is *not*
        torn down under them: cancel detaches one submission (True --
        the caller's interest is gone) and the job stays QUEUED for the
        remaining submitters.  The queue entry of a genuinely cancelled
        job is left behind and lazily skipped by whichever worker
        dequeues it.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return False
            if job.state is JobState.CANCELLED:
                return True
            if job.state is not JobState.QUEUED:
                return False
            if job.submissions > 1:
                job.submissions -= 1
                obs.incr("service.cancel_detached")
                return True
            self._transition(job, JobState.CANCELLED)
            obs.incr("service.cancelled")
        job.done.set()
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._run_one(job_id)

    def run_next(self) -> Job | None:
        """Manually pump one queued job to completion (workers=0 mode).

        Returns the job it ran (in its terminal state), or ``None`` when
        the queue is empty.  Cancelled entries are consumed and skipped
        exactly as a worker thread would.
        """
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return None
            if job_id is None:
                continue
            job = self._run_one(job_id)
            if job is not None:
                return job

    def _run_one(self, job_id: str) -> Job | None:
        """Claim one dequeued job, execute it, commit its terminal state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return None  # cancelled (or superseded) while waiting
            self._transition(job, JobState.RUNNING)
            obs.incr("service.started")
        journal = self._attach_job_journal(job)
        try:
            obs.incr("service.executions")
            artifact = execute_request(self.engine, job.request)
        except Exception as exc:
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                self._transition(job, JobState.FAILED)
                obs.incr("service.failed")
            job.done.set()
            return job
        finally:
            if journal is not None:
                self.engine.detach_journal(journal)
        if self.store is not None:
            self.store.put(artifact_store_key(job.job_id), artifact)
            obs.incr("service.artifacts_published")
        with self._lock:
            job.artifact = artifact
            self._transition(job, JobState.DONE)
            obs.incr("service.completed")
        self._write_artifact_file(job)
        job.done.set()
        return job

    def _write_artifact_file(self, job: Job) -> None:
        """Mirror a DONE job's artifact into ``artifact_dir`` (when set)."""
        if self.artifact_dir is None or job.artifact is None:
            return
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        write_text_atomic(self.artifact_dir / f"{job.job_id}.csv", job.artifact)

    def _attach_job_journal(self, job: Job):
        """Attach this job's scoped journal (None when journaling is off)."""
        if self.journal_dir is None:
            return None
        configs = request_configs(job.request)
        if not configs:
            return None
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        journal = SweepJournal(self.journal_dir / f"{job.job_id}.journal")
        keys = [self.engine.cache_key(config) for config in configs]
        self.engine.attach_journal(journal, keys=keys)
        return journal

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def artifact(self, job_id: str) -> str | None:
        """A DONE job's artifact text (None otherwise)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.DONE:
                return None
            return job.artifact

    def jobs(self) -> list[Job]:
        """All known jobs in admission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    @property
    def queue_size(self) -> int:
        """The admission bound (what /health reports)."""
        return self._queue.maxsize

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the /health conservation numbers)."""
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def status(self, job_id: str) -> dict | None:
        """The JSON status document for one job (None for unknown IDs)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            state = job.state
            error = job.error
            submissions = job.submissions
            has_artifact = job.artifact is not None
            request = job.request
        # Cost/progress read the engine outside the manager lock: the
        # engine takes its own lock and must never nest under ours.
        cost = estimate(self.engine, request)
        total = cost["configs"]
        return {
            "job_id": job_id,
            "kind": request.kind,
            "state": state.value,
            "error": error,
            "submissions": submissions,
            "artifact_ready": has_artifact,
            "estimate": {"configs": total, "families": cost["families"]},
            "progress": {"completed": cost["cached"], "total": total},
            "request": request.spec(),
        }

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until a job reaches a terminal state (True) or timeout."""
        job = self.get(job_id)
        if job is None:
            return False
        return job.done.wait(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker threads (queued jobs stay QUEUED)."""
        for _ in self._workers:
            try:
                self._queue.put(None, timeout=timeout)
            except queue.Full:  # a saturated queue still drains: workers exit on join timeout
                break
        for thread in self._workers:
            thread.join(timeout)
