"""repro.service -- prediction-as-a-service over the sweep engine.

Three layers, each usable on its own:

* :mod:`repro.service.requests` -- typed request specs (sweep / table /
  figure / whatif), deterministic job identity derived from
  :func:`repro.core.sweep.compute_cache_key`, grid-size cost estimation
  and artifact rendering.
* :mod:`repro.service.jobs` -- the :class:`JobManager`: bounded queue,
  submission dedup, the QUEUED/RUNNING/DONE/FAILED/CANCELLED lifecycle
  behind one lock, per-job crash-safe journals.
* :mod:`repro.service.api` -- the stdlib HTTP front-end
  (``repro serve``) with ``/health`` and ``/stats`` wired straight into
  :mod:`repro.obs`.

:mod:`repro.service.campaign` fans a YAML scenario file out into jobs
(``repro campaign run``), with journal-sidecar resume, store-backed
artifact restore and a dependency-aware parallel scheduler (``needs``).

When the engine carries a :class:`repro.store.ResultStore`, the job
manager also publishes every finished artifact under
:func:`~repro.service.requests.artifact_store_key` and serves repeat
submissions straight from the store (QUEUED -> DONE without occupying
a worker), so a restarted service answers warm immediately.
"""

from .api import ServiceServer, create_server, serve
from .campaign import (
    Scenario,
    ScenarioError,
    ScenarioJob,
    load_scenario,
    plan_campaign,
    run_campaign,
)
from .jobs import TRANSITIONS, IllegalTransition, Job, JobManager, JobState, QueueFull
from .requests import (
    JobRequest,
    RequestError,
    artifact_store_key,
    estimate,
    execute_request,
    parse_request,
    request_configs,
    request_job_id,
)

__all__ = [
    "ServiceServer",
    "create_server",
    "serve",
    "Scenario",
    "ScenarioError",
    "ScenarioJob",
    "load_scenario",
    "plan_campaign",
    "run_campaign",
    "TRANSITIONS",
    "IllegalTransition",
    "Job",
    "JobManager",
    "JobState",
    "QueueFull",
    "JobRequest",
    "RequestError",
    "artifact_store_key",
    "estimate",
    "execute_request",
    "parse_request",
    "request_configs",
    "request_job_id",
]
