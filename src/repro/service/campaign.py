"""YAML-driven campaigns: fan a scenario file out into sweep jobs.

A *scenario* is a YAML document naming a list of jobs (the same four
request kinds the HTTP API accepts)::

    name: sg2044-vs-field
    jobs:
      - name: single-core        # file stem and journal identity
        kind: sweep
        machines: [sg2042, sg2044]
        kernels: [is, ep, mg, cg]
        threads: [1, 2, 4]
      - name: table6
        kind: table
        number: 6
      - name: whatif-ep
        kind: whatif
        kernel: ep
        threads: 64
        needs: [single-core]     # runs only after single-core lands

:func:`run_campaign` executes the jobs through one engine, writes each
artifact to ``<out>/<name>.csv`` (atomic replace), and finishes with a
``MANIFEST.json`` mapping job names to artifacts, job IDs and cost
estimates -- always in scenario order, however the jobs were scheduled.

Jobs may declare ``needs`` (a name or list of names); independent jobs
run concurrently when ``run_campaign`` is given ``jobs > 1``, bounded
by that worker count, with span handles opened in scenario order so
the obs tree stays deterministic.  A dependency cycle, a self edge or
an unknown name is a :class:`ScenarioError` at load time.

Crash-safe resume is the point, at two tiers.  Every sweep-backed job
attaches a journal sidecar ``<out>/<name>.journal`` scoped to its own
cache keys, so completed thread-sweep families persist the moment they
land.  When the engine carries a :class:`repro.store.ResultStore`, a
finished job's whole rendered artifact is also published under
``("artifact", job_id)`` -- a restarted campaign restores those jobs
byte-for-byte without executing a single config (counted as
``campaign.store_restores``), and the per-config store preload inside
the engine warms whatever the artifact tier missed.  A campaign killed
mid-run and restarted with the same scenario and output directory
re-executes only the missing work and produces byte-identical
artifacts to an uninterrupted run (the crash drill in
``tests/service/test_campaign.py`` asserts exactly that, with the kill
delivered by ``repro.faults`` injection at the ``campaign.job`` probe
site).
"""

from __future__ import annotations

import json
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.core.sweep import SweepEngine
from repro.faults import SweepJournal, write_text_atomic

from .requests import (
    JobRequest,
    RequestError,
    artifact_store_key,
    estimate,
    execute_request,
    parse_request,
    request_configs,
    request_job_id,
)

__all__ = [
    "ScenarioError",
    "ScenarioJob",
    "Scenario",
    "load_scenario",
    "plan_campaign",
    "run_campaign",
]

MANIFEST_NAME = "MANIFEST.json"


class ScenarioError(ValueError):
    """A scenario file that cannot be run (parse or validation failure)."""


@dataclass(frozen=True)
class ScenarioJob:
    name: str
    request: JobRequest
    needs: tuple[str, ...] = field(default=())


@dataclass(frozen=True)
class Scenario:
    name: str
    jobs: tuple[ScenarioJob, ...]


def _parse_needs(path: Path, i: int, raw) -> tuple[str, ...]:
    if raw is None:
        return ()
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not all(
        isinstance(n, str) and n for n in raw
    ):
        raise ScenarioError(
            f"{path}: jobs[{i}] 'needs' must be a job name or list of job names"
        )
    return tuple(dict.fromkeys(raw))


def _check_acyclic(path: Path, jobs: list[ScenarioJob]) -> None:
    """Reject dependency cycles with an iterative three-colour DFS."""
    needs = {job.name: job.needs for job in jobs}
    state: dict[str, int] = {}  # 1 = on stack, 2 = done
    for root in needs:
        if state.get(root):
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        while stack:
            name, edge = stack[-1]
            if edge == 0:
                state[name] = 1
            if edge < len(needs[name]):
                stack[-1] = (name, edge + 1)
                dep = needs[name][edge]
                if state.get(dep) == 1:
                    raise ScenarioError(
                        f"{path}: dependency cycle through {dep!r} (via {name!r})"
                    )
                if not state.get(dep):
                    stack.append((dep, 0))
            else:
                state[name] = 2
                stack.pop()


def load_scenario(path: str | Path) -> Scenario:
    """Parse and validate one scenario YAML file."""
    import yaml

    path = Path(path)
    try:
        data = yaml.safe_load(path.read_text(encoding="utf-8"))
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{path}: not valid YAML: {exc}") from None
    except OSError as exc:
        raise ScenarioError(f"{path}: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioError(f"{path}: scenario must be a YAML mapping")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{path}: scenario needs a non-empty 'name'")
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise ScenarioError(f"{path}: scenario needs a non-empty 'jobs' list")
    jobs: list[ScenarioJob] = []
    seen: set[str] = set()
    for i, raw in enumerate(raw_jobs):
        if not isinstance(raw, dict):
            raise ScenarioError(f"{path}: jobs[{i}] must be a mapping")
        job_name = raw.get("name")
        if not isinstance(job_name, str) or not job_name:
            raise ScenarioError(f"{path}: jobs[{i}] needs a non-empty 'name'")
        if "/" in job_name or job_name != job_name.strip():
            raise ScenarioError(
                f"{path}: jobs[{i}] name {job_name!r} must be a plain file stem"
            )
        if job_name in seen:
            raise ScenarioError(f"{path}: duplicate job name {job_name!r}")
        seen.add(job_name)
        needs = _parse_needs(path, i, raw.get("needs"))
        if job_name in needs:
            raise ScenarioError(f"{path}: jobs[{i}] {job_name!r} needs itself")
        payload = {k: v for k, v in raw.items() if k not in ("name", "needs")}
        try:
            request = parse_request(payload)
        except RequestError as exc:
            raise ScenarioError(f"{path}: jobs[{i}] ({job_name!r}): {exc}") from None
        jobs.append(ScenarioJob(name=job_name, request=request, needs=needs))
    names = {job.name for job in jobs}
    for i, job in enumerate(jobs):
        for dep in job.needs:
            if dep not in names:
                raise ScenarioError(
                    f"{path}: jobs[{i}] ({job.name!r}) needs unknown job {dep!r}"
                )
    _check_acyclic(path, jobs)
    return Scenario(name=name, jobs=tuple(jobs))


def plan_campaign(scenario: Scenario, engine: SweepEngine | None = None) -> list[dict]:
    """Cost-estimate every job without executing anything."""
    engine = engine if engine is not None else SweepEngine()
    out = []
    for job in scenario.jobs:
        cost = estimate(engine, job.request)
        out.append(
            {
                "name": job.name,
                "job_id": request_job_id(engine, job.request),
                "kind": job.request.kind,
                **cost,
            }
        )
    return out


def _run_campaign_job(
    engine: SweepEngine, out: Path, job: ScenarioJob, span_handle
) -> dict:
    """Execute (or store-restore) one job; returns its manifest entry."""
    obs.incr("campaign.jobs")
    with obs.activate(span_handle):
        faults.inject("campaign.job", job.name, kinds=("transient", "slow"))
        configs = request_configs(job.request)
        journal_path = out / f"{job.name}.journal"
        job_id = request_job_id(engine, job.request)
        store = engine.store
        cached = (
            store.get(artifact_store_key(job_id)) if store is not None else None
        )
        if isinstance(cached, str):
            obs.incr("campaign.store_restores")
            artifact = cached
        else:
            journal = None
            if configs:
                journal = SweepJournal(journal_path)
                resumed = len(journal)
                if resumed:
                    obs.incr("campaign.resumed_entries", resumed)
                keys = [engine.cache_key(config) for config in configs]
                engine.attach_journal(journal, keys=keys)
            try:
                artifact = execute_request(engine, job.request)
            finally:
                if journal is not None:
                    engine.detach_journal(journal)
            if store is not None:
                store.put(artifact_store_key(job_id), artifact)
        artifact_path = out / f"{job.name}.csv"
        write_text_atomic(artifact_path, artifact)
        obs.incr("campaign.artifacts_written")
        cost = estimate(engine, job.request)
        return {
            "name": job.name,
            "artifact": artifact_path.name,
            "job_id": job_id,
            "kind": job.request.kind,
            "configs": cost["configs"],
            "families": cost["families"],
            "journal": journal_path.name if configs else None,
        }


def _topo_order(scenario: Scenario) -> list[ScenarioJob]:
    """Scenario order, deferring any job past the jobs it needs."""
    done: set[str] = set()
    order: list[ScenarioJob] = []
    remaining = list(scenario.jobs)
    while remaining:
        deferred = []
        for job in remaining:
            if all(dep in done for dep in job.needs):
                order.append(job)
                done.add(job.name)
            else:
                deferred.append(job)
        if len(deferred) == len(remaining):  # pragma: no cover
            raise ScenarioError(
                f"unschedulable jobs {[j.name for j in deferred]!r}"
            )  # load_scenario rejected cycles, so this cannot happen
        remaining = deferred
    return order


def _run_parallel(
    engine: SweepEngine,
    out: Path,
    scenario: Scenario,
    handles: dict,
    workers: int,
) -> dict[str, dict]:
    """Dependency-aware scheduler: ready jobs run concurrently.

    Launch order is deterministic (scenario order within each ready
    set); completion order is not, which is why span handles were
    opened by the caller before any worker ran.  On the first failure
    no new jobs launch; in-flight ones drain, unreachable handles are
    abandoned, and the failure re-raises.
    """
    deps_left = {job.name: set(job.needs) for job in scenario.jobs}
    dependents: dict[str, list[str]] = {job.name: [] for job in scenario.jobs}
    for job in scenario.jobs:
        for dep in job.needs:
            dependents[dep].append(job.name)
    results: dict[str, dict] = {}
    failure: Exception | None = None
    launched: set[str] = set()
    pool = ThreadPoolExecutor(max_workers=workers)
    try:
        in_flight = {}

        def launch_ready() -> None:
            for job in scenario.jobs:
                if job.name in launched or deps_left[job.name]:
                    continue
                launched.add(job.name)
                fut = pool.submit(
                    _run_campaign_job, engine, out, job, handles[job.name]
                )
                in_flight[fut] = job.name

        launch_ready()
        while in_flight:
            finished, _ = futures_wait(in_flight, return_when=FIRST_COMPLETED)
            for fut in finished:
                name = in_flight.pop(fut)
                try:
                    results[name] = fut.result()
                except Exception as exc:  # repro: noqa[R007] -- collected and re-raised below once in-flight jobs drain
                    if failure is None:
                        failure = exc
                    continue
                for dep_name in dependents[name]:
                    deps_left[dep_name].discard(name)
            if failure is None:
                launch_ready()
    finally:
        pool.shutdown(wait=True)
        for job in scenario.jobs:
            if job.name not in launched:
                obs.abandon_span(handles[job.name])
    if failure is not None:
        raise failure
    return results


def run_campaign(
    scenario: Scenario,
    out_dir: str | Path,
    engine: SweepEngine | None = None,
    jobs: int | None = None,
) -> dict:
    """Execute a scenario's jobs; returns the manifest dict.

    ``jobs`` bounds how many scenario jobs run concurrently (default 1:
    strictly sequential, in scenario order deferred past ``needs``
    edges).  Parallelism below that still lives inside the engine --
    its thread pool, planner and ``--procs`` sharding -- and the store
    plus per-job journals make every artifact identical whichever way
    the schedule interleaved.  Artifacts and the manifest go through
    atomic writes, so an interrupted campaign leaves only complete
    files plus resumable journals; re-running it is both the resume
    path and a cheap no-op when everything already landed.
    """
    engine = engine if engine is not None else SweepEngine()
    workers = 1 if jobs is None else int(jobs)
    if workers < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    with obs.span("campaign"):
        # Span handles open in scenario order so the obs tree's shape is
        # fixed before any scheduling decision is made.
        handles = {job.name: obs.open_span(f"campaign[{job.name}]") for job in scenario.jobs}
        if workers == 1 or len(scenario.jobs) == 1:
            results = {}
            started: set[str] = set()
            try:
                for job in _topo_order(scenario):
                    started.add(job.name)
                    results[job.name] = _run_campaign_job(
                        engine, out, job, handles[job.name]
                    )
            finally:
                for job in scenario.jobs:
                    if job.name not in started:
                        obs.abandon_span(handles[job.name])
        else:
            results = _run_parallel(engine, out, scenario, handles, workers)
    manifest_jobs = [results[job.name] for job in scenario.jobs]
    manifest = {"scenario": scenario.name, "jobs": manifest_jobs}
    write_text_atomic(
        out / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return manifest
