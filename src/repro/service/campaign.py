"""YAML-driven campaigns: fan a scenario file out into sweep jobs.

A *scenario* is a YAML document naming a list of jobs (the same four
request kinds the HTTP API accepts)::

    name: sg2044-vs-field
    jobs:
      - name: single-core        # file stem and journal identity
        kind: sweep
        machines: [sg2042, sg2044]
        kernels: [is, ep, mg, cg]
        threads: [1, 2, 4]
      - name: table6
        kind: table
        number: 6
      - name: whatif-ep
        kind: whatif
        kernel: ep
        threads: 64

:func:`run_campaign` executes the jobs in order through one engine,
writes each artifact to ``<out>/<name>.csv`` (atomic replace), and
finishes with a ``MANIFEST.json`` mapping job names to artifacts, job
IDs and cost estimates.

Crash-safe resume is the point: every sweep-backed job attaches a
journal sidecar ``<out>/<name>.journal`` scoped to its own cache keys,
so completed thread-sweep families persist the moment they land.  A
campaign killed mid-run and restarted with the same scenario and output
directory preloads those journals, re-executes only the missing
families, and produces byte-identical artifacts to an uninterrupted
run (the crash drill in ``tests/service/test_campaign.py`` asserts
exactly that, with the kill delivered by ``repro.faults`` injection at
the ``campaign.job`` probe site).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro import faults, obs
from repro.core.sweep import SweepEngine
from repro.faults import SweepJournal, write_text_atomic

from .requests import (
    JobRequest,
    RequestError,
    estimate,
    execute_request,
    parse_request,
    request_configs,
    request_job_id,
)

__all__ = [
    "ScenarioError",
    "ScenarioJob",
    "Scenario",
    "load_scenario",
    "plan_campaign",
    "run_campaign",
]

MANIFEST_NAME = "MANIFEST.json"


class ScenarioError(ValueError):
    """A scenario file that cannot be run (parse or validation failure)."""


@dataclass(frozen=True)
class ScenarioJob:
    name: str
    request: JobRequest


@dataclass(frozen=True)
class Scenario:
    name: str
    jobs: tuple[ScenarioJob, ...]


def load_scenario(path: str | Path) -> Scenario:
    """Parse and validate one scenario YAML file."""
    import yaml

    path = Path(path)
    try:
        data = yaml.safe_load(path.read_text(encoding="utf-8"))
    except yaml.YAMLError as exc:
        raise ScenarioError(f"{path}: not valid YAML: {exc}") from None
    except OSError as exc:
        raise ScenarioError(f"{path}: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioError(f"{path}: scenario must be a YAML mapping")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError(f"{path}: scenario needs a non-empty 'name'")
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise ScenarioError(f"{path}: scenario needs a non-empty 'jobs' list")
    jobs: list[ScenarioJob] = []
    seen: set[str] = set()
    for i, raw in enumerate(raw_jobs):
        if not isinstance(raw, dict):
            raise ScenarioError(f"{path}: jobs[{i}] must be a mapping")
        job_name = raw.get("name")
        if not isinstance(job_name, str) or not job_name:
            raise ScenarioError(f"{path}: jobs[{i}] needs a non-empty 'name'")
        if "/" in job_name or job_name != job_name.strip():
            raise ScenarioError(
                f"{path}: jobs[{i}] name {job_name!r} must be a plain file stem"
            )
        if job_name in seen:
            raise ScenarioError(f"{path}: duplicate job name {job_name!r}")
        seen.add(job_name)
        payload = {k: v for k, v in raw.items() if k != "name"}
        try:
            request = parse_request(payload)
        except RequestError as exc:
            raise ScenarioError(f"{path}: jobs[{i}] ({job_name!r}): {exc}") from None
        jobs.append(ScenarioJob(name=job_name, request=request))
    return Scenario(name=name, jobs=tuple(jobs))


def plan_campaign(scenario: Scenario, engine: SweepEngine | None = None) -> list[dict]:
    """Cost-estimate every job without executing anything."""
    engine = engine if engine is not None else SweepEngine()
    out = []
    for job in scenario.jobs:
        cost = estimate(engine, job.request)
        out.append(
            {
                "name": job.name,
                "job_id": request_job_id(engine, job.request),
                "kind": job.request.kind,
                **cost,
            }
        )
    return out


def run_campaign(
    scenario: Scenario,
    out_dir: str | Path,
    engine: SweepEngine | None = None,
) -> dict:
    """Execute a scenario's jobs in order; returns the manifest dict.

    Jobs run sequentially (parallelism lives *inside* the engine: its
    thread pool, planner and ``--procs`` sharding), each under a
    ``campaign.job`` fault-injection probe and -- for sweep-backed kinds
    -- a per-job journal sidecar.  Artifacts and the manifest go through
    atomic writes, so an interrupted campaign leaves only complete
    files plus resumable journals; re-running it is both the resume path
    and a cheap no-op when everything already landed.
    """
    engine = engine if engine is not None else SweepEngine()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    manifest_jobs: list[dict] = []
    with obs.span("campaign"):
        for job in scenario.jobs:
            obs.incr("campaign.jobs")
            with obs.span(f"campaign[{job.name}]"):
                faults.inject("campaign.job", job.name, kinds=("transient", "slow"))
                configs = request_configs(job.request)
                journal = None
                journal_path = out / f"{job.name}.journal"
                if configs:
                    journal = SweepJournal(journal_path)
                    resumed = len(journal)
                    if resumed:
                        obs.incr("campaign.resumed_entries", resumed)
                    keys = [engine.cache_key(config) for config in configs]
                    engine.attach_journal(journal, keys=keys)
                try:
                    artifact = execute_request(engine, job.request)
                finally:
                    if journal is not None:
                        engine.detach_journal(journal)
                artifact_path = out / f"{job.name}.csv"
                write_text_atomic(artifact_path, artifact)
                obs.incr("campaign.artifacts_written")
                cost = estimate(engine, job.request)
                manifest_jobs.append(
                    {
                        "name": job.name,
                        "artifact": artifact_path.name,
                        "job_id": request_job_id(engine, job.request),
                        "kind": job.request.kind,
                        "configs": cost["configs"],
                        "families": cost["families"],
                        "journal": journal_path.name if configs else None,
                    }
                )
    manifest = {"scenario": scenario.name, "jobs": manifest_jobs}
    write_text_atomic(
        out / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return manifest
