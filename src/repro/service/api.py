"""HTTP API over the job manager (stdlib ``ThreadingHTTPServer``).

Endpoints (all JSON unless noted)::

    GET  /health                     liveness + job-state conservation counts
                                     + the latest bench-trajectory summary
    GET  /stats                      repro.obs counters and span tree (schema v1)
                                     + store stats and the bench trajectory
    POST /api/v1/jobs                submit a request -> 202 {job_id, ...}
    GET  /api/v1/jobs                list known jobs (admission order)
    GET  /api/v1/jobs/<id>           job status; ?wait=SECONDS blocks until
                                     terminal (or the deadline) before answering
    GET  /api/v1/jobs/<id>/artifact  the finished artifact (text/csv)
    POST /api/v1/jobs/<id>/cancel    cancel a queued job

Error mapping: malformed requests are 400 with a JSON ``error`` body, an
unknown job is 404, a full queue is 429, and any unexpected handler
failure is a 500 that names the exception instead of a closed socket.
The server itself holds no job state -- everything lives in the
:class:`~repro.service.jobs.JobManager`, so a server restart in front
of journal-backed jobs loses nothing but the in-memory lifecycle table.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.obs.export import report_dict

from .jobs import JobManager, JobState, QueueFull
from .requests import RequestError, parse_request

__all__ = ["ServiceServer", "create_server", "serve"]

API_PREFIX = "/api/v1/jobs"


def _bench_trajectory() -> dict | None:
    """The latest recorded perf-trajectory summary, or ``None``.

    Reads the append-only bench history (``REPRO_BENCH_HISTORY`` or
    ``benchmarks/history`` relative to the service's working
    directory).  Missing or unreadable history degrades to ``None`` --
    an ops endpoint must never fail because no benches ran yet.
    """
    import os

    from repro.bench.history import trajectory_summary

    root = os.environ.get("REPRO_BENCH_HISTORY", "benchmarks/history")
    try:
        return trajectory_summary(root)
    except Exception:
        return None

#: Submissions larger than this are rejected up front (HTTP 413): cost
#: estimation is exactly what lets the service refuse a grid it should
#: shard through the campaign runner instead.
MAX_CONFIGS_PER_JOB = 20_000


class ServiceServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer carrying its job manager."""

    daemon_threads = True

    def __init__(self, address, manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        pass  # request logging is obs counters, not stderr lines

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def _send_json(self, code: int, payload: dict | list) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body (expected a JSON object)")
        try:
            return json.loads(raw)
        except ValueError:
            raise RequestError("request body is not valid JSON") from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        obs.incr("service.http_requests")
        try:
            self._route_get()
        except Exception as exc:
            obs.incr("service.http_errors")
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802
        obs.incr("service.http_requests")
        try:
            self._route_post()
        except Exception as exc:
            obs.incr("service.http_errors")
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _route_get(self) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/health":
            self._get_health()
        elif url.path == "/stats":
            self._get_stats()
        elif url.path == API_PREFIX:
            self._get_jobs()
        elif len(parts) == 4 and self.path.startswith(API_PREFIX + "/"):
            # /api/v1/jobs/<id>
            self._get_job(parts[3], parse_qs(url.query))
        elif (
            len(parts) == 5
            and url.path.startswith(API_PREFIX + "/")
            and parts[4] == "artifact"
        ):
            self._get_artifact(parts[3])
        else:
            self._error(404, f"no such endpoint: GET {url.path}")

    def _route_post(self) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == API_PREFIX:
            self._post_job()
        elif (
            len(parts) == 5
            and url.path.startswith(API_PREFIX + "/")
            and parts[4] == "cancel"
        ):
            self._post_cancel(parts[3])
        else:
            self._error(404, f"no such endpoint: POST {url.path}")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _get_health(self) -> None:
        counts = self.manager.counts()
        store = self.manager.store
        self._send_json(
            200,
            {
                "status": "ok",
                "jobs": counts,
                "jobs_total": sum(counts.values()),
                "queue_size": self.manager.queue_size,
                "engine": {
                    "jobs": self.manager.engine.jobs,
                    "procs": self.manager.engine.procs,
                },
                "store": store.stats() if store is not None else None,
                "bench": _bench_trajectory(),
            },
        )

    def _get_stats(self) -> None:
        """The live obs report: counters + merged span tree, schema v1.

        Timings are the report's only volatile section and are included
        -- /stats is an ops endpoint, not a golden artifact; tests that
        want determinism drop the ``timings`` key.
        """
        report = report_dict(obs.recorder())
        report["service"] = {"jobs": self.manager.counts()}
        store = self.manager.store
        if store is not None:
            report["store"] = store.stats()
        report["bench"] = _bench_trajectory()
        self._send_json(200, report)

    def _get_jobs(self) -> None:
        payload = [
            {"job_id": job.job_id, "kind": job.request.kind, "state": job.state.value}
            for job in self.manager.jobs()
        ]
        self._send_json(200, payload)

    def _get_job(self, job_id: str, query: dict) -> None:
        wait = query.get("wait")
        if wait:
            try:
                timeout = float(wait[0])
            except ValueError:
                self._error(400, f"wait must be a number of seconds, got {wait[0]!r}")
                return
            self.manager.wait(job_id, timeout=timeout)
        status = self.manager.status(job_id)
        if status is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send_json(200, status)

    def _get_artifact(self, job_id: str) -> None:
        job = self.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        artifact = self.manager.artifact(job_id)
        if artifact is None:
            self._error(
                409, f"job {job_id} is {job.state.value}, artifact not available"
            )
            return
        obs.incr("service.artifacts_served")
        self._send_text(200, artifact, "text/csv")

    def _post_job(self) -> None:
        try:
            request = parse_request(self._read_body())
        except RequestError as exc:
            obs.incr("service.bad_requests")
            self._error(400, str(exc))
            return
        from .requests import estimate

        cost = estimate(self.manager.engine, request)
        if cost["configs"] > MAX_CONFIGS_PER_JOB:
            obs.incr("service.rejected")
            self._error(
                413,
                f"grid of {cost['configs']} configs exceeds the per-job limit "
                f"of {MAX_CONFIGS_PER_JOB}; split it into a campaign",
            )
            return
        try:
            job, deduplicated = self.manager.submit(request)
        except QueueFull as exc:
            self._error(429, str(exc))
            return
        self._send_json(
            202,
            {
                "job_id": job.job_id,
                "state": job.state.value,
                "deduplicated": deduplicated,
                "estimate": {
                    "configs": cost["configs"],
                    "families": cost["families"],
                },
            },
        )

    def _post_cancel(self, job_id: str) -> None:
        job = self.manager.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        cancelled = self.manager.cancel(job_id)
        self._send_json(
            200, {"job_id": job_id, "cancelled": cancelled, "state": job.state.value}
        )


def create_server(host: str, port: int, manager: JobManager) -> ServiceServer:
    """Bind (port 0 picks an ephemeral port; read ``server_port``)."""
    return ServiceServer((host, port), manager)


def serve(host: str, port: int, manager: JobManager) -> None:  # pragma: no cover
    """Run the API server until interrupted (the ``repro serve`` loop)."""
    server = create_server(host, port, manager)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        manager.shutdown()
