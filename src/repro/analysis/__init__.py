"""Repo-aware static analysis: the invariants the harness only promised.

PR 1's correctness guarantees are conventions -- seeded ``Generator``
streams so SweepEngine memoisation stays byte-identical, lock-guarded
module-level caches, suffix-carrying unit names in the machine catalog and
performance model, scalar/grid method parity in :class:`PerformanceModel`.
This package turns those conventions into machine-checked lint rules:

=====  ===============================================================
R001   determinism -- no global-state RNG or wall-clock on model paths
R002   concurrency -- module-level mutable state only under a lock
R003   units -- no arithmetic across ``_bytes``/``_ghz``/``_ns``/... suffixes
R004   catalog -- Table 5 invariants on machine-catalog literals
R005   parity -- scalar/``_grid`` twins and complete kernel registration
=====  ===============================================================

Entry points: :func:`run_analysis` (programmatic), ``repro lint`` (CLI),
``make lint`` (CI).  Suppress a finding in place with
``# repro: noqa[R00x]`` on the offending line.
"""

from __future__ import annotations

from .core import (
    AnalysisReport,
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    run_analysis,
)
from .registry import all_rules, get_rule, register, rules_for
from .reporting import render_json, render_text

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceModule",
    "run_analysis",
    "all_rules",
    "get_rule",
    "register",
    "rules_for",
    "render_text",
    "render_json",
]
