"""Rule registry: code -> rule class, with CLI-facing selection helpers."""

from __future__ import annotations

from .core import Rule

__all__ = ["register", "all_rules", "get_rule", "rules_for", "registered_codes"]

_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (keyed by its code)."""
    code = rule_cls.code.upper()
    if not code:
        raise ValueError(f"{rule_cls.__name__} has no rule code")
    if code in _REGISTRY and _REGISTRY[code] is not rule_cls:
        raise ValueError(f"duplicate rule code {code}")
    # Decorators run while the rules module is being imported; the import
    # machinery serialises that, so no lock is needed here.
    _REGISTRY[code] = rule_cls  # repro: noqa[R002] -- import-time registration
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every built-in rule.
    from . import rules  # noqa: F401


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in code order."""
    _ensure_loaded()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def registered_codes() -> list[str]:
    """Every registered rule code, sorted (CLI help derives its range
    from this so it cannot drift from the registry)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[code.upper()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {code!r}; known rules: {known}") from None


def rules_for(codes: list[str] | None) -> list[Rule]:
    """Rule instances for a ``--rules`` selection (``None`` = all)."""
    if not codes:
        return all_rules()
    return [get_rule(code) for code in codes]
