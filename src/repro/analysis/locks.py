"""Per-file lock model: the fact extractor behind R009/R010/R011.

Each parsed ``SourceModule`` is reduced to one JSON-serializable
"concurrency facts" bundle -- the unit the incremental lint cache stores,
so a warm run never has to re-parse an unchanged file.  The bundle
records, per module:

* ``aliases`` -- import table with relative imports resolved against the
  module's own dotted name (``from .plan import plan_groups`` inside
  ``repro.core.sweep`` maps ``plan_groups`` to ``repro.core.plan.plan_groups``),
* ``locks`` / ``classes[*].locks`` -- module-level and instance
  ``threading.Lock``/``RLock`` definitions with their kind,
* ``executors`` -- module-level ``ProcessPoolExecutor`` globals,
* ``functions`` -- per function/method: the ordered lock *acquisitions*
  (``with lock:`` and ``lock.acquire()``/``release()``) each with the
  set of locks already held, the outgoing *calls* with held sets, the
  direct *blocking operations* (``.wait()``, ``.result()``,
  ``time.sleep``, ``subprocess.*``, ``open()`` and Path I/O) with held
  sets, the lock *re-initialisations* (``X = threading.Lock()`` rebinds,
  the fork-safety pattern ``sweep._reinit_forked_locks`` uses), loads of
  executor globals, and whether the name matches the process-shard
  worker heuristic,
* ``submits`` -- ``pool.submit(fn, ...)`` sites with whether the pool is
  statically known to be a ``ProcessPoolExecutor``.

Lock references are resolved to dotted candidate ids at extraction time
(``repro.obs._recorder_lock``, ``repro.core.sweep.SweepEngine._lock``);
:class:`repro.analysis.callgraph.ProjectIndex` later confirms candidates
against the project-wide lock table, so a ``with`` over an unrelated
context manager never enters the model.

Held-set tracking walks statements in source order: a ``with lock:``
holds for the lexical extent of its body, an ``.acquire()`` holds until
the matching ``.release()`` statement or function end (``try/finally``
releases are seen before any statement that follows the ``try``).
Bodies of nested ``def``/``lambda`` are excluded from the enclosing
function's events -- they run later, not at the point of definition.
"""

from __future__ import annotations

import ast

from .astutil import dotted_name, terminal_name
from .callgraph import module_name_for
from .core import ProjectRule, SourceModule

__all__ = ["ConcurrencyRule", "extract_concurrency_facts"]

_LOCK_FACTORIES = {"Lock", "RLock"}

#: Attribute calls that block the calling thread regardless of module.
_BLOCKING_ATTRS = {"wait": ".wait()", "result": ".result()"}

#: Attribute calls that perform file I/O (hot-module scoped in R010).
_IO_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes"}

_SUBPROCESS_CALLS = {"run", "call", "check_call", "check_output", "Popen"}


def _is_worker_name(name: str) -> bool:
    # Mirrors R008's per-file heuristic (procshard._is_worker_name).
    return name.endswith("_worker") or "shard" in name


def _lock_kind(value: ast.AST) -> str | None:
    """``"Lock"``/``"RLock"`` when ``value`` is a lock-factory call."""
    if isinstance(value, ast.Call):
        name = terminal_name(value.func)
        if name in _LOCK_FACTORIES:
            return name
    return None


def _is_proc_pool_call(value: ast.AST) -> bool:
    return (
        isinstance(value, ast.Call)
        and terminal_name(value.func) == "ProcessPoolExecutor"
    )


class _ImportMap:
    """Alias -> dotted target, with relative imports resolved."""

    def __init__(self, tree: ast.AST, module: str) -> None:
        self.aliases: dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # `from . import x` / `from .plan import x`: climb
                    # level-1 packages up from the containing package.
                    anchor = package.split(".")
                    climb = node.level - 1
                    anchor = anchor[: len(anchor) - climb] if climb else anchor
                    if not anchor:
                        continue
                    base = ".".join(anchor) + ("." + base if base else "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.aliases[alias.asname or alias.name] = target

    def resolve(self, chain: str) -> str | None:
        parts = chain.split(".")
        target = self.aliases.get(parts[0])
        if target is None:
            return None
        return ".".join([target, *parts[1:]])


class _FunctionScanner:
    """Walks one function body, producing its event summary."""

    def __init__(
        self,
        module_name: str,
        imports: _ImportMap,
        module_locks: dict[str, str],
        executors: set[str],
        cls: str | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.module_name = module_name
        self.imports = imports
        self.module_locks = module_locks
        self.executors = executors
        self.cls = cls
        self.func = func
        self.acquires: list[list] = []
        self.calls: list[list] = []
        self.blocking: list[list] = []
        self.reinits: list[str] = []
        self.exec_loads: list[str] = []
        self.proc_pools: set[str] = set()
        self.submits: list[list] = []
        self.instance_locks: dict[str, str] = {}
        self._held: list[str] = []
        self._globals: set[str] = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }

    # -- reference resolution ------------------------------------------

    def _lock_ref(self, expr: ast.AST) -> str | None:
        """Dotted candidate lock id for an expression, or None."""
        chain = dotted_name(expr)
        if chain is None:
            return None
        parts = chain.split(".")
        if parts[0] == "self":
            if self.cls and len(parts) == 2:
                return f"{self.module_name}.{self.cls}.{parts[1]}"
            return None
        if len(parts) == 1 and parts[0] in self.module_locks:
            return f"{self.module_name}.{parts[0]}"
        # Imported lock (bare `from mod import _lock` or dotted chain);
        # the ProjectIndex confirms candidates against real definitions.
        return self.imports.resolve(chain)

    # -- entry point ----------------------------------------------------

    def run(self) -> dict:
        self._walk_body(self.func.body)
        out: dict = {"line": self.func.lineno, "col": self.func.col_offset}
        if _is_worker_name(self.func.name):
            out["worker"] = True
        for key in ("acquires", "calls", "blocking"):
            val = getattr(self, key)
            if val:
                out[key] = val
        if self.reinits:
            out["reinits"] = sorted(set(self.reinits))
        if self.exec_loads:
            first: dict[str, list] = {}
            for name, line, col in self.exec_loads:
                first.setdefault(name, [name, line, col])
            out["exec_loads"] = [first[name] for name in sorted(first)]
        return out

    # -- statement walk -------------------------------------------------

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run later, not here
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in stmt.items:
                self._scan_expr_tree(item.context_expr)
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    self.acquires.append(
                        [ref, stmt.lineno, stmt.col_offset, list(self._held)]
                    )
                    self._held.append(ref)
                    acquired.append(ref)
            self._walk_body(stmt.body)
            for ref in reversed(acquired):
                self._held.remove(ref)
            return

        # acquire()/release() statements toggle the held set.
        call = stmt.value if isinstance(stmt, ast.Expr) else None
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            ref = self._lock_ref(call.func.value)
            if ref is not None and call.func.attr == "acquire":
                self.acquires.append(
                    [ref, stmt.lineno, stmt.col_offset, list(self._held)]
                )
                self._held.append(ref)
                return
            if ref is not None and call.func.attr == "release":
                if ref in self._held:
                    self._held.remove(ref)
                return

        # Lock re-initialisation: `X = threading.Lock()` rebinding a
        # global, or `_mod._their_lock = threading.Lock()`.
        if isinstance(stmt, ast.Assign) and _lock_kind(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in self._globals:
                    self.reinits.append(f"{self.module_name}.{target.id}")
                elif isinstance(target, ast.Attribute):
                    chain = dotted_name(target)
                    if chain is None:
                        continue
                    if chain.startswith("self.") and self.cls:
                        attr = chain.split(".", 1)[1]
                        if "." not in attr:
                            self.instance_locks[attr] = _lock_kind(stmt.value)
                        continue
                    resolved = self.imports.resolve(chain)
                    if resolved is not None:
                        self.reinits.append(resolved)

        # Local ProcessPoolExecutor bindings feed submit() procness.
        if isinstance(stmt, ast.Assign) and _is_proc_pool_call(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.proc_pools.add(target.id)

        self._scan_exprs(stmt)
        for body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                self._walk_body(body)
        for handler in getattr(stmt, "handlers", ()):
            self._walk_body(handler.body)
        for case in getattr(stmt, "cases", ()):
            self._walk_body(case.body)

    # -- expression scan ------------------------------------------------

    def _scan_exprs(self, node: ast.AST) -> None:
        """Record calls/blocking ops/executor loads in this statement's
        expressions, skipping nested statements and deferred bodies."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.Lambda)):
                continue
            if isinstance(child, ast.expr):
                self._scan_expr_tree(child)
            else:
                self._scan_exprs(child)

    def _scan_expr_tree(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Lambda):
            return
        if isinstance(expr, ast.Call):
            self._record_call(expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr_tree(child)
            elif isinstance(child, ast.comprehension):
                self._scan_expr_tree(child.iter)
                for cond in child.ifs:
                    self._scan_expr_tree(cond)
        if isinstance(expr, ast.Name) and isinstance(expr.ctx, ast.Load):
            if expr.id in self.executors:
                self.exec_loads.append([expr.id, expr.lineno, expr.col_offset])

    def _record_call(self, call: ast.Call) -> None:
        chain = dotted_name(call.func)
        held = list(self._held)
        site = [call.lineno, call.col_offset]
        if chain is not None:
            resolved = self.imports.resolve(chain) or chain
            if resolved == "time.sleep":
                self.blocking.append(["time.sleep", 0, *site, held])
                return
            if (
                resolved.startswith("subprocess.")
                and resolved.split(".")[-1] in _SUBPROCESS_CALLS
            ):
                self.blocking.append([resolved, 0, *site, held])
                return
            if chain == "open":
                self.blocking.append(["open()", 1, *site, held])
                return
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "submit" and call.args:
                fn_chain = dotted_name(call.args[0])
                recv = dotted_name(call.func.value)
                is_proc = bool(
                    recv
                    and "." not in recv
                    and (recv in self.proc_pools or recv in self.executors)
                )
                if fn_chain is not None:
                    self.submits.append([fn_chain, int(is_proc), *site])
            if attr in _BLOCKING_ATTRS and len(call.args) + len(call.keywords) <= 1:
                # Exclude `lock.acquire()`-shaped receivers handled above;
                # Event.wait()/Future.result() is what we are after.
                if self._lock_ref(call.func.value) is None:
                    self.blocking.append([_BLOCKING_ATTRS[attr], 0, *site, held])
                return
            if attr in _IO_ATTRS:
                self.blocking.append([f".{attr}()", 1, *site, held])
                return
        if chain is not None:
            self.calls.append([chain, *site, held])


def extract_concurrency_facts(module: SourceModule) -> dict | None:
    """Reduce one parsed module to its concurrency fact bundle."""
    if module.tree is None:
        return None
    mod_name = module_name_for(module.display_path)
    imports = _ImportMap(module.tree, mod_name)

    module_locks: dict[str, str] = {}
    executors: list[str] = []
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            kind = _lock_kind(stmt.value)
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if kind:
                    module_locks[target.id] = kind
                elif _is_proc_pool_call(stmt.value):
                    executors.append(target.id)

    facts: dict = {
        "module": mod_name,
        "aliases": imports.aliases,
        "locks": module_locks,
        "functions": {},
        "classes": {},
    }
    if executors:
        facts["executors"] = executors
    submits: list[list] = []

    def scan_function(
        func: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
    ) -> None:
        scanner = _FunctionScanner(
            mod_name, imports, module_locks, set(executors), cls, func
        )
        qual = f"{cls}.{func.name}" if cls else func.name
        facts["functions"][qual] = scanner.run()
        submits.extend(scanner.submits)
        if cls and scanner.instance_locks:
            facts["classes"][cls]["locks"].update(scanner.instance_locks)

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            facts["classes"][stmt.name] = {"methods": [], "locks": {}}
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts["classes"][stmt.name]["methods"].append(sub.name)
                    scan_function(sub, stmt.name)
    if submits:
        facts["submits"] = submits
    return facts


class ConcurrencyRule(ProjectRule):
    """Base for the whole-program concurrency rules (R009/R010/R011).

    Binds the shared fact extractor under one ``facts_key`` so the
    incremental driver extracts facts once per file and caches them for
    all three rules.
    """

    facts_key = "concurrency"

    @classmethod
    def extract_facts(cls, module: SourceModule) -> dict | None:
        return extract_concurrency_facts(module)
