"""R011: fork-safety -- forked workers must re-initialise inherited locks.

Process-shard workers run in forked children.  Every module-level lock
the child inherits is a byte-copy of the parent's: if any parent thread
held it at fork time it is held *forever* in the child, and even when
free it guards state the parent will never see again.  The sanctioned
pattern is the one ``repro.core.sweep._reinit_forked_locks`` uses --
first thing in the worker, rebind every module-level lock the worker's
call graph touches to a fresh ``threading.Lock()``.  Module-level
``ProcessPoolExecutor`` state is worse still: the child's copy of the
parent's pool handle points at processes it cannot manage.

This rule generalises R008's per-file heuristic interprocedurally: a
worker entry point is any function submitted to a statically-known
``ProcessPoolExecutor`` or named like a worker (``*_worker``,
``*shard*``), and the rule walks its whole transitive call graph.  It
flags, at the first witnessing site inside the worker:

* acquisition (direct or via calls) of a module-level lock that the
  worker's closure never re-initialises, and
* any use of a module-level executor global from the forked child.

Instance locks (``self._lock``) are exempt -- objects constructed after
the fork get fresh locks for free.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..callgraph import ProjectIndex
from ..core import Finding
from ..locks import ConcurrencyRule
from ..registry import register

__all__ = ["ForkSafetyRule"]


@register
class ForkSafetyRule(ConcurrencyRule):
    code = "R011"
    name = "fork-safety"
    description = (
        "process-shard worker reaches a module-level lock (or executor "
        "global) without the fork re-init pattern"
    )

    def project_findings(self, facts_by_path: dict[str, object]) -> Iterator[Finding]:
        index = ProjectIndex(facts_by_path)
        for fnid in index.worker_entries():
            fn = index.function(fnid)
            if fn is None:
                continue
            path = index.path_for(fnid.partition("::")[0])
            if path is None:
                continue
            name = fnid.partition("::")[2]
            reinit = index.reinit_closure(fnid)

            # lock id -> first witnessing (line, col, via-chain|None)
            witnesses: dict[str, tuple[int, int, str | None]] = {}
            exec_witnesses: dict[str, tuple[int, int, str | None]] = {}

            def witness(table, key, line, col, via):
                prev = table.get(key)
                if prev is None or (line, col) < prev[:2]:
                    table[key] = (line, col, via)

            for lock, line, col, _held in fn.get("acquires", ()):
                if lock in index.module_locks:
                    witness(witnesses, lock, line, col, None)
            mod = fnid.partition("::")[0]
            for exec_name, eline, ecol in fn.get("exec_loads", ()):
                exec_id = f"{mod}.{exec_name}"
                if exec_id in index.executors:
                    witness(exec_witnesses, exec_id, eline, ecol, None)
            for chain, line, col, _held in fn.get("calls", ()):
                target = index.resolve_call(fnid, chain)
                if target is None:
                    continue
                for lock in index.acquire_closure(target):
                    if lock in index.module_locks:
                        witness(witnesses, lock, line, col, chain)
                for exec_id in index.executor_closure(target):
                    witness(exec_witnesses, exec_id, line, col, chain)

            for lock in sorted(witnesses):
                if lock in reinit:
                    continue
                line, col, via = witnesses[lock]
                how = f"(via `{via}`) " if via else ""
                yield Finding(
                    self.code, path, line, col,
                    f"worker `{name}` acquires module-level lock `{lock}` "
                    f"{how}in the forked child without re-initialising "
                    "it; rebind it to a fresh Lock first (see "
                    "sweep._reinit_forked_locks)",
                )
            for exec_id in sorted(exec_witnesses):
                line, col, via = exec_witnesses[exec_id]
                how = f"(via `{via}`) " if via else ""
                yield Finding(
                    self.code, path, line, col,
                    f"worker `{name}` uses module-level executor "
                    f"`{exec_id}` {how}from the forked child; the "
                    "inherited pool handle points at processes the child "
                    "does not own",
                )
