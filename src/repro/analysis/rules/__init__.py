"""Built-in rules.  Importing this package registers R001-R006."""

from __future__ import annotations

from . import catalog, concurrency, determinism, parity, telemetry, units  # noqa: F401

__all__ = ["determinism", "concurrency", "units", "catalog", "parity", "telemetry"]
