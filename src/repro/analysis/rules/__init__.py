"""Built-in rules.  Importing this package registers R001-R011."""

from __future__ import annotations

from . import (  # noqa: F401
    blocking,
    catalog,
    concurrency,
    determinism,
    forksafety,
    lockorder,
    parity,
    procshard,
    resilience,
    telemetry,
    units,
)

__all__ = [
    "determinism",
    "concurrency",
    "units",
    "catalog",
    "parity",
    "telemetry",
    "resilience",
    "procshard",
    "lockorder",
    "blocking",
    "forksafety",
]
