"""Built-in rules.  Importing this package registers R001-R013."""

from __future__ import annotations

from . import (  # noqa: F401
    benchrecord,
    blocking,
    catalog,
    concurrency,
    determinism,
    forksafety,
    lockorder,
    parity,
    procshard,
    resilience,
    storeio,
    telemetry,
    units,
)

__all__ = [
    "determinism",
    "concurrency",
    "units",
    "catalog",
    "parity",
    "telemetry",
    "resilience",
    "procshard",
    "lockorder",
    "blocking",
    "forksafety",
    "storeio",
    "benchrecord",
]
