"""Built-in rules.  Importing this package registers R001-R008."""

from __future__ import annotations

from . import (  # noqa: F401
    catalog,
    concurrency,
    determinism,
    parity,
    procshard,
    resilience,
    telemetry,
    units,
)

__all__ = [
    "determinism",
    "concurrency",
    "units",
    "catalog",
    "parity",
    "telemetry",
    "resilience",
    "procshard",
]
