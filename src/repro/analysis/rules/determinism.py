"""R001: determinism -- seeded ``Generator`` streams, no wall clock.

SweepEngine memoisation (and with it every table/figure regenerator)
assumes a config's result is a pure function of its seed and fields:
parallel, serial, cached and one-at-a-time executions must be
byte-identical.  Three things silently break that contract:

* **global-state NumPy RNG** (``np.random.rand``/``seed``/...): draws
  depend on every draw any thread made before, so results vary with
  execution order;
* **stdlib ``random`` module functions**: same shared-state problem;
* **wall-clock reads** (``time.time``, ``perf_counter``, ...): results
  depend on when -- and how loaded -- the run happens.

The sanctioned pattern is ``np.random.default_rng(seed)`` (or a
``Generator``/``SeedSequence`` derived from one) with an explicit seed.
Modules that *deliberately* time real execution (STREAM, the functional
NPB timers, the HPL/HPCG mini-drivers) route the measurement through
``repro.obs.host_timer``, whose single ``perf_counter`` site carries the
one ``# repro: noqa[R001]`` suppression (rule R006 enforces the funnel).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import ImportTable

__all__ = ["DeterminismRule"]

#: numpy.random attributes that are *not* the shared global stream.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}

#: Wall-clock reads (anything whose result depends on when you call it).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: stdlib ``random`` module: every callable is global-state except these.
_STDLIB_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}


@register
class DeterminismRule(Rule):
    code = "R001"
    name = "determinism"
    description = (
        "global-state RNG, unseeded generators and wall-clock reads break "
        "the byte-identical seeded-run contract SweepEngine caching relies on"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            yield from self._check_call(module, node, resolved)

    def _check_call(
        self, module: SourceModule, node: ast.Call, resolved: str
    ) -> Iterator[Finding]:
        if resolved in _WALL_CLOCK:
            yield module.finding(
                self.code, node,
                f"wall-clock read `{resolved}` makes results depend on when "
                "they run; model results must be pure functions of the seed",
            )
            return

        parts = resolved.split(".")
        if parts[0] == "numpy" and len(parts) >= 2 and parts[1] == "random":
            attr = parts[2] if len(parts) >= 3 else ""
            if attr and attr not in _NP_RANDOM_OK:
                yield module.finding(
                    self.code, node,
                    f"`numpy.random.{attr}` draws from the process-global "
                    "stream; use `np.random.default_rng(seed)` so draws are "
                    "keyed per config",
                )
                return
            if attr == "default_rng" and not _is_seeded(node):
                yield module.finding(
                    self.code, node,
                    "`default_rng()` without a seed is entropy-seeded; pass "
                    "an explicit seed so reruns reproduce bit for bit",
                )
            return

        if parts[0] == "random" and len(parts) == 2:
            attr = parts[1]
            if attr == "Random":
                if not _is_seeded(node):
                    yield module.finding(
                        self.code, node,
                        "`random.Random()` without a seed is entropy-seeded; "
                        "pass an explicit seed",
                    )
            elif attr not in _STDLIB_RANDOM_OK:
                yield module.finding(
                    self.code, node,
                    f"`random.{attr}` mutates the interpreter-global RNG "
                    "state; use a seeded `np.random.default_rng` stream",
                )


def _is_seeded(call: ast.Call) -> bool:
    """Whether an RNG constructor call received an explicit (non-None) seed."""
    for arg in call.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for kw in call.keywords:
        if kw.arg in (None, "seed") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    return False
