"""R003: units -- suffix-convention dataflow over model and catalog code.

Every quantity in the performance model carries its unit in its name
(``capacity_bytes``, ``clock_ghz``, ``sustained_bw_gbs``, ``idle_latency_ns``,
``barrier_cost_s``, ``latency_cycles``, ``total_mops``).  The paper's
conclusions hang on exactly the machine parameters of Table 5, so a silent
ns-vs-s or GB/s-vs-GHz mix-up invalidates every table while remaining
numerically plausible.  This rule runs a conservative unit inference:

* a Name/Attribute carries the unit of its recognised suffix;
* ``+``/``-`` and comparisons require both known units to agree;
* ``*``/``/`` produce an *unknown* unit (dimension changes are legal and
  conversions like ``* 1e-9`` are the idiom for switching suffixes);
* binding a unit-carrying name straight to a differently-suffixed (or
  unsuffixed) target is flagged -- aliasing a quantity out of its unit is
  how mix-ups start.

Unknown units never flag: the rule only fires when *both* sides commit to
incompatible suffixes, so it is quiet on generic code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import terminal_name

__all__ = ["UnitsRule", "unit_of_name"]

#: suffix token (after the last ``_``) -> canonical unit.
UNIT_SUFFIXES = {
    "bytes": "bytes",
    "bits": "bits",
    "kib": "KiB",
    "mib": "MiB",
    "gib": "GiB",
    "hz": "Hz",
    "ghz": "GHz",
    "mhz": "MHz",
    "gbs": "GB/s",
    "gbps": "GB/s",
    "mts": "MT/s",
    "ns": "ns",
    "us": "us",
    "ms": "ms",
    "s": "s",
    "cycles": "cycles",
    "ops": "ops",
    "mops": "Mop/s",
    "gflops": "Gflop/s",
}

#: Single-token names that still carry a unit when used bare.  Deliberately
#: excludes ambiguous short tokens: bare ``ns`` is this codebase's idiom for
#: a thread-count *array*, bare ``s``/``ms`` are loop variables, and bare
#: ``bytes`` is the builtin.
_BARE_UNIT_NAMES = {"ghz", "mhz", "gbs", "gbps", "mops", "gflops", "cycles"}


def unit_of_name(name: str | None) -> str | None:
    """Unit carried by an identifier, or ``None``."""
    if not name:
        return None
    lowered = name.lower()
    if "_" in lowered:
        token = lowered.rsplit("_", 1)[1]
        return UNIT_SUFFIXES.get(token)
    return UNIT_SUFFIXES.get(lowered) if lowered in _BARE_UNIT_NAMES else None


def _unit_of_expr(node: ast.AST) -> str | None:
    """Conservative unit inference; ``None`` = unknown (never flags)."""
    if isinstance(node, (ast.Name, ast.Attribute)):
        return unit_of_name(terminal_name(node))
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _unit_of_expr(node.left)
        right = _unit_of_expr(node.right)
        if left is not None and right is not None and left == right:
            return left
        # Mixed or part-unknown sums stay unknown; the visitor reports the
        # incompatible case separately.
        return left if right is None else right if left is None else None
    if isinstance(node, ast.UnaryOp):
        return _unit_of_expr(node.operand)
    if isinstance(node, ast.IfExp):
        body = _unit_of_expr(node.body)
        orelse = _unit_of_expr(node.orelse)
        return body if body == orelse else None
    return None


@register
class UnitsRule(Rule):
    code = "R003"
    name = "units"
    description = (
        "arithmetic or bindings mixing incompatible unit suffixes "
        "(_bytes/_ghz/_gbs/_ns/_ops ...)"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for func_unit, node in _walk_with_function(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_additive(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_keywords(module, node)
            elif isinstance(node, ast.Return) and node.value is not None:
                yield from self._check_return(module, node, func_unit)

    # ------------------------------------------------------------------

    def _check_additive(self, module, node: ast.BinOp) -> Iterator[Finding]:
        left = _unit_of_expr(node.left)
        right = _unit_of_expr(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            yield module.finding(
                self.code, node,
                f"`{op}` mixes {left} and {right}; convert explicitly "
                "before combining",
            )

    def _check_compare(self, module, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        units = [_unit_of_expr(o) for o in operands]
        known = [u for u in units if u is not None]
        if len(known) >= 2 and len(set(known)) > 1:
            yield module.finding(
                self.code, node,
                f"comparison mixes {' and '.join(sorted(set(known)))}; "
                "convert to a common unit first",
            )

    def _check_assign(self, module, node) -> Iterator[Finding]:
        value = node.value
        if value is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value_unit = _unit_of_expr(value)
        direct_alias = isinstance(value, (ast.Name, ast.Attribute))
        for target in targets:
            if not isinstance(target, (ast.Name, ast.Attribute)):
                continue
            target_unit = unit_of_name(terminal_name(target))
            if target_unit is not None and value_unit is not None \
                    and target_unit != value_unit:
                yield module.finding(
                    self.code, node,
                    f"binds a {value_unit} expression to "
                    f"`{terminal_name(target)}` ({target_unit})",
                )
            elif target_unit is None and value_unit is not None and direct_alias:
                yield module.finding(
                    self.code, node,
                    f"binds unit-carrying `{terminal_name(value)}` "
                    f"({value_unit}) to unsuffixed `{terminal_name(target)}`; "
                    "keep the unit in the name",
                )

    def _check_keywords(self, module, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg is None:
                continue
            param_unit = unit_of_name(kw.arg)
            value_unit = _unit_of_expr(kw.value)
            if param_unit is not None and value_unit is not None \
                    and param_unit != value_unit:
                yield module.finding(
                    self.code, kw.value,
                    f"passes a {value_unit} expression to parameter "
                    f"`{kw.arg}` ({param_unit})",
                )

    def _check_return(self, module, node: ast.Return, func_unit) -> Iterator[Finding]:
        if func_unit is None:
            return
        value_unit = _unit_of_expr(node.value)
        if value_unit is not None and value_unit != func_unit:
            yield module.finding(
                self.code, node,
                f"returns a {value_unit} expression from a function whose "
                f"name promises {func_unit}",
            )


def _walk_with_function(tree: ast.Module):
    """Yield ``(enclosing_function_unit, node)`` pairs over the whole tree."""
    stack: list[tuple[str | None, ast.AST]] = [(None, tree)]
    while stack:
        func_unit, node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_unit = unit_of_name(node.name)
        for child in ast.iter_child_nodes(node):
            stack.append((func_unit, child))
        yield func_unit, node
