"""R006: telemetry discipline -- timing and spans go through ``repro.obs``.

The telemetry layer's determinism contract (counters and span trees
byte-identical across serial/parallel/cached runs, wall-clock confined to
the report's ``timings`` section) only holds if instrumentation has one
funnel.  Two things undermine it:

* **direct wall-clock timing** (``time.perf_counter`` and friends)
  outside the ``repro/obs`` package: the interval bypasses the recorder,
  so `repro stats` under-reports where time went -- and the site needs
  its own R001 suppression.  Route it through
  ``repro.obs.host_timer(name)``, which measures identically, exposes
  ``elapsed_s``, and records into ``timings`` when telemetry is on;
* **hand-built span objects** (instantiating ``Span`` directly): nodes
  created outside a recorder are invisible to the tree, break the
  well-nestedness bookkeeping, and dodge the merged-by-name invariant.
  Use ``repro.obs.span(name)`` / ``open_span(name)`` instead.

Modules inside ``repro/obs`` itself are exempt -- that is where the one
sanctioned ``perf_counter`` site lives.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import ImportTable

__all__ = ["TelemetryRule"]

#: Wall-clock timing primitives that must be wrapped by repro.obs.
_TIMING_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns",
}

#: Telemetry internals that must never be constructed at call sites.
_SPAN_INTERNALS = {"repro.obs.recorder.Span", "repro.obs.Span"}


def _inside_obs_package(module: SourceModule) -> bool:
    parts = PurePath(module.display_path).parts
    for repro_idx in (i for i, part in enumerate(parts) if part == "repro"):
        if repro_idx + 1 < len(parts) and parts[repro_idx + 1] == "obs":
            return True
    return False


@register
class TelemetryRule(Rule):
    code = "R006"
    name = "telemetry"
    description = (
        "wall-clock timing and span creation outside repro.obs bypass the "
        "telemetry funnel; use obs.host_timer / obs.span instead"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if _inside_obs_package(module):
            return
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _TIMING_CALLS:
                yield module.finding(
                    self.code, node,
                    f"direct `{resolved}` bypasses telemetry; wrap the "
                    "interval in `repro.obs.host_timer(name)` so it lands in "
                    "the report's timings section (and R001 stays clean)",
                )
            elif resolved in _SPAN_INTERNALS:
                yield module.finding(
                    self.code, node,
                    "span nodes must come from a recorder; use "
                    "`repro.obs.span(name)` or `repro.obs.open_span(name)` "
                    "instead of instantiating `Span` directly",
                )
