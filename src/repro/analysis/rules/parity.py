"""R005: model parity -- scalar/grid twins and complete kernel registration.

The batched sweep path is only trustworthy because every vectorised
``_foo_grid`` cost term in :class:`PerformanceModel` has a scalar ``_foo``
reference implementation it is tested bit-identical against (and the
scalar entry points route through the grid, so neither can drift alone).
This rule enforces the pairing both ways inside classes named
``PerformanceModel``:

* every ``_foo_grid`` method needs a scalar ``_foo`` sibling;
* every private scalar method taking a thread count (a parameter named
  ``n`` or ``n_threads``) needs a ``_foo_grid`` sibling.

The cache simulator keeps the same discipline between its two trace
engines: the dict-based oracle and the reuse-distance fast path are only
interchangeable because a ``TRACE_ENGINES`` registry holds both under
fixed names.  Any module assigning ``TRACE_ENGINES`` must register both
``"exact"`` and ``"vectorized"`` and point each at a module-level
function, and a ``run_trace_vectorized`` definition without any such
registry in the project is flagged -- an unregistered engine could drift
from the oracle silently.

The project-level part checks kernel registration completeness: every
NPB kernel module (a ``run_<k>`` definition in a ``npb/`` directory) must
have a workload signature in ``SIGNATURE_BUILDERS`` and a trace spec in
``KERNEL_TRACES``, and vice versa -- a kernel missing from either would
silently drop out of tables without an error.  Signature builders must
pass the core resource axes (``total_mops``, ``work_per_op``,
``dram_bytes_per_op``, ``working_set_bytes``) so no kernel ships a
partial signature.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, ProjectRule, SourceModule
from ..registry import register

__all__ = ["ParityRule"]

#: Classes whose private methods must keep scalar/grid parity.
PARITY_CLASSES = {"PerformanceModel"}

#: Parameter names that mark a method as thread-count-indexed (the grid axis).
_THREAD_PARAMS = {"n", "n_threads"}

#: Keywords every KernelSignature registration must supply.
REQUIRED_SIGNATURE_FIELDS = (
    "name", "display", "npb_class", "total_mops", "work_per_op",
    "dram_bytes_per_op", "working_set_bytes",
)

#: ``run_<name>`` definitions in npb/ that are drivers, not kernels.
_NON_KERNEL_RUNNERS = {"benchmark", "suite"}

#: The cachesim engine registry and the pair of engines it must hold.
ENGINE_REGISTRY = "TRACE_ENGINES"
REQUIRED_ENGINES = ("exact", "vectorized")

#: The vectorized engine's entry point; defining it obliges registration.
_VECTORIZED_ENTRY = "run_trace_vectorized"


@register
class ParityRule(ProjectRule):
    code = "R005"
    name = "model-parity"
    description = (
        "missing scalar/_grid method twins in PerformanceModel, an "
        "incomplete TRACE_ENGINES pair, or NPB kernels without a "
        "complete signature/trace registration"
    )

    # -- per-file: scalar/grid twins -----------------------------------

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in PARITY_CLASSES:
                yield from self._check_class(module, node)
        yield from self._check_engine_registry(module)

    def _check_engine_registry(self, module: SourceModule) -> Iterator[Finding]:
        """A ``TRACE_ENGINES`` registry must hold the full engine pair."""
        found = _dict_assignment(module, ENGINE_REGISTRY)
        if found is None:
            return
        stmt, engines = found
        for required in REQUIRED_ENGINES:
            if required not in engines:
                yield module.finding(
                    self.code, stmt,
                    f"{ENGINE_REGISTRY} omits the {required!r} engine; the "
                    "exact/vectorized pair must stay registered together "
                    "so the implementations cannot drift silently",
                )
        functions = {
            s.name for s in module.tree.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for engine, value in engines.items():
            if not isinstance(value, ast.Name) or value.id not in functions:
                yield module.finding(
                    self.code, value,
                    f"{ENGINE_REGISTRY}[{engine!r}] must name a "
                    "module-level engine function",
                )

    def _check_class(self, module, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, func in methods.items():
            if name.startswith("__"):
                continue
            if name.endswith("_grid"):
                base = name[: -len("_grid")]
                if base not in methods:
                    yield module.finding(
                        self.code, func,
                        f"`{cls.name}.{name}` has no scalar `{base}` twin; "
                        "the grid path needs a scalar reference "
                        "implementation to be tested against",
                    )
            elif name.startswith("_") and self._takes_thread_count(func) \
                    and f"{name}_grid" not in methods:
                yield module.finding(
                    self.code, func,
                    f"`{cls.name}.{name}` takes a thread count but has no "
                    f"`{name}_grid` twin; batched sweeps cannot evaluate it",
                )

    @staticmethod
    def _takes_thread_count(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        names = {a.arg for a in (*func.args.posonlyargs, *func.args.args,
                                 *func.args.kwonlyargs)}
        return bool(names & _THREAD_PARAMS)

    # -- project: kernel registration completeness ---------------------
    #
    # The cross-file part runs through the incremental facts API: each
    # file is reduced once (and cached) to the registration facts below;
    # project_findings recombines them without re-parsing anything.

    facts_key = "parity"

    @classmethod
    def extract_facts(cls, module: SourceModule) -> dict | None:
        facts: dict = {}
        if _dict_literal(module, ENGINE_REGISTRY) is not None:
            facts["registry_seen"] = True
        vectorized = [
            [stmt.lineno, stmt.col_offset]
            for stmt in module.tree.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == _VECTORIZED_ENTRY
        ]
        if vectorized:
            facts["vectorized_defs"] = vectorized
        if module.path.parent.name == "npb":
            stem = module.path.stem.rstrip("_")
            kernels = [
                stmt.name[len("run_"):]
                for stmt in module.tree.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name.startswith("run_")
                and stmt.name[len("run_"):] == stem
                and stmt.name[len("run_"):] not in _NON_KERNEL_RUNNERS
            ]
            if kernels:
                facts["kernels"] = kernels
        builders = _dict_literal(module, "SIGNATURE_BUILDERS")
        if builders is not None:
            facts["builders"] = sorted(builders)
            facts["builder_findings"] = [
                [f.line, f.col, f.message]
                for f in cls._builder_findings(module, builders)
            ]
        trace_keys = _dict_literal(module, "KERNEL_TRACES")
        if trace_keys is not None:
            facts["traces"] = sorted(trace_keys)
        return facts or None

    def project_findings(self, facts_by_path: dict[str, object]) -> Iterator[Finding]:
        kernels: dict[str, str] = {}
        signatures: tuple[str, list[str], list] | None = None
        traces: tuple[str, set[str]] | None = None
        registry_seen = False
        vectorized_defs: list[tuple[str, int, int]] = []

        for path, facts in facts_by_path.items():
            if facts.get("registry_seen"):
                registry_seen = True
            for line, col in facts.get("vectorized_defs", ()):
                vectorized_defs.append((path, line, col))
            for kernel in facts.get("kernels", ()):
                kernels[kernel] = path
            if "builders" in facts:
                signatures = (
                    path, facts["builders"], facts.get("builder_findings", [])
                )
            if "traces" in facts:
                traces = (path, set(facts["traces"]))

        if signatures is not None:
            sig_path, builders, builder_findings = signatures
            if kernels:
                for kernel, path in sorted(kernels.items()):
                    if kernel not in builders:
                        yield Finding(
                            self.code, path, 1, 0,
                            f"NPB kernel `{kernel}` has no entry in "
                            "SIGNATURE_BUILDERS; the model cannot predict it",
                        )
                for kernel in sorted(set(builders) - set(kernels)):
                    yield Finding(
                        self.code, sig_path, 1, 0,
                        f"SIGNATURE_BUILDERS registers `{kernel}` but no "
                        f"npb/{kernel}.py module defines `run_{kernel}`",
                    )
            for line, col, message in builder_findings:
                yield Finding(self.code, sig_path, line, col, message)

        if not registry_seen:
            for path, line, col in vectorized_defs:
                yield Finding(
                    self.code, path, line, col,
                    f"`{_VECTORIZED_ENTRY}` is defined but no "
                    f"{ENGINE_REGISTRY} registry pairs it with the exact "
                    "oracle; unregistered engines can drift silently",
                )

        if traces is not None and kernels:
            trace_path, trace_keys = traces
            for kernel, path in sorted(kernels.items()):
                if kernel not in trace_keys:
                    yield Finding(
                        self.code, path, 1, 0,
                        f"NPB kernel `{kernel}` has no KERNEL_TRACES entry; "
                        "the cache simulator cannot characterise it",
                    )
            for kernel in sorted(trace_keys - set(kernels)):
                yield Finding(
                    self.code, trace_path, 1, 0,
                    f"KERNEL_TRACES lists `{kernel}` but no npb/{kernel}.py "
                    f"module defines `run_{kernel}`",
                )

    @classmethod
    def _builder_findings(
        cls, module: SourceModule, builders: dict[str, ast.expr]
    ) -> Iterator[Finding]:
        functions = {
            stmt.name: stmt
            for stmt in module.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        for kernel, value in builders.items():
            if not isinstance(value, ast.Name):
                continue
            builder = functions.get(value.id)
            if builder is None:
                continue
            call = _kernel_signature_call(builder)
            if call is None:
                yield module.finding(
                    cls.code, builder,
                    f"signature builder `{value.id}` for `{kernel}` never "
                    "constructs a KernelSignature",
                )
                continue
            supplied = {kw.arg for kw in call.keywords if kw.arg}
            missing = [f for f in REQUIRED_SIGNATURE_FIELDS if f not in supplied]
            if missing:
                yield module.finding(
                    cls.code, call,
                    f"signature for `{kernel}` is incomplete: missing "
                    f"{', '.join(missing)}",
                )


def _dict_assignment(
    module: SourceModule, name: str
) -> tuple[ast.stmt, dict[str, ast.expr]] | None:
    """(assignment, entries) for a module-level string-keyed dict literal."""
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name \
                    and isinstance(value, ast.Dict):
                out: dict[str, ast.expr] = {}
                for key, val in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        out[key.value] = val
                return stmt, out
    return None


def _dict_literal(module: SourceModule, name: str) -> dict[str, ast.expr] | None:
    """String-keyed dict literal assigned to ``name`` at module level."""
    found = _dict_assignment(module, name)
    return None if found is None else found[1]


def _kernel_signature_call(func: ast.FunctionDef) -> ast.Call | None:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name == "KernelSignature":
                return node
    return None
