"""R007: exception hygiene -- broad handlers must re-raise or classify.

The sweep engine's resilience contract (transient failures retried, DNR
verdicts cached, everything else propagated exactly once) lives or dies
on how exceptions are handled.  The archetypal regression: a broad
``except`` around pool execution, meant for thread-starved startup, that
also swallows failures raised *inside* a group and silently re-executes
completed work -- double-counting telemetry and corrupting the
counter-identity invariant.

This rule flags ``except`` handlers that catch ``Exception`` /
``BaseException`` (or use a bare ``except:``) and then neither

* ``raise`` (re-raise or raise a typed error), nor
* classify the failure through the :mod:`repro.faults` taxonomy
  (``classify``/``TransientError``/``FaultError``/...).

Scope: the packages whose handlers guard sweep results --
``repro.core``, ``repro.harness`` and ``repro.faults`` -- plus any file
outside the ``repro`` package (scripts, benchmarks).  Narrow handlers
(``except ValueError:``) are always fine: naming the exception is the
classification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import ImportTable, terminal_name

__all__ = ["ResilienceRule"]

#: Catching one of these (or a bare ``except:``) is "broad".
_BROAD = {"Exception", "BaseException"}

#: Subpackages of ``repro`` whose exception handling guards sweep results.
_SCOPED_SUBPACKAGES = {"core", "harness", "faults"}

#: Names whose use inside a handler counts as classifying the failure.
_TAXONOMY_NAMES = {
    "classify",
    "FaultError",
    "TransientError",
    "InjectedTransientError",
    "InjectedIOError",
    "GroupTimeoutError",
}


def _in_scope(module: SourceModule) -> bool:
    parts = PurePath(module.display_path).parts
    repro_indices = [i for i, part in enumerate(parts) if part == "repro"]
    if not repro_indices:
        return True  # scripts, benchmarks, fixtures: check them
    return any(
        i + 1 < len(parts) and parts[i + 1] in _SCOPED_SUBPACKAGES
        for i in repro_indices
    )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(terminal_name(t) in _BROAD for t in types)


def _handles_failure(handler: ast.ExceptHandler, imports: ImportTable) -> bool:
    """Whether the handler re-raises or routes through the faults taxonomy."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = imports.resolve(node)
            if resolved is not None and resolved.startswith("repro.faults"):
                return True
            if terminal_name(node) in _TAXONOMY_NAMES:
                return True
    return False


@register
class ResilienceRule(Rule):
    code = "R007"
    name = "resilience"
    description = (
        "broad exception handlers in sweep-critical code must re-raise or "
        "classify via the repro.faults taxonomy, never swallow silently"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handles_failure(node, imports):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield module.finding(
                self.code, node,
                f"{caught} swallows failures silently; re-raise, raise a "
                "typed error, or classify via repro.faults so transient "
                "failures retry and real bugs propagate exactly once",
            )
