"""R009: lock-order inversion -- opposite acquisition orders deadlock.

Two threads that acquire the same pair of locks in opposite orders can
each end up holding one lock while waiting forever for the other.  The
rule runs over the whole-program lock model (:mod:`repro.analysis.locks`
facts stitched together by :class:`repro.analysis.callgraph.ProjectIndex`)
and records every ordered pair ``(held, acquired)`` it can prove: a
direct nested acquisition, or a call made under a held lock whose
transitive acquire-closure grabs another lock.  A pair that also occurs
reversed anywhere in the project is reported at *every* site involved,
each message pointing at one witness for the opposite order.

As a bonus the model also catches guaranteed self-deadlock: re-acquiring
a non-reentrant ``threading.Lock`` already held on the same path
(``RLock`` is exempt -- re-entry is its purpose).

Static caveats: lock identity is per *definition site*, so two instances
of the same class share one id, and the analysis ignores branch
conditions -- both can over-approximate, which is what the suppression
pragma (with a ``-- why``) is for.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..callgraph import ProjectIndex
from ..core import Finding
from ..locks import ConcurrencyRule
from ..registry import register

__all__ = ["LockOrderRule"]


@register
class LockOrderRule(ConcurrencyRule):
    code = "R009"
    name = "lock-order"
    description = (
        "two locks acquired in opposite orders on some interprocedural "
        "path; inconsistent ordering can deadlock"
    )

    def project_findings(self, facts_by_path: dict[str, object]) -> Iterator[Finding]:
        index = ProjectIndex(facts_by_path)
        # (held, acquired) -> list of (path, line, col, via-chain|None)
        pairs: dict[tuple[str, str], list[tuple[str, int, int, str | None]]] = {}
        self_deadlocks: list[tuple[str, int, int, str, str | None]] = []

        for fnid, path, fn in index.functions():
            for lock, line, col, held in fn.get("acquires", ()):
                if not index.is_lock(lock):
                    continue
                for h in index.confirmed(held):
                    if h == lock:
                        if index.lock_kind(lock) == "Lock":
                            self_deadlocks.append((path, line, col, lock, None))
                    else:
                        pairs.setdefault((h, lock), []).append(
                            (path, line, col, None)
                        )
            for chain, line, col, held in fn.get("calls", ()):
                held_locks = index.confirmed(held)
                if not held_locks:
                    continue
                target = index.resolve_call(fnid, chain)
                if target is None:
                    continue
                for lock in sorted(index.acquire_closure(target)):
                    for h in held_locks:
                        if h == lock:
                            if index.lock_kind(lock) == "Lock":
                                self_deadlocks.append(
                                    (path, line, col, lock, chain)
                                )
                        else:
                            pairs.setdefault((h, lock), []).append(
                                (path, line, col, chain)
                            )

        for (first, second), sites in sorted(pairs.items()):
            if first >= second or (second, first) not in pairs:
                continue
            inverse_sites = pairs[(second, first)]
            by_pos = lambda s: (s[0], s[1], s[2])  # noqa: E731
            witness_fwd = min(sites, key=by_pos)
            witness_rev = min(inverse_sites, key=by_pos)
            for path, line, col, via in sites:
                yield self._inversion(
                    path, line, col, via, first, second, witness_rev
                )
            for path, line, col, via in inverse_sites:
                yield self._inversion(
                    path, line, col, via, second, first, witness_fwd
                )

        for path, line, col, lock, via in self_deadlocks:
            how = f"call to `{via}` re-acquires" if via else "re-acquires"
            yield Finding(
                self.code, path, line, col,
                f"{how} non-reentrant lock `{lock}` already held on this "
                "path; this self-deadlocks (use an RLock or split the "
                "locked region)",
            )

    def _inversion(
        self,
        path: str,
        line: int,
        col: int,
        via: str | None,
        held: str,
        acquired: str,
        opposite: tuple[str, int, int, str | None],
    ) -> Finding:
        how = (
            f"call to `{via}` acquires `{acquired}`"
            if via
            else f"acquires `{acquired}`"
        )
        o_path, o_line, _o_col, _o_via = opposite
        return Finding(
            self.code, path, line, col,
            f"{how} while holding `{held}`, but the opposite order is "
            f"taken at {o_path}:{o_line}; inconsistent lock order can "
            "deadlock",
        )
