"""R012: store I/O discipline -- store paths are touched only by ``repro.store``.

The result store's guarantees (sha256-verified entries, atomic
publication, LRU index consistency, cross-process single-flight leases)
all flow from one invariant: every byte under a store root is written
and renamed by :class:`repro.store.ResultStore` itself.  A stray
``open()`` or ``os.replace()`` aimed at an ``objects/`` entry, a
``.lease`` file or the index sidesteps the checksum, the index
bookkeeping and the O_EXCL claim protocol -- producing entries the
store will classify as corrupt (silent cache misses) or leases nobody
releases (ten-second stalls for every other process).

The rule flags direct file I/O -- ``open``, ``os.open``, ``os.replace``,
``os.rename`` and ``Path.write_text`` / ``write_bytes`` -- whose target
expression mentions a store or lease path: an identifier containing
``store`` or ``lease``, or a literal containing ``objects/`` or
``.lease``.  Modules inside ``repro/store`` (the sanctioned
implementation) and ``repro/faults`` (the atomic-write primitive the
store builds on) are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import ImportTable

__all__ = ["StoreIORule"]

#: os-level sinks that move or create files (resolved via imports).
_OS_SINKS = {"os.open", "os.replace", "os.rename"}

#: Path methods that write file contents directly.
_PATH_WRITE_METHODS = {"write_text", "write_bytes"}

#: Identifier fragments marking a store-owned path expression.
_PATH_MARKERS = ("store", "lease")

#: String-literal fragments marking a store-owned path expression.
_LITERAL_MARKERS = ("objects/", ".lease")


def _inside_exempt_package(module: SourceModule) -> bool:
    parts = PurePath(module.display_path).parts
    for repro_idx in (i for i, part in enumerate(parts) if part == "repro"):
        if repro_idx + 1 < len(parts) and parts[repro_idx + 1] in (
            "store",
            "faults",
        ):
            return True
    return False


def _mentions_store_path(nodes: list[ast.AST]) -> bool:
    """Whether any expression in ``nodes`` names a store/lease path."""
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                ident = node.id.lower()
            elif isinstance(node, ast.Attribute):
                ident = node.attr.lower()
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                text = node.value.lower()
                if any(marker in text for marker in _LITERAL_MARKERS):
                    return True
                continue
            else:
                continue
            if any(marker in ident for marker in _PATH_MARKERS):
                return True
    return False


@register
class StoreIORule(Rule):
    code = "R012"
    name = "storeio"
    description = (
        "direct file I/O on result-store paths outside repro.store bypasses "
        "checksums, the LRU index and the lease protocol; go through "
        "ResultStore instead"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if _inside_exempt_package(module):
            return
        imports = ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            targets: list[ast.AST] = []
            sink = None
            resolved = imports.resolve(node.func)
            if resolved in _OS_SINKS:
                sink = resolved
                targets = list(node.args) + [kw.value for kw in node.keywords]
            elif isinstance(node.func, ast.Name) and node.func.id == "open":
                sink = "open"
                targets = list(node.args) + [kw.value for kw in node.keywords]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_WRITE_METHODS
                and imports.resolve(node.func) is None
            ):
                # A method write: the store path is the receiver.
                sink = node.func.attr
                targets = [node.func.value]
            if sink is None or not _mentions_store_path(targets):
                continue
            yield module.finding(
                self.code, node,
                f"`{sink}` on a store/lease path bypasses the store's "
                "checksum, index and lease bookkeeping; use "
                "`repro.store.ResultStore` (get/put/try_lease) instead",
            )
