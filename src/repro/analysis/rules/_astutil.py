"""Compatibility shim: the AST helpers moved to ``repro.analysis.astutil``
so the analysis substrate (callgraph/locks) can use them without importing
the rules package (which imports rule modules that import the substrate).
"""

from __future__ import annotations

from ..astutil import ImportTable, const_int, dotted_name, terminal_name

__all__ = ["ImportTable", "dotted_name", "terminal_name", "const_int"]
