"""R008: process sharding -- workers must not mutate module-global state.

Process-shard workers run in forked children: functions handed to an
executor via ``.submit(...)`` and functions named like workers
(``*_worker``, or containing ``shard``).  Any module-global state a
worker mutates -- a memo dict, a counter, a lazily-built singleton -- is
mutated in the *child's* copy of the module and silently discarded when
the worker returns; only the worker's return value crosses the process
boundary.  Holding a lock does not help: the lock the child sees is a
stale fork-time copy guarding nothing, which is why this rule flags the
mutation even inside a ``with <lock>:`` block (unlike R002, whose
threads genuinely share the state).

Workers must be pure with respect to module state: build results locally,
return them, and let the parent merge under its own (live) locks.

This is a per-file heuristic: it sees only mutations inside the worker's
own module.  R011 (``forksafety``) generalises it interprocedurally,
walking the worker's whole call graph for module-level locks that are
never re-initialised in the child and for inherited executor state.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import terminal_name

__all__ = ["ProcShardRule"]

_MUTATING_METHODS = {
    "append", "add", "clear", "update", "setdefault", "pop", "popitem",
    "extend", "remove", "discard", "insert", "sort", "reverse",
}

_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "deque",
                      "OrderedDict", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in _MUTABLE_FACTORIES
    # The lazy-singleton pattern: `_engine = None`, rebound later.
    return isinstance(node, ast.Constant) and node.value is None


def _root_name(node: ast.AST) -> str | None:
    """Base Name of a subscript/attribute chain (``x`` for ``x[k].y``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_worker_name(name: str) -> bool:
    return name.endswith("_worker") or "shard" in name


def _submitted_names(tree: ast.AST) -> set[str]:
    """Names passed as the callable to an executor ``.submit(fn, ...)``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            names.add(node.args[0].id)
    return names


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Plain-name bindings inside the function (args, assigns, loops...)."""
    locals_: set[str] = {a.arg for a in (
        *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
        *([func.args.vararg] if func.args.vararg else []),
        *([func.args.kwarg] if func.args.kwarg else []),
    )}
    for node in ast.walk(func):
        exprs: list[ast.expr | None] = []
        if isinstance(node, ast.Assign):
            exprs = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            exprs = [node.target]
        elif isinstance(node, ast.withitem):
            exprs = [node.optional_vars]
        elif isinstance(node, ast.comprehension):
            exprs = [node.target]
        for expr in exprs:
            if isinstance(expr, ast.Name):
                locals_.add(expr.id)
            elif isinstance(expr, (ast.Tuple, ast.List)):
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Name):
                        locals_.add(sub.id)
    return locals_


@register
class ProcShardRule(Rule):
    code = "R008"
    name = "procshard"
    description = (
        "module-global state mutated inside a process-shard worker; the "
        "write dies with the forked child -- return data instead"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        mutable_globals: set[str] = set()
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if _is_mutable_literal(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable_globals.add(target.id)

        submitted = _submitted_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                _is_worker_name(node.name) or node.name in submitted
            ):
                yield from self._check_worker(module, node, mutable_globals)

    # ------------------------------------------------------------------

    def _check_worker(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        mutable_globals: set[str],
    ) -> Iterator[Finding]:
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        locals_ = _local_names(func) - declared_global

        def is_shared(name: str | None) -> bool:
            if name is None or name in locals_:
                return False
            return name in mutable_globals or name in declared_global

        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id in declared_global:
                            yield module.finding(
                                self.code, node,
                                f"worker `{func.name}` rebinds module global "
                                f"`{target.id}`; the new value exists only in "
                                "the forked child and is lost on exit",
                            )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if is_shared(root):
                            yield module.finding(
                                self.code, node,
                                f"worker `{func.name}` writes into module-"
                                f"global `{root}`; the write stays in the "
                                "forked child -- return the data and merge "
                                "in the parent",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    root = _root_name(target)
                    if is_shared(root):
                        yield module.finding(
                            self.code, node,
                            f"worker `{func.name}` deletes from module-"
                            f"global `{root}` in the forked child",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                root = _root_name(node.func.value)
                if is_shared(root):
                    yield module.finding(
                        self.code, node,
                        f"worker `{func.name}` calls mutating "
                        f"`.{node.func.attr}()` on module-global `{root}`; "
                        "even under a lock the mutation dies with the "
                        "forked child",
                    )
