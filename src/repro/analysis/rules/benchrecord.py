"""R013: every benchmark test records into the bench artifact.

The perf-trajectory gate (``repro bench --check``) can only gate what
the benchmarks record: a bench test that measures a paper table but
never calls ``bench_artifact(...)`` produces a number that evaporates
when the pytest session ends -- it has no baseline, no history and no
regression margin, so a 10x slowdown in it ships silently.  Worse, the
subset-run merge keys on *which suites recorded*: an unrecorded test
makes its suite's artifact rows stale without marking them as such.

A module counts as a benchmark module when any of its test functions
requests a bench fixture (``benchmark``, ``time_best_of``,
``escalate_until`` or ``bench_artifact``).  In such a module, every
test function must

* take the ``bench_artifact`` fixture as a parameter, and
* actually call it (directly, ``bench_artifact("label", field=...)``,
  or by handing it to a recording helper).

Shape-only smoke tests that genuinely measure nothing can opt out per
line with ``# repro: noqa[R013]`` -- the pragma is the audit trail.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, Rule, SourceModule
from ..registry import register

__all__ = ["BenchRecordRule"]

#: Fixture parameters that mark a test (and thus its module) as a bench.
_BENCH_FIXTURES = {"benchmark", "time_best_of", "escalate_until", "bench_artifact"}

_RECORDER = "bench_artifact"


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    return {
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }


def _test_functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module- and class-level test functions (not nested helpers)."""
    found = []
    stack: list[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            stack.extend(node.body)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("test"):
                found.append(node)
    return sorted(found, key=lambda f: f.lineno)


def _calls_recorder(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``bench_artifact`` is invoked or handed to a helper call."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == _RECORDER:
            return True
        operands = list(node.args) + [kw.value for kw in node.keywords]
        if any(isinstance(a, ast.Name) and a.id == _RECORDER for a in operands):
            return True
    return False


@register
class BenchRecordRule(Rule):
    code = "R013"
    name = "benchrecord"
    description = (
        "benchmark tests must record their measurements through the "
        "bench_artifact fixture so the perf-trajectory gate can see them"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        tests = _test_functions(module.tree)
        if not any(_param_names(fn) & _BENCH_FIXTURES for fn in tests):
            return  # not a benchmark module
        for fn in tests:
            if _RECORDER not in _param_names(fn):
                yield module.finding(
                    self.code, fn,
                    f"bench test `{fn.name}` does not take the "
                    "`bench_artifact` fixture; its measurements never reach "
                    "the artifact or the regression gate",
                )
            elif not _calls_recorder(fn):
                yield module.finding(
                    self.code, fn,
                    f"bench test `{fn.name}` takes `bench_artifact` but "
                    "never records through it; call "
                    "`bench_artifact(label, **fields)` with the measured "
                    "numbers",
                )
