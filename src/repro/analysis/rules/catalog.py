"""R004: catalog invariants -- Table 5 constraints on machine literals.

The machine catalog is the ground truth every table and figure is
computed from; a typo'd cache size or channel count silently skews every
downstream number.  This rule statically evaluates the literal arguments
of ``CacheLevel``/``Topology``/``MemorySubsystem``/``Machine`` calls
(resolving the ``KiB``/``MiB``/``GiB`` idiom and the ``ddr4``/``ddr5``/
``lpddr4`` constructors) and checks:

* cache geometry: sizes divide into whole power-of-two set counts for
  power-of-two associativities, L1 is a power of two, levels in a
  hierarchy tuple ascend with non-decreasing sizes;
* topology: cores divide evenly into clusters and NUMA regions;
* memory: channels/controllers pair in integer ratios, capacity is whole
  GiB, and a declared sustained-bandwidth override never exceeds
  ``channels x per-channel JEDEC peak`` (the SG2042's four DDR4-3200
  channels cannot sustain 150 GB/s no matter what a typo says);
* Table 5 anchors for the two Sophon parts: SG2044 = 64 cores, 32 x DDR5
  channels, 2.6 GHz; SG2042 = 64 cores, 4 x DDR4 channels, 2.0 GHz.

Arguments that are not statically evaluable (helper parameters, computed
expressions) are skipped, never guessed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import terminal_name

__all__ = ["CatalogRule"]

_SIZE_NAMES = {"KiB": 2**10, "MiB": 2**20, "GiB": 2**30, "KB": 10**3,
               "MB": 10**6, "GB": 10**9, "LINE": 64}

#: JEDEC bus width (bits) per modelled channel; DDR5 counts 32-bit
#: sub-channels, matching :mod:`repro.machines.ddr`.
_DDR_BUS_BITS = {"ddr4": 64, "ddr5": 32, "lpddr4": 32}

#: Table 5 anchors for the machines the paper's conclusions hang on.
TABLE5_ANCHORS: dict[str, dict[str, float]] = {
    "sg2044": {"total_cores": 64, "channels": 32, "clock_hz": 2.6e9},
    "sg2042": {"total_cores": 64, "channels": 4, "clock_hz": 2.0e9},
}
_TABLE5_DDR = {"sg2044": "ddr5", "sg2042": "ddr4"}


@dataclass(frozen=True)
class _DDR:
    kind: str
    transfer_mts: float

    @property
    def channel_peak_gbs(self) -> float:
        return self.transfer_mts * 1e6 * (_DDR_BUS_BITS[self.kind] / 8.0) / 1e9


class _Evaluator:
    """Evaluates numeric literal expressions (and ddr constructor calls)."""

    def __init__(self, module_consts: dict[str, float]) -> None:
        self.consts = dict(_SIZE_NAMES)
        self.consts.update(module_consts)

    def eval(self, node: ast.AST):
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return self.consts.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            val = self.eval(node.operand)
            return None if val is None else -val
        if isinstance(node, ast.BinOp):
            left, right = self.eval(node.left), self.eval(node.right)
            if left is None or right is None:
                return None
            try:
                if isinstance(node.op, ast.Add):
                    return left + right
                if isinstance(node.op, ast.Sub):
                    return left - right
                if isinstance(node.op, ast.Mult):
                    return left * right
                if isinstance(node.op, ast.Div):
                    return left / right
                if isinstance(node.op, ast.FloorDiv):
                    return left // right
                if isinstance(node.op, ast.Pow):
                    return left**right
            except (ZeroDivisionError, OverflowError):
                return None
            return None
        if isinstance(node, ast.Call):
            callee = terminal_name(node.func)
            if callee in _DDR_BUS_BITS and node.args:
                mts = self.eval(node.args[0])
                if mts is not None:
                    return _DDR(callee, float(mts))
        return None


def _is_pow2(value: float) -> bool:
    iv = int(value)
    return iv == value and iv > 0 and (iv & (iv - 1)) == 0


def _call_args(call: ast.Call, positional: tuple[str, ...]) -> dict[str, ast.AST]:
    """Map a call's arguments to parameter names via the positional order."""
    out: dict[str, ast.AST] = {}
    for name, arg in zip(positional, call.args):
        out[name] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            out[kw.arg] = kw.value
    return out


@register
class CatalogRule(Rule):
    code = "R004"
    name = "catalog-invariants"
    description = (
        "machine-catalog literals violating cache geometry, topology "
        "divisibility, bandwidth consistency or Table 5 anchors"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        module_consts: dict[str, float] = {}
        evaluator = _Evaluator(module_consts)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                value = evaluator.eval(stmt.value)
                if isinstance(value, (int, float)):
                    evaluator.consts[stmt.targets[0].id] = value

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = terminal_name(node.func)
                if callee == "CacheLevel":
                    yield from self._check_cache_level(module, node, evaluator)
                elif callee == "Topology":
                    yield from self._check_topology(module, node, evaluator)
                elif callee == "MemorySubsystem":
                    yield from self._check_memory(module, node, evaluator, None)
                elif callee == "Machine":
                    yield from self._check_machine(module, node, evaluator)
            elif isinstance(node, (ast.Tuple, ast.List)):
                yield from self._check_hierarchy(module, node, evaluator)

    # ------------------------------------------------------------------

    def _cache_fields(self, call: ast.Call, ev: _Evaluator) -> dict[str, float]:
        args = _call_args(call, ("level", "size_bytes", "sharing",
                                 "latency_cycles", "line_bytes", "associativity"))
        out: dict[str, float] = {}
        for name in ("level", "size_bytes", "latency_cycles", "line_bytes",
                     "associativity"):
            if name in args:
                value = ev.eval(args[name])
                if isinstance(value, (int, float)):
                    out[name] = value
        out.setdefault("line_bytes", 64)
        out.setdefault("associativity", 8)
        return out

    def _check_cache_level(self, module, call, ev) -> Iterator[Finding]:
        f = self._cache_fields(call, ev)
        size = f.get("size_bytes")
        level = f.get("level")
        assoc = f["associativity"]
        line = f["line_bytes"]
        if level is not None and level not in (1, 2, 3):
            yield module.finding(self.code, call,
                                 f"cache level must be 1..3, got {level:g}")
        if size is not None:
            if size % (assoc * line):
                yield module.finding(
                    self.code, call,
                    f"cache size {int(size)} B does not divide into "
                    f"{int(assoc)}-way sets of {int(line)} B lines",
                )
            elif _is_pow2(assoc) and not _is_pow2(size / (assoc * line)):
                yield module.finding(
                    self.code, call,
                    f"cache size {int(size)} B gives a non-power-of-two set "
                    f"count ({int(size / (assoc * line))}) for "
                    f"{int(assoc)}-way associativity; real indexing hardware "
                    "wants power-of-two sets",
                )
            if level == 1 and not _is_pow2(size):
                yield module.finding(
                    self.code, call,
                    f"L1 size {int(size)} B is not a power of two",
                )

    def _check_topology(self, module, call, ev) -> Iterator[Finding]:
        args = _call_args(call, ("total_cores", "cores_per_cluster",
                                 "numa_regions"))
        vals = {k: ev.eval(v) for k, v in args.items()}
        cores = vals.get("total_cores")
        cluster = vals.get("cores_per_cluster")
        numa = vals.get("numa_regions")
        if isinstance(cores, (int, float)) and isinstance(cluster, (int, float)) \
                and cluster and cores % cluster:
            yield module.finding(
                self.code, call,
                f"{int(cores)} cores do not divide into clusters of "
                f"{int(cluster)}",
            )
        if isinstance(cores, (int, float)) and isinstance(numa, (int, float)) \
                and numa and cores % numa:
            yield module.finding(
                self.code, call,
                f"{int(cores)} cores do not divide into {int(numa)} NUMA "
                "region(s)",
            )

    def _check_memory(self, module, call, ev, anchor: str | None) -> Iterator[Finding]:
        args = _call_args(call, ("ddr", "controllers", "channels",
                                 "capacity_bytes"))
        vals = {k: ev.eval(v) for k, v in args.items()}
        ddr = vals.get("ddr")
        controllers = vals.get("controllers")
        channels = vals.get("channels")
        capacity = vals.get("capacity_bytes")
        override = None
        if "sustained_bw_override_gbs" in args:
            override = ev.eval(args["sustained_bw_override_gbs"])

        if isinstance(controllers, (int, float)) and isinstance(channels, (int, float)):
            if controllers and channels and (channels % controllers) \
                    and (controllers % channels):
                yield module.finding(
                    self.code, call,
                    f"channels ({int(channels)}) and controllers "
                    f"({int(controllers)}) do not pair in an integer ratio",
                )
        if isinstance(capacity, (int, float)) and capacity % 2**30:
            yield module.finding(
                self.code, call,
                f"DRAM capacity {capacity:g} B is not a whole number of GiB",
            )
        if isinstance(ddr, _DDR) and isinstance(channels, (int, float)) \
                and isinstance(override, (int, float)):
            peak = channels * ddr.channel_peak_gbs
            if override > peak:
                yield module.finding(
                    self.code, call,
                    f"declared sustained bandwidth {override:g} GB/s exceeds "
                    f"the aggregate JEDEC peak {peak:.1f} GB/s of "
                    f"{int(channels)} x {ddr.kind.upper()}-{ddr.transfer_mts:g} "
                    "channel(s)",
                )
        if anchor is not None and anchor in TABLE5_ANCHORS:
            expect = TABLE5_ANCHORS[anchor]
            if isinstance(channels, (int, float)) \
                    and channels != expect["channels"]:
                yield module.finding(
                    self.code, call,
                    f"{anchor}: Table 5 lists {int(expect['channels'])} memory "
                    f"channels, catalog says {int(channels)}",
                )
            if isinstance(ddr, _DDR) and ddr.kind != _TABLE5_DDR[anchor]:
                yield module.finding(
                    self.code, call,
                    f"{anchor}: Table 5 lists {_TABLE5_DDR[anchor].upper()}, "
                    f"catalog says {ddr.kind.upper()}",
                )

    def _check_machine(self, module, call, ev) -> Iterator[Finding]:
        args = _call_args(call, ("name",))
        name_node = args.get("name")
        anchor = None
        if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            anchor = name_node.value
        clock = ev.eval(args["clock_hz"]) if "clock_hz" in args else None
        if isinstance(clock, (int, float)) and not 0.4e9 <= clock <= 6e9:
            yield module.finding(
                self.code, call,
                f"clock_hz {clock:g} is outside the plausible 0.4-6 GHz "
                "band; likely a unit slip (Hz expected)",
            )
        if anchor in TABLE5_ANCHORS:
            expect = TABLE5_ANCHORS[anchor]
            if isinstance(clock, (int, float)) and clock != expect["clock_hz"]:
                yield module.finding(
                    self.code, call,
                    f"{anchor}: paper measured {expect['clock_hz'] / 1e9:g} "
                    f"GHz, catalog says {clock / 1e9:g} GHz",
                )
            if "topology" in args and isinstance(args["topology"], ast.Call):
                topo = _call_args(args["topology"],
                                  ("total_cores", "cores_per_cluster"))
                cores = ev.eval(topo["total_cores"]) \
                    if "total_cores" in topo else None
                if isinstance(cores, (int, float)) \
                        and cores != expect["total_cores"]:
                    yield module.finding(
                        self.code, call,
                        f"{anchor}: Table 5 lists "
                        f"{int(expect['total_cores'])} cores, catalog says "
                        f"{int(cores)}",
                    )
            if "memory" in args and isinstance(args["memory"], ast.Call) \
                    and terminal_name(args["memory"].func) == "MemorySubsystem":
                yield from self._check_memory(module, args["memory"], ev, anchor)

    def _check_hierarchy(self, module, node, ev) -> Iterator[Finding]:
        levels: list[tuple[ast.Call, dict[str, float]]] = []
        for elt in node.elts:
            if isinstance(elt, ast.Call) and terminal_name(elt.func) == "CacheLevel":
                levels.append((elt, self._cache_fields(elt, ev)))
        if len(levels) < 2:
            return
        prev_level = prev_size = None
        for call, f in levels:
            level, size = f.get("level"), f.get("size_bytes")
            if level is not None and prev_level is not None \
                    and level <= prev_level:
                yield module.finding(
                    self.code, call,
                    f"cache levels must ascend; L{int(level)} follows "
                    f"L{int(prev_level)}",
                )
            if size is not None and prev_size is not None and size < prev_size:
                yield module.finding(
                    self.code, call,
                    f"L{int(level) if level else '?'} ({int(size)} B) is "
                    f"smaller than the level below it ({int(prev_size)} B)",
                )
            prev_level = level if level is not None else prev_level
            prev_size = size if size is not None else prev_size
