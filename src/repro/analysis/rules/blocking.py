"""R010: blocking call under a held lock -- the single-flight guardrail.

The sweep engine's concurrency discipline is strict: locks guard state
transitions, never waiting.  ``Event.wait()`` and ``Future.result()``
are always called *outside* ``self._lock`` (single-flight followers wait
on the event after releasing the lock), ``FaultPlan.inject`` sleeps
after ``_scheduled`` returns, and the journal reads its reference under
the lock but appends outside it.  A blocking call that creeps back under
a lock serialises every other thread behind one sleeper -- or deadlocks
outright when the blocked-on work needs the same lock.

The rule walks the whole-program lock model: a finding is a direct
blocking operation (``.wait()``, ``.result()``, ``time.sleep``,
``subprocess.*``) executed while any project lock is held, or a call
made under a held lock whose transitive closure reaches one.  File I/O
(``open()``, ``Path.read_text/write_text/...``) counts only when the
lock holder lives in a *hot* module (``repro.core``, ``repro.obs``):
the sweep/observability paths must never do I/O under a lock, while
``repro.faults.journal`` writes its sidecar under the journal lock by
design (crash-consistency beats concurrency there).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..callgraph import ProjectIndex, split_fn_id
from ..core import Finding
from ..locks import ConcurrencyRule
from ..registry import register

__all__ = ["BlockingUnderLockRule", "is_hot_module"]

#: Modules whose lock regions must stay I/O-free.
HOT_MODULE_PREFIXES = ("repro.core", "repro.obs")


def is_hot_module(module: str) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in HOT_MODULE_PREFIXES
    )


@register
class BlockingUnderLockRule(ConcurrencyRule):
    code = "R010"
    name = "blocking-under-lock"
    description = (
        "blocking operation (wait/result/sleep/subprocess, or file I/O in "
        "hot modules) reachable while a lock is held"
    )

    def project_findings(self, facts_by_path: dict[str, object]) -> Iterator[Finding]:
        index = ProjectIndex(facts_by_path)
        for fnid, path, fn in index.functions():
            module, _ = split_fn_id(fnid)
            hot = is_hot_module(module)
            for op, io, line, col, held in fn.get("blocking", ()):
                held_locks = index.confirmed(held)
                if not held_locks or (io and not hot):
                    continue
                yield Finding(
                    self.code, path, line, col,
                    f"blocking `{op}` while `{held_locks[0]}` is held; "
                    "release the lock first (snapshot state under the "
                    "lock, block outside it)",
                )
            for chain, line, col, held in fn.get("calls", ()):
                held_locks = index.confirmed(held)
                if not held_locks:
                    continue
                target = index.resolve_call(fnid, chain)
                if target is None:
                    continue
                ops = sorted(
                    op for op, io in index.blocking_closure(target)
                    if not io or hot
                )
                if not ops:
                    continue
                yield Finding(
                    self.code, path, line, col,
                    f"call to `{chain}` reaches blocking `{ops[0]}` while "
                    f"`{held_locks[0]}` is held; move the call outside "
                    "the locked region",
                )
