"""R002: concurrency -- module-level mutable state mutates under a lock.

The process-wide caches (`_default_engine` in ``core/sweep.py``, the memo
dicts in ``npb/cg.py`` and ``cachesim/trace.py``, the catalog's memoised
getters) are shared by SweepEngine's worker threads.  Every write to
module-level mutable state from function bodies must therefore sit inside
a ``with <lock>:`` block; module import time is exempt (single-threaded
by construction).

The rule also polices the read-only handout convention: objects returned
by the memoising accessors (``build_trace``, ``make_matrix``) are shared
across threads and must never be mutated in place -- flagged are
subscript/augmented assignment into them and ``.setflags(write=True)``
re-arming of a cached array.

This rule sees one file at a time and only asks *whether* a lock is
held.  The whole-program rules built on the lock model pick up where it
stops: R009 (``lockorder``) checks that lock *pairs* are acquired in a
consistent order across the call graph, and R010 (``blocking``) checks
that nothing blocking runs while a lock is held.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import Finding, Rule, SourceModule
from ..registry import register
from ._astutil import terminal_name

__all__ = ["ConcurrencyRule"]

_MUTATING_METHODS = {
    "append", "add", "clear", "update", "setdefault", "pop", "popitem",
    "extend", "remove", "discard", "insert", "sort", "reverse",
}

#: Accessors whose return values are shared, cached, read-only objects.
READONLY_ACCESSORS = frozenset({"build_trace", "make_matrix"})

_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "deque",
                      "OrderedDict", "Counter"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in _MUTABLE_FACTORIES
    # The lazy-singleton pattern: `_engine = None`, rebound later.
    return isinstance(node, ast.Constant) and node.value is None


def _is_lock_guard(item: ast.withitem) -> bool:
    name = terminal_name(item.context_expr)
    return name is not None and "lock" in name.lower()


def _root_name(node: ast.AST) -> str | None:
    """Base Name of a subscript/attribute chain (``x`` for ``x[k].y``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class ConcurrencyRule(Rule):
    code = "R002"
    name = "concurrency"
    description = (
        "module-level mutable state written outside a `with <lock>:` block, "
        "or in-place mutation of cached read-only objects"
    )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        mutable_globals: set[str] = set()
        for stmt in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if _is_mutable_literal(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable_globals.add(target.id)

        yield from self._walk_for_functions(module, module.tree, mutable_globals,
                                            shadowed=frozenset())

    # ------------------------------------------------------------------

    def _walk_for_functions(
        self,
        module: SourceModule,
        node: ast.AST,
        mutable_globals: set[str],
        shadowed: frozenset[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, child, mutable_globals,
                                                shadowed)
            else:
                yield from self._walk_for_functions(module, child,
                                                    mutable_globals, shadowed)

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        mutable_globals: set[str],
        outer_shadowed: frozenset[str],
    ) -> Iterator[Finding]:
        declared_global: set[str] = set()
        locals_: set[str] = {a.arg for a in (
            *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
            *([func.args.vararg] if func.args.vararg else []),
            *([func.args.kwarg] if func.args.kwarg else []),
        )}
        readonly_locals: set[str] = set()

        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                continue
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                   ast.For, ast.withitem, ast.comprehension)):
                for name in _bound_names(node):
                    locals_.add(name)
        locals_ -= declared_global

        # Locals holding results of read-only accessors (incl. unpacking).
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = terminal_name(node.value.func)
                if callee in READONLY_ACCESSORS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            readonly_locals.add(target.id)
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            for elt in target.elts:
                                if isinstance(elt, ast.Name):
                                    readonly_locals.add(elt.id)

        shadowed = outer_shadowed | frozenset(locals_)

        def guarded(name: str) -> bool:
            return (
                name in mutable_globals
                and name not in shadowed
                or name in declared_global
            )

        yield from self._scan_body(module, func.body, in_lock=False,
                                   guarded=guarded,
                                   readonly_locals=readonly_locals,
                                   mutable_globals=mutable_globals,
                                   shadowed=shadowed)

    def _scan_body(
        self, module, body, *, in_lock, guarded, readonly_locals,
        mutable_globals, shadowed,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._scan_stmt(module, stmt, in_lock=in_lock,
                                       guarded=guarded,
                                       readonly_locals=readonly_locals,
                                       mutable_globals=mutable_globals,
                                       shadowed=shadowed)

    def _scan_stmt(
        self, module, stmt, *, in_lock, guarded, readonly_locals,
        mutable_globals, shadowed,
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_function(module, stmt, mutable_globals,
                                            shadowed)
            return
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            locked = in_lock or any(_is_lock_guard(i) for i in stmt.items)
            yield from self._scan_body(module, stmt.body, in_lock=locked,
                                       guarded=guarded,
                                       readonly_locals=readonly_locals,
                                       mutable_globals=mutable_globals,
                                       shadowed=shadowed)
            return

        yield from self._check_mutations(module, stmt, in_lock, guarded,
                                         readonly_locals)

        for child_body in _nested_bodies(stmt):
            yield from self._scan_body(module, child_body, in_lock=in_lock,
                                       guarded=guarded,
                                       readonly_locals=readonly_locals,
                                       mutable_globals=mutable_globals,
                                       shadowed=shadowed)

    # ------------------------------------------------------------------

    def _check_mutations(
        self, module, stmt, in_lock, guarded, readonly_locals,
    ) -> Iterator[Finding]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets

        for target in targets:
            root = _root_name(target)
            if root is None:
                continue
            if isinstance(target, ast.Name):
                if not in_lock and guarded(root):
                    yield module.finding(
                        self.code, stmt,
                        f"rebinds module global `{root}` outside a "
                        "`with <lock>:` block; racing threads can observe "
                        "a half-initialised value",
                    )
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                if root in readonly_locals:
                    yield module.finding(
                        self.code, stmt,
                        f"mutates `{root}`, which came from a read-only "
                        "cached accessor; copy before modifying",
                    )
                elif not in_lock and guarded(root):
                    yield module.finding(
                        self.code, stmt,
                        f"writes into module-global `{root}` outside a "
                        "`with <lock>:` block",
                    )

        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                method = call.func.attr
                root = _root_name(call.func.value)
                if method == "setflags" and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value
                    for kw in call.keywords
                ):
                    if root in readonly_locals:
                        yield module.finding(
                            self.code, call,
                            f"re-arms writes on `{root}` from a read-only "
                            "cached accessor; copy instead",
                        )
                elif method in _MUTATING_METHODS and root is not None:
                    if root in readonly_locals:
                        yield module.finding(
                            self.code, call,
                            f"calls mutating `.{method}()` on `{root}` from "
                            "a read-only cached accessor; copy first",
                        )
                    elif not in_lock and guarded(root):
                        yield module.finding(
                            self.code, call,
                            f"calls mutating `.{method}()` on module-global "
                            f"`{root}` outside a `with <lock>:` block",
                        )


def _bound_names(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        exprs = node.targets
    elif isinstance(node, ast.AnnAssign):
        exprs = [node.target]
    elif isinstance(node, ast.AugAssign):
        exprs = [node.target]
    elif isinstance(node, ast.For):
        exprs = [node.target]
    elif isinstance(node, ast.withitem):
        exprs = [node.optional_vars] if node.optional_vars else []
    elif isinstance(node, ast.comprehension):
        exprs = [node.target]
    else:
        exprs = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            yield expr.id
        elif isinstance(expr, (ast.Tuple, ast.List)):
            for elt in ast.walk(expr):
                if isinstance(elt, ast.Name):
                    yield elt.id


def _nested_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for field_name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field_name, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(stmt, "handlers", []):
        yield handler.body
