"""Text and JSON renderers for an :class:`AnalysisReport`.

The JSON schema (version 1) is stable and covered by tests::

    {
      "version": 1,
      "files_checked": <int>,
      "rules_run": ["R001", ...],
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "suppressed": <int>,
      "by_rule": {"R001": <int>, ...},
      "exit_code": 0 | 1
    }
"""

from __future__ import annotations

import json

from .core import AnalysisReport

__all__ = ["render_text", "render_json"]


def render_text(report: AnalysisReport) -> str:
    """Human-readable one-line-per-finding report with a summary trailer."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}" for f in report.findings
    ]
    counts = report.by_rule()
    if counts:
        breakdown = ", ".join(f"{code} x{n}" for code, n in counts.items())
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) [{breakdown}]"
            + (f"; {report.suppressed} suppressed" if report.suppressed else "")
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), "
            f"rules {', '.join(report.rules_run)}"
            + (f"; {report.suppressed} suppressed" if report.suppressed else "")
        )
    return "\n".join(lines) + "\n"


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n"
