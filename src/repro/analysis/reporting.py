"""Text and JSON renderers for an :class:`AnalysisReport`.

The JSON schema (version 1) is stable and covered by tests::

    {
      "version": 1,
      "files_checked": <int>,
      "rules_run": ["R001", ...],
      "findings": [{"rule", "path", "line", "col", "message"}, ...],
      "suppressed": <int>,
      "by_rule": {"R001": <int>, ...},
      "exit_code": 0 | 1
    }
"""

from __future__ import annotations

import json

from .core import AnalysisReport

__all__ = ["render_text", "render_json", "render_stats"]


def render_text(report: AnalysisReport) -> str:
    """Human-readable one-line-per-finding report with a summary trailer."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}" for f in report.findings
    ]
    counts = report.by_rule()
    if counts:
        breakdown = ", ".join(f"{code} x{n}" for code, n in counts.items())
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) [{breakdown}]"
            + (f"; {report.suppressed} suppressed" if report.suppressed else "")
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), "
            f"rules {', '.join(report.rules_run)}"
            + (f"; {report.suppressed} suppressed" if report.suppressed else "")
        )
    return "\n".join(lines) + "\n"


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n"


def render_stats(report: AnalysisReport) -> str:
    """One ``repro lint --stats`` line: cache effectiveness + rule costs.

    Deliberately not part of the JSON schema -- it describes *this run*
    (cache state, worker count), not the code under analysis.
    """
    stats = report.stats
    parts = [
        f"stats: {stats.files_checked} files "
        f"({stats.files_cached} cached, {stats.files_analyzed} analyzed)",
        f"jobs {stats.jobs}",
        f"cache {stats.cache_path or 'off'}",
    ]
    timings = sorted(
        stats.rule_timings_s.items(), key=lambda kv: (-kv[1], kv[0])
    )
    if timings:
        parts.append(
            "timings "
            + ", ".join(f"{key} {sec * 1e3:.1f}ms" for key, sec in timings)
        )
    return " | ".join(parts) + "\n"
