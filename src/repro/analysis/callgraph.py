"""Project-wide symbol table and call graph over concurrency facts.

The per-file extractor in :mod:`repro.analysis.locks` reduces each parsed
``SourceModule`` to a JSON-serializable fact bundle: the module's import
aliases, its functions and methods, the locks it defines, and -- per
function -- the ordered lock acquisitions, outgoing calls, blocking
operations, and lock re-initialisations.  This module stitches those
per-file bundles into a whole-program view:

* a symbol table mapping dotted names to function ids (``repo.*`` imports,
  ``from`` re-exports through package ``__init__`` modules, methods via
  ``self.``, and constructors via ``ClassName(...)``),
* a call graph whose edges are the resolved call descriptors, and
* memoised transitive closures over that graph (locks acquired, blocking
  operations reached, locks re-initialised, executor globals touched).

Resolution is deliberately static and conservative: a call through a
variable of unknown type simply produces no edge.  Under-approximating
the graph can miss a hazard but never invents one, which is the right
trade-off for lint rules that gate CI.

Function ids are ``"<module>::<qualname>"`` strings (``qualname`` is
``name`` or ``Class.name``); lock ids are dotted ``"<module>.<name>"``
for module-level locks and ``"<module>.<Class>.<attr>"`` for instance
locks created in a method body.
"""

from __future__ import annotations

from pathlib import PurePath

__all__ = ["ProjectIndex", "module_name_for", "fn_id", "split_fn_id"]

#: Re-export chains (``from .journal import SweepJournal`` inside a
#: package ``__init__``) are chased at most this deep.
_MAX_REEXPORT_DEPTH = 8


def module_name_for(display_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/core/sweep.py`` -> ``repro.core.sweep``; a package
    ``__init__.py`` maps to the package itself.  Paths outside a ``src``
    layout (fixtures, scratch dirs) degrade to their relative dotted form.
    """
    parts = list(PurePath(display_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(p for p in parts if p)


def fn_id(module: str, qualname: str) -> str:
    return f"{module}::{qualname}"


def split_fn_id(fnid: str) -> tuple[str, str]:
    module, _, qualname = fnid.partition("::")
    return module, qualname


class ProjectIndex:
    """Symbol table + call graph over ``{display_path: facts}`` bundles."""

    def __init__(self, facts_by_path: dict[str, dict]) -> None:
        self._modules: dict[str, dict] = {}
        self._paths: dict[str, str] = {}
        #: fully-qualified lock id -> kind ("Lock" | "RLock")
        self.locks: dict[str, str] = {}
        #: module-level lock ids only (the fork-unsafe kind)
        self.module_locks: set[str] = set()
        #: module-level ProcessPoolExecutor globals, fully qualified
        self.executors: set[str] = set()
        for path, facts in sorted(facts_by_path.items()):
            if not facts:
                continue
            mod = facts.get("module") or module_name_for(path)
            self._modules[mod] = facts
            self._paths[mod] = path
            for name, kind in facts.get("locks", {}).items():
                lock_id = f"{mod}.{name}"
                self.locks[lock_id] = kind
                self.module_locks.add(lock_id)
            for cls, info in facts.get("classes", {}).items():
                for attr, kind in info.get("locks", {}).items():
                    self.locks[f"{mod}.{cls}.{attr}"] = kind
            for name in facts.get("executors", ()):
                self.executors.add(f"{mod}.{name}")
        self._resolve_memo: dict[tuple[str, str], str | None] = {}
        self._closure_memo: dict[str, dict[str, frozenset]] = {}

    # -- basic lookups --------------------------------------------------

    def path_for(self, module: str) -> str | None:
        return self._paths.get(module)

    def functions(self):
        """Yield ``(fnid, path, fndata)`` for every known function."""
        for mod, facts in self._modules.items():
            path = self._paths[mod]
            for qual, fn in facts.get("functions", {}).items():
                yield fn_id(mod, qual), path, fn

    def function(self, fnid: str) -> dict | None:
        mod, qual = split_fn_id(fnid)
        facts = self._modules.get(mod)
        if facts is None:
            return None
        return facts.get("functions", {}).get(qual)

    def is_lock(self, lock_id: str) -> bool:
        return lock_id in self.locks

    def lock_kind(self, lock_id: str) -> str | None:
        return self.locks.get(lock_id)

    def confirmed(self, candidates) -> list[str]:
        """Filter candidate lock ids down to locks the project defines."""
        return [c for c in candidates if c in self.locks]

    # -- name resolution ------------------------------------------------

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> str | None:
        """Resolve a fully-dotted reference to a function id.

        Handles ``repro.core.plan.plan_groups`` (module function),
        ``repro.core.sweep.SweepEngine`` (constructor), and package
        re-exports (``repro.faults.SweepJournal`` chasing the alias in
        ``repro/faults/__init__.py`` to ``repro.faults.journal``).
        """
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        # Longest module prefix wins: "repro.core.sweep.SweepEngine.run"
        # splits at "repro.core.sweep".
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            facts = self._modules.get(mod)
            if facts is None:
                continue
            rest = parts[cut:]
            return self._resolve_in_module(mod, facts, rest, _depth)
        return None

    def _resolve_in_module(
        self, mod: str, facts: dict, rest: list[str], depth: int
    ) -> str | None:
        functions = facts.get("functions", {})
        classes = facts.get("classes", {})
        if len(rest) == 1:
            name = rest[0]
            if name in functions:
                return fn_id(mod, name)
            if name in classes:
                init = f"{name}.__init__"
                return fn_id(mod, init) if init in functions else None
            alias = facts.get("aliases", {}).get(name)
            if alias:
                return self.resolve_dotted(alias, depth + 1)
            return None
        if len(rest) == 2:
            qual = ".".join(rest)
            if qual in functions:
                return fn_id(mod, qual)
        alias = facts.get("aliases", {}).get(rest[0])
        if alias:
            return self.resolve_dotted(alias + "." + ".".join(rest[1:]), depth + 1)
        return None

    def resolve_call(self, caller_fnid: str, chain: str) -> str | None:
        """Resolve a raw call chain as seen from inside ``caller_fnid``."""
        mod, qual = split_fn_id(caller_fnid)
        memo_key = (caller_fnid, chain)
        if memo_key in self._resolve_memo:
            return self._resolve_memo[memo_key]
        target = self._resolve_call_uncached(mod, qual, chain)
        self._resolve_memo[memo_key] = target
        return target

    def _resolve_call_uncached(
        self, mod: str, qual: str, chain: str
    ) -> str | None:
        facts = self._modules.get(mod)
        if facts is None:
            return None
        parts = chain.split(".")
        head = parts[0]
        if head == "self":
            cls = qual.split(".")[0] if "." in qual else None
            if cls and len(parts) == 2:
                method = f"{cls}.{parts[1]}"
                if method in facts.get("functions", {}):
                    return fn_id(mod, method)
            return None
        if len(parts) == 1:
            return self._resolve_in_module(mod, facts, parts, 0)
        alias = facts.get("aliases", {}).get(head)
        if alias is not None:
            return self.resolve_dotted(alias + "." + ".".join(parts[1:]))
        # "ClassName.method" on a class defined in this module.
        if head in facts.get("classes", {}) and len(parts) == 2:
            method = ".".join(parts)
            if method in facts.get("functions", {}):
                return fn_id(mod, method)
        return None

    # -- worker entry points -------------------------------------------

    def worker_entries(self) -> list[str]:
        """Functions that run inside forked process-shard children.

        A function is a worker entry when its name matches the R008
        heuristic (``*_worker`` / ``*shard*``) or when it is submitted to
        an executor known to be a ``ProcessPoolExecutor``.
        """
        workers: set[str] = set()
        for fnid, _path, fn in self.functions():
            if fn.get("worker"):
                workers.add(fnid)
        for mod, facts in self._modules.items():
            for chain, is_proc, _line, _col in facts.get("submits", ()):
                if not is_proc:
                    continue
                target = self._resolve_call_uncached(mod, "", chain)
                if target is not None:
                    workers.add(target)
        return sorted(workers)

    # -- transitive closures -------------------------------------------

    def _direct(self, fnid: str, key: str) -> frozenset:
        fn = self.function(fnid)
        if fn is None:
            return frozenset()
        if key == "acquires":
            return frozenset(
                ref for ref, _l, _c, _held in fn.get("acquires", ())
                if ref in self.locks
            )
        if key == "blocking":
            return frozenset(
                (op, bool(io)) for op, io, _l, _c, _held in fn.get("blocking", ())
            )
        if key == "reinits":
            return frozenset(fn.get("reinits", ()))
        if key == "executors":
            mod, _ = split_fn_id(fnid)
            return frozenset(
                f"{mod}.{name}" for name, _l, _c in fn.get("exec_loads", ())
                if f"{mod}.{name}" in self.executors
            )
        raise KeyError(key)

    def _closures(self, key: str) -> dict[str, frozenset]:
        """Fixpoint of ``closure[f] = direct[f] | U closure[callee]``."""
        if key in self._closure_memo:
            return self._closure_memo[key]
        edges: dict[str, list[str]] = {}
        closure: dict[str, set] = {}
        for fnid, _path, fn in self.functions():
            closure[fnid] = set(self._direct(fnid, key))
            targets = []
            for chain, _line, _col, _held in fn.get("calls", ()):
                target = self.resolve_call(fnid, chain)
                if target is not None:
                    targets.append(target)
            edges[fnid] = targets
        changed = True
        while changed:
            changed = False
            for fnid, targets in edges.items():
                acc = closure[fnid]
                before = len(acc)
                for target in targets:
                    acc |= closure.get(target, ())
                if len(acc) != before:
                    changed = True
        frozen = {fnid: frozenset(vals) for fnid, vals in closure.items()}
        self._closure_memo[key] = frozen
        return frozen

    def acquire_closure(self, fnid: str) -> frozenset:
        """Every project lock ``fnid`` may acquire, transitively."""
        return self._closures("acquires").get(fnid, frozenset())

    def blocking_closure(self, fnid: str) -> frozenset:
        """``(op, is_io)`` blocking operations reachable from ``fnid``."""
        return self._closures("blocking").get(fnid, frozenset())

    def reinit_closure(self, fnid: str) -> frozenset:
        """Locks re-initialised (rebound to a fresh Lock) from ``fnid``."""
        return self._closures("reinits").get(fnid, frozenset())

    def executor_closure(self, fnid: str) -> frozenset:
        """Module-level executor globals touched from ``fnid``."""
        return self._closures("executors").get(fnid, frozenset())
