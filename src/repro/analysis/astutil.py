"""Small AST helpers shared by the rules and the analysis substrate."""

from __future__ import annotations

import ast

__all__ = ["ImportTable", "dotted_name", "terminal_name", "const_int"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def const_int(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


class ImportTable:
    """Maps local names to the dotted module/object paths they import.

    ``import numpy as np``          -> ``np: numpy``
    ``import numpy.random``         -> ``numpy: numpy`` (chain resolution
    walks attributes, so ``numpy.random.rand`` still resolves)
    ``from numpy import random``    -> ``random: numpy.random``
    ``from time import perf_counter as pc`` -> ``pc: time.perf_counter``
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted path of a Name/Attribute chain, resolving
        the leading segment through the import table.  ``None`` when the
        chain does not start at an imported name."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base
