"""Analysis core: source loading, suppression, rule protocol, driver.

The framework is deliberately small: a :class:`SourceModule` wraps one
parsed file (source text, AST, the per-line suppression table), rules
declare a ``code``/``name``/``description`` and yield :class:`Finding`
objects, and :func:`run_analysis` walks a file set through every rule and
folds the results into an :class:`AnalysisReport` with stable exit-code
semantics (0 clean, 1 findings, 2 unusable input).

Suppression follows the repo-wide pragma convention::

    engine = something_nondeterministic()  # repro: noqa[R001] -- why

``# repro: noqa`` with no bracket suppresses every rule on that line.  A
pragma on *any* physical line of a multi-line simple statement covers the
statement's whole ``lineno..end_lineno`` span, so findings anchored on
the first line of a wrapped call are suppressible by a pragma on its
closing line (and vice versa).  Compound statements deliberately do not
spread -- a pragma inside a function body must not silence the whole
function.

The driver is incremental and parallel.  Per-file results (raw findings,
the effective suppression table, and the per-file *facts* project rules
declare through the facts API) are cached in ``.repro-lint-cache.json``
keyed by content sha256 under a rule-set signature; unchanged files are
replayed from the cache without re-parsing, changed files fan out across
a process pool, and the merge is deterministic regardless of worker
count.  Bump :data:`RULESET_VERSION` whenever rule semantics change in a
way file content alone cannot capture -- the signature folds it in, so
every cache goes cold exactly once.

Project rules participate in incremental runs via the facts API: a class
sets ``facts_key``, implements ``extract_facts(module)`` (a classmethod
returning something JSON-serializable, cached per file) and
``project_findings(facts_by_path)``.  Rules without the facts API fall
back to the legacy path (every file parsed, ``finalize`` called with the
module list) and forfeit warm-run speed.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "SourceModule",
    "Rule",
    "ProjectRule",
    "AnalysisReport",
    "LintStats",
    "run_analysis",
    "iter_python_files",
    "PARSE_ERROR_CODE",
    "RULESET_VERSION",
    "CACHE_FILENAME",
]

#: Pseudo-rule code attached to findings for files that do not parse.
PARSE_ERROR_CODE = "E001"

#: Bump to invalidate every lint cache (rule semantics changed without a
#: per-rule ``version`` bump, driver behaviour changed, ...).
RULESET_VERSION = 1

#: Default cache file name, resolved against the analysis root.
CACHE_FILENAME = ".repro-lint-cache.json"

_CACHE_SCHEMA = 1

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceModule:
    """One parsed Python source file plus its suppression table.

    ``tree`` is ``None`` when the file does not parse; the driver emits a
    :data:`PARSE_ERROR_CODE` finding instead of running rules over it.
    """

    def __init__(self, path: Path, text: str, display_path: str | None = None) -> None:
        self.path = Path(path)
        self.display_path = display_path or str(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc
        self._noqa = self._scan_noqa()
        self._expand_noqa_spans()

    @classmethod
    def from_path(cls, path: Path, display_path: str | None = None) -> "SourceModule":
        return cls(path, path.read_text(encoding="utf-8"), display_path)

    # -- suppression ---------------------------------------------------

    def _scan_noqa(self) -> dict[int, frozenset[str] | None]:
        """Per-line suppressions: ``None`` means "all rules"."""
        table: dict[int, frozenset[str] | None] = {}
        for lineno, line in enumerate(self.lines, start=1):
            m = _NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            if codes is None:
                table[lineno] = None
            else:
                table[lineno] = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )
        return table

    def _expand_noqa_spans(self) -> None:
        """Spread pragmas across multi-line *simple* statements.

        A pragma anywhere in an ``Assign``/``Expr``/... that wraps over
        several physical lines suppresses findings anchored on any line
        of that statement.  Compound statements (anything with a body)
        are left alone so a pragma inside a ``with`` block cannot
        silence the whole block.
        """
        if self.tree is None or not self._noqa:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            if hasattr(node, "body") or hasattr(node, "cases"):
                continue
            end = getattr(node, "end_lineno", None)
            if not end or end <= node.lineno:
                continue
            span = range(node.lineno, end + 1)
            pragmas = [self._noqa[ln] for ln in span if ln in self._noqa]
            if not pragmas:
                continue
            if any(p is None for p in pragmas):
                merged: frozenset[str] | None = None
            else:
                merged = frozenset().union(*pragmas)
            for ln in span:
                existing = self._noqa.get(ln, frozenset())
                if merged is None or existing is None:
                    self._noqa[ln] = None
                else:
                    self._noqa[ln] = existing | merged

    def is_suppressed(self, rule: str, line: int) -> bool:
        return _table_suppresses(self._noqa, rule, line)

    # -- convenience ---------------------------------------------------

    def finding(self, rule: str, node: ast.AST | int, message: str) -> Finding:
        """Build a Finding anchored at an AST node (or a raw line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.display_path, line=line, col=col,
                       message=message)


def _table_suppresses(
    table: dict[int, frozenset[str] | None], rule: str, line: int
) -> bool:
    if line in table:
        codes = table[line]
        return codes is None or rule.upper() in codes
    return False


class Rule:
    """A per-file rule.  Subclasses set the class attributes and implement
    :meth:`check_module`."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: Folded into the cache's rule-set signature; bump when the rule's
    #: semantics change so stale cached findings cannot survive.
    version: int = 1

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def finalize(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        """Hook run once after every module was checked (default: nothing)."""
        return iter(())


class ProjectRule(Rule):
    """A rule that needs the whole file set (cross-file invariants).

    Subclasses either implement the legacy :meth:`check_project` (called
    with every parsed module) or opt into the incremental facts API by
    setting ``facts_key`` and implementing :meth:`extract_facts` plus
    :meth:`project_findings`; the facts path is what keeps warm lint
    runs from re-parsing unchanged files.
    """

    #: Cache slot for this rule's per-file facts; rules sharing a key
    #: share one extractor (it runs once per file).
    facts_key: str | None = None

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    @classmethod
    def extract_facts(cls, module: SourceModule) -> object | None:
        """Per-file facts (JSON-serializable) for :meth:`project_findings`."""
        return None

    def project_findings(self, facts_by_path: dict[str, object]) -> Iterator[Finding]:
        """Cross-file findings from the cached per-file facts."""
        return iter(())

    def check_project(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def finalize(self, modules: Sequence[SourceModule]) -> Iterator[Finding]:
        return self.check_project(modules)


@dataclass
class LintStats:
    """What one driver run did -- surfaced by ``repro lint --stats``."""

    files_checked: int = 0
    files_cached: int = 0
    files_analyzed: int = 0
    jobs: int = 1
    cache_path: str | None = None
    cache_loaded: bool = False
    #: rule code (or ``facts[<key>]`` / ``<code>.project``) -> seconds
    rule_timings_s: dict[str, float] = field(default_factory=dict)

    def add_timing(self, key: str, seconds: float) -> None:
        self.rule_timings_s[key] = self.rule_timings_s.get(key, 0.0) + seconds


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()
    #: Driver bookkeeping; intentionally NOT part of :meth:`to_dict` --
    #: the JSON report schema stays stable across cache states.
    stats: LintStats = field(default_factory=LintStats)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings (incl. parse errors)."""
        return 1 if self.findings else 0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "by_rule": self.by_rule(),
            "exit_code": self.exit_code,
        }


_SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
              ".pytest_cache", ".mypy_cache", ".ruff_cache", "node_modules"}


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for p in candidates:
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                out.append(p)
    return out


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    return str(path)


# ---------------------------------------------------------------------------
# Incremental engine internals
# ---------------------------------------------------------------------------


def _is_incremental(rule: Rule) -> bool:
    return (
        isinstance(rule, ProjectRule)
        and rule.facts_key is not None
        and type(rule).project_findings is not ProjectRule.project_findings
    )


def _is_legacy_project(rule: Rule) -> bool:
    """Rules that still need the full parsed module list."""
    if _is_incremental(rule):
        return False
    if isinstance(rule, ProjectRule):
        return type(rule).check_project is not ProjectRule.check_project
    return type(rule).finalize is not Rule.finalize


def _ruleset_signature(rules: Sequence[Rule]) -> str:
    payload = "|".join(
        f"{r.code}:{getattr(type(r), 'version', 1)}"
        for r in sorted(rules, key=lambda r: r.code)
    )
    payload += f"|ruleset={RULESET_VERSION}|schema={_CACHE_SCHEMA}"
    return hashlib.sha256(payload.encode()).hexdigest()


def _fact_extractors(rules: Sequence[Rule]) -> dict[str, type]:
    """facts_key -> rule class providing the shared extractor."""
    out: dict[str, type] = {}
    for rule in rules:
        if _is_incremental(rule):
            out.setdefault(rule.facts_key, type(rule))
    return out


def _noqa_to_json(table: dict[int, frozenset[str] | None]) -> dict:
    return {
        str(line): (None if codes is None else sorted(codes))
        for line, codes in table.items()
    }


def _noqa_from_json(raw: dict) -> dict[int, frozenset[str] | None]:
    return {
        int(line): (None if codes is None else frozenset(codes))
        for line, codes in raw.items()
    }


def _analyze_file(
    path: Path, display: str, rules: Sequence[Rule], sha: str
) -> dict:
    """Produce one cache entry: raw findings, noqa table, facts, timings."""
    from repro import obs

    entry: dict = {"sha": sha, "findings": [], "noqa": {}, "facts": {},
                   "timings": {}}
    try:
        module = SourceModule.from_path(path, display)
    except (OSError, UnicodeDecodeError) as exc:
        entry["read_error"] = str(exc)
        return entry
    entry["noqa"] = _noqa_to_json(module._noqa)
    if module.tree is None:
        err = module.parse_error
        entry["parse_error"] = [
            err.lineno or 1 if err else 1,
            err.msg if err else "unparsable",
        ]
        return entry
    for rule in rules:
        with obs.host_timer(f"lint.{rule.code}") as timer:
            entry["findings"].extend(
                [f.rule, f.line, f.col, f.message]
                for f in rule.check_module(module)
            )
        entry["timings"][rule.code] = (
            entry["timings"].get(rule.code, 0.0) + timer.elapsed_s
        )
    for key, provider in _fact_extractors(rules).items():
        with obs.host_timer(f"lint.facts.{key}") as timer:
            facts = provider.extract_facts(module)
        if facts is not None:
            entry["facts"][key] = facts
        entry["timings"][f"facts[{key}]"] = timer.elapsed_s
    return entry


def _analyze_payload(payload: tuple[str, str, str, tuple[str, ...]]) -> dict:
    """Process-pool entry point: rebuild rules from the registry by code."""
    path_str, display, sha, codes = payload
    from .registry import rules_for

    return _analyze_file(Path(path_str), display, rules_for(list(codes)), sha)


def _sha256_file(path: Path) -> tuple[str | None, str | None]:
    """(sha256 hex, None) on success, (None, error message) otherwise."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest(), None
    except OSError as exc:
        return None, str(exc)


def _load_cache(cache_path: Path, signature: str) -> dict[str, dict]:
    try:
        raw = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(raw, dict) or raw.get("version") != _CACHE_SCHEMA:
        return {}
    if raw.get("ruleset") != signature:
        return {}
    files = raw.get("files")
    return files if isinstance(files, dict) else {}


def _write_cache(
    cache_path: Path, signature: str, entries: dict[str, dict]
) -> None:
    from repro.faults import write_text_atomic

    slim = {
        display: {k: v for k, v in entry.items() if k != "timings"}
        for display, entry in entries.items()
        if "read_error" not in entry
    }
    payload = {"version": _CACHE_SCHEMA, "ruleset": signature, "files": slim}
    try:
        write_text_atomic(cache_path, json.dumps(payload, sort_keys=True))
    except OSError:
        pass  # a cache that cannot be written is just a cold cache


def _parallel_analyze(
    work: list[tuple[Path, str, str]],
    codes: tuple[str, ...],
    jobs: int,
) -> list[dict] | None:
    """Fan changed files across a process pool; None -> use serial path."""
    import multiprocessing

    from concurrent.futures import ProcessPoolExecutor

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None
    payloads = [(str(path), display, sha, codes) for path, display, sha in work]
    chunk = max(1, len(payloads) // (jobs * 4))
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            return list(pool.map(_analyze_payload, payloads, chunksize=chunk))
    except Exception:
        return None


def run_analysis(
    paths: Sequence[Path | str],
    rules: Sequence[Rule],
    root: Path | str | None = None,
    *,
    cache_path: Path | str | None = None,
    jobs: int | None = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file reachable from ``paths``.

    ``root`` (when given) relativises reported paths, keeping output and
    the JSON report stable across checkouts.  ``cache_path`` enables the
    incremental engine (unchanged files replay their cached results);
    ``jobs`` > 1 fans changed files across a process pool.  Findings,
    counts, and the JSON report are byte-identical across cache states
    and worker counts.
    """
    from repro import obs

    root_path = Path(root) if root is not None else None
    files = iter_python_files(paths)
    jobs = max(1, int(jobs or 1))
    report = AnalysisReport(rules_run=tuple(r.code for r in rules))
    stats = report.stats
    stats.jobs = jobs

    signature = _ruleset_signature(rules)
    cache: dict[str, dict] = {}
    if cache_path is not None:
        cache_path = Path(cache_path)
        stats.cache_path = str(cache_path)
        cache = _load_cache(cache_path, signature)
        stats.cache_loaded = bool(cache)

    # -- per-file phase: replay cached entries, analyze the rest -------
    displays = [_display_path(p, root_path) for p in files]
    entries: dict[str, dict] = {}
    todo: list[tuple[Path, str, str]] = []
    unreadable: list[tuple[str, str]] = []
    for path, display in zip(files, displays):
        sha, err = _sha256_file(path)
        if sha is None:
            unreadable.append((display, f"cannot read file: {err}"))
            continue
        cached = cache.get(display)
        if cached is not None and cached.get("sha") == sha:
            entries[display] = cached
            stats.files_cached += 1
        else:
            todo.append((path, display, sha))

    codes = tuple(r.code for r in rules)
    results: list[dict] | None = None
    if todo and jobs > 1 and _registry_backed(rules):
        results = _parallel_analyze(todo, codes, jobs)
    if results is None:
        results = [
            _analyze_file(path, display, rules, sha)
            for path, display, sha in todo
        ]
    for (_path, display, _sha), entry in zip(todo, results):
        if "read_error" in entry:
            unreadable.append((display, f"cannot read file: {entry['read_error']}"))
            continue
        entries[display] = entry
        stats.files_analyzed += 1
        for key, seconds in entry.get("timings", {}).items():
            stats.add_timing(key, seconds)

    ordered = [d for d in displays if d in entries]
    report.files_checked = len(ordered)
    for display, message in unreadable:
        report.findings.append(Finding(PARSE_ERROR_CODE, display, 1, 0, message))

    # -- merge: dedup + suppression, deterministic across cache/jobs ---
    noqa_tables = {
        display: _noqa_from_json(entries[display].get("noqa", {}))
        for display in ordered
    }
    seen_findings: set[Finding] = set()

    def admit(finding: Finding) -> None:
        if finding in seen_findings:
            return
        seen_findings.add(finding)
        table = noqa_tables.get(finding.path)
        if table is not None and _table_suppresses(table, finding.rule, finding.line):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    for display in ordered:
        entry = entries[display]
        if "parse_error" in entry:
            line, msg = entry["parse_error"]
            report.findings.append(
                Finding(PARSE_ERROR_CODE, display, line, 0, f"syntax error: {msg}")
            )
            continue
        for rule_code, line, col, message in entry.get("findings", ()):
            admit(Finding(rule_code, display, line, col, message))

    # -- project phase --------------------------------------------------
    parsed_displays = [d for d in ordered if "parse_error" not in entries[d]]
    legacy_rules = [r for r in rules if _is_legacy_project(r)]
    if legacy_rules:
        modules = _materialize_modules(files, displays, parsed_displays)
        for rule in legacy_rules:
            with obs.host_timer(f"lint.{rule.code}.project") as timer:
                for finding in rule.finalize(modules):
                    admit(finding)
            stats.add_timing(f"{rule.code}.project", timer.elapsed_s)
    for rule in rules:
        if not _is_incremental(rule):
            continue
        facts_by_path = {
            d: entries[d]["facts"][rule.facts_key]
            for d in parsed_displays
            if rule.facts_key in entries[d].get("facts", {})
        }
        with obs.host_timer(f"lint.{rule.code}.project") as timer:
            for finding in rule.project_findings(facts_by_path):
                admit(finding)
        stats.add_timing(f"{rule.code}.project", timer.elapsed_s)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    stats.files_checked = report.files_checked

    if cache_path is not None:
        fresh = {d: entries[d] for d in ordered}
        if stats.files_analyzed or set(cache) != set(fresh):
            _write_cache(cache_path, signature, fresh)

    obs.incr("lint.files_checked", report.files_checked)
    obs.incr("lint.files_cached", stats.files_cached)
    obs.incr("lint.files_analyzed", stats.files_analyzed)
    obs.incr("lint.findings", len(report.findings))
    obs.incr("lint.suppressed", report.suppressed)
    return report


def _registry_backed(rules: Sequence[Rule]) -> bool:
    """True when every rule can be rebuilt by code inside a pool worker."""
    from .registry import registered_codes

    known = set(registered_codes())
    return all(r.code in known and type(r).__module__ != "__main__" for r in rules)


def _materialize_modules(
    files: Sequence[Path],
    displays: Sequence[str],
    parsed_displays: Sequence[str],
) -> list[SourceModule]:
    wanted = set(parsed_displays)
    modules: list[SourceModule] = []
    for path, display in zip(files, displays):
        if display not in wanted:
            continue
        try:
            module = SourceModule.from_path(path, display)
        except (OSError, UnicodeDecodeError):
            continue
        if module.tree is not None:
            modules.append(module)
    return modules
